"""Engine-on-sessions equivalence: incremental vs rebuild-per-iteration.

The compositional engine now issues :class:`EventModelDelta` queries to
per-segment :class:`AnalysisSession` objects instead of reconstructing
``CanBusAnalysis`` every global iteration.  ``incremental=False`` retains
the pre-refactor rebuild path (also used under ``REPRO_PARALLEL=process``),
and everything here asserts the two are **bit-identical** -- results,
models, reports, convergence and iteration counts -- across the multibus
workload family and under warm re-analysis.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.can.kmatrix import KMatrix
from repro.core.engine import CompositionalAnalysis
from repro.service.session import AnalysisSession
from repro.workloads.multibus import multibus_system


def _assert_identical(first, second) -> None:
    assert first.converged == second.converged
    assert first.iterations == second.iterations
    assert first.message_results == second.message_results
    assert first.send_models == second.send_models
    assert first.arrival_models == second.arrival_models
    assert first.task_results == second.task_results
    assert first.bus_reports == second.bus_reports


def _run_both(system):
    rebuild = CompositionalAnalysis(system, incremental=False).run()
    incremental = CompositionalAnalysis(system, incremental=True).run()
    _assert_identical(rebuild, incremental)
    return rebuild


class TestEngineOnSessions:
    @pytest.mark.parametrize("n_buses,messages,seed", [
        (2, 6, 0), (3, 10, 1), (4, 12, 2), (5, 8, 3), (6, 15, 4),
    ])
    def test_multibus_chains_bit_identical(self, n_buses, messages, seed):
        system = multibus_system(
            n_buses=n_buses, messages_per_bus=messages, seed=seed)
        result = _run_both(system)
        assert result.converged

    def test_denser_routing_bit_identical(self):
        system = multibus_system(
            n_buses=4, messages_per_bus=10, seed=7, routes_per_gateway=3)
        _run_both(system)

    def test_harsher_errors_bit_identical(self):
        system = multibus_system(
            n_buses=3, messages_per_bus=10, seed=9,
            error_interarrival_ms=20.0, assumed_jitter_fraction=0.3)
        _run_both(system)

    def test_repeated_runs_on_one_engine_are_identical(self):
        system = multibus_system(n_buses=4, messages_per_bus=10, seed=11)
        engine = CompositionalAnalysis(system)
        first = engine.run()
        second = engine.run()
        _assert_identical(first, second)
        # The re-run is served almost entirely from the session caches.
        stats = engine.session_stats()
        assert sum(s.cache_hits for s in stats) > 0

    def test_reanalysis_after_segment_edit_is_exact(self):
        """Mutating a segment between runs must not serve stale results."""
        system = multibus_system(n_buses=4, messages_per_bus=10, seed=13)
        engine = CompositionalAnalysis(system)
        engine.run()
        segment = system.buses["CAN-0"]
        victim = segment.kmatrix.sorted_by_priority()[0]
        segment.kmatrix = KMatrix(messages=[
            replace(m, jitter=(m.jitter or 0.0) + 0.4 * m.period)
            if m.name == victim.name else m
            for m in segment.kmatrix.messages])
        incremental = engine.run()
        fresh = CompositionalAnalysis(system, incremental=False).run()
        _assert_identical(fresh, incremental)

    def test_ecu_system_bit_identical_and_reanalysis_sees_ecu_edits(self):
        """Systems with detailed ECU models: equivalence, plus a persistent
        engine must pick up a replaced ECU model on the next run."""
        from dataclasses import replace as dc_replace

        from test_core import _two_bus_system

        system = _two_bus_system()
        _run_both(system)
        engine = CompositionalAnalysis(system)
        engine.run()
        ecu = system.ecus["EngineECU"]
        system.ecus["EngineECU"] = dc_replace(ecu, tasks=[
            dc_replace(task, wcet=task.wcet * 2.0) for task in ecu.tasks])
        incremental = engine.run()
        fresh = CompositionalAnalysis(system, incremental=False).run()
        _assert_identical(fresh, incremental)
        assert incremental.task_results[
            "EngineECU.TorqueTask"].worst_case > 1.5

    def test_engine_accepts_external_sessions(self):
        """The daemon shares its pool sessions with the engine this way."""
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=15)
        sessions = {
            segment.name: AnalysisSession.from_segment(
                segment, controllers=dict(system.controllers) or None,
                name=f"pool:{segment.name}")
            for segment in system.buses.values()
        }
        engine = CompositionalAnalysis(system, sessions=sessions)
        result = engine.run()
        fresh = CompositionalAnalysis(system, incremental=False).run()
        _assert_identical(fresh, result)
        assert all(session.queries > 0 for session in sessions.values())
        assert engine.session_for("CAN-0") is sessions["CAN-0"]

    def test_unknown_session_bus_rejected(self):
        system = multibus_system(n_buses=2, messages_per_bus=6, seed=1)
        session = AnalysisSession.from_segment(system.buses["CAN-0"])
        with pytest.raises(ValueError, match="unknown buses"):
            CompositionalAnalysis(system, sessions={"CAN-X": session})

    def test_process_mode_falls_back_to_rebuild_path(self, monkeypatch):
        """Sessions are in-process state; under REPRO_PARALLEL=process the
        sweep uses the picklable rebuild jobs -- and stays bit-identical."""
        system = multibus_system(n_buses=3, messages_per_bus=6, seed=17)
        monkeypatch.setenv("REPRO_PARALLEL", "serial")
        serial = CompositionalAnalysis(system).run()
        monkeypatch.setenv("REPRO_PARALLEL", "process")
        process = CompositionalAnalysis(system).run()
        _assert_identical(serial, process)

    def test_thread_mode_bit_identical(self, monkeypatch):
        system = multibus_system(n_buses=4, messages_per_bus=8, seed=19)
        monkeypatch.setenv("REPRO_PARALLEL", "serial")
        serial = CompositionalAnalysis(system).run()
        monkeypatch.setenv("REPRO_PARALLEL", "thread")
        threaded = CompositionalAnalysis(system).run()
        _assert_identical(serial, threaded)

"""Unit tests for schedulability verdicts and message-loss prediction."""

from __future__ import annotations

import pytest

from repro.analysis.schedulability import (
    analyze_schedulability,
    message_loss_fraction,
    response_time_table,
)
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import BurstErrorModel
from repro.experiments import BEST_CASE, WORST_CASE


class TestVerdicts:
    def test_small_matrix_is_schedulable(self, small_kmatrix, small_bus):
        report = analyze_schedulability(small_kmatrix, small_bus)
        assert report.all_deadlines_met
        assert report.loss_fraction == 0.0
        assert not report.missed
        assert not report.lossy

    def test_verdict_fields_are_consistent(self, small_kmatrix, small_bus):
        report = analyze_schedulability(small_kmatrix, small_bus,
                                        assumed_jitter_fraction=0.2)
        for verdict in report.verdicts:
            assert verdict.slack == pytest.approx(
                verdict.deadline - verdict.worst_case_response)
            assert verdict.meets_deadline == (verdict.slack >= -1e-9)
            assert verdict.can_be_lost == (not verdict.meets_deadline)

    def test_verdict_lookup(self, small_kmatrix, small_bus):
        report = analyze_schedulability(small_kmatrix, small_bus)
        assert report.verdict_for("FastA").name == "FastA"
        with pytest.raises(KeyError):
            report.verdict_for("Nope")

    def test_deadline_policy_changes_verdicts(self, small_kmatrix, small_bus):
        period = analyze_schedulability(small_kmatrix, small_bus,
                                        assumed_jitter_fraction=0.5,
                                        deadline_policy="period")
        rearrival = analyze_schedulability(small_kmatrix, small_bus,
                                           assumed_jitter_fraction=0.5,
                                           deadline_policy="min-rearrival")
        for p_verdict, r_verdict in zip(period.verdicts, rearrival.verdicts):
            assert r_verdict.deadline <= p_verdict.deadline + 1e-9
        assert rearrival.loss_fraction >= period.loss_fraction

    def test_total_slack_positive_for_schedulable_system(self, small_kmatrix,
                                                         small_bus):
        report = analyze_schedulability(small_kmatrix, small_bus)
        assert report.total_slack > 0
        assert report.worst_normalized_slack > 0

    def test_describe_lists_misses(self, small_kmatrix, small_bus):
        text = analyze_schedulability(small_kmatrix, small_bus).describe()
        assert "utilization" in text


class TestLossFraction:
    def test_loss_fraction_between_zero_and_one(self, small_powertrain):
        kmatrix, bus, controllers = small_powertrain
        for fraction in (0.0, 0.3, 0.6):
            loss = message_loss_fraction(kmatrix, bus, fraction,
                                         controllers=controllers)
            assert 0.0 <= loss <= 1.0

    def test_loss_monotone_in_jitter_for_worst_case(self, small_powertrain):
        kmatrix, bus, controllers = small_powertrain
        losses = [
            WORST_CASE.analyze(kmatrix, bus, fraction, controllers).loss_fraction
            for fraction in (0.0, 0.2, 0.4, 0.6)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(losses, losses[1:]))

    def test_worst_case_loses_at_least_as_much_as_best_case(self,
                                                            small_powertrain):
        kmatrix, bus, controllers = small_powertrain
        for fraction in (0.0, 0.25, 0.5):
            best = BEST_CASE.analyze(kmatrix, bus, fraction, controllers)
            worst = WORST_CASE.analyze(kmatrix, bus, fraction, controllers)
            assert worst.loss_fraction >= best.loss_fraction - 1e-9

    def test_errors_increase_loss(self, small_bus):
        messages = [
            CanMessage(name=f"M{i}", can_id=0x100 + i, dlc=8, period=5.0,
                       deadline=1.8, sender=f"E{i % 3}")
            for i in range(6)
        ]
        kmatrix = KMatrix(messages=messages)
        clean = analyze_schedulability(kmatrix, small_bus,
                                       deadline_policy="explicit")
        noisy = analyze_schedulability(
            kmatrix, small_bus, deadline_policy="explicit",
            error_model=BurstErrorModel(min_interarrival=10.0, burst_length=3,
                                        intra_burst_gap=0.3))
        assert noisy.loss_fraction >= clean.loss_fraction
        assert noisy.loss_fraction > 0.0


class TestHelpers:
    def test_response_time_table_from_mapping(self, small_kmatrix, small_bus):
        from repro.analysis.response_time import CanBusAnalysis
        results = CanBusAnalysis(small_kmatrix, small_bus).analyze_all()
        rows = response_time_table(results)
        assert len(rows) == len(small_kmatrix)
        for _name, best, worst in rows:
            assert worst >= best

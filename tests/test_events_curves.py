"""Unit tests for empirical traces and arrival-curve wrappers."""

from __future__ import annotations

import pytest

from repro.events.curves import (
    ArrivalCurve,
    EmpiricalEventTrace,
    curve_from_event_model,
    distance_from_event_model,
    merge_traces,
)
from repro.events.model import PeriodicEventModel, PeriodicWithJitter


class TestEmpiricalEventTrace:
    def test_count_in_window(self):
        trace = EmpiricalEventTrace(timestamps=[0.0, 5.0, 10.0, 15.0])
        assert trace.count_in_window(0.0, 10.0) == 2
        assert trace.count_in_window(0.0, 10.1) == 3
        assert trace.count_in_window(20.0, 10.0) == 0

    def test_add_keeps_order(self):
        trace = EmpiricalEventTrace(timestamps=[5.0, 1.0])
        trace.add(3.0)
        assert trace.timestamps == [1.0, 3.0, 5.0]

    def test_empirical_eta_plus_of_periodic_trace(self):
        trace = EmpiricalEventTrace(timestamps=[i * 10.0 for i in range(10)])
        assert trace.empirical_eta_plus(10.5) == 2
        assert trace.empirical_eta_plus(1.0) == 1

    def test_empirical_delta_functions(self):
        trace = EmpiricalEventTrace(timestamps=[0.0, 9.0, 20.0, 29.0])
        assert trace.empirical_delta_minus(2) == pytest.approx(9.0)
        assert trace.empirical_delta_plus(2) == pytest.approx(11.0)
        assert trace.empirical_delta_minus(5) == 0.0

    def test_inter_arrival_times(self):
        trace = EmpiricalEventTrace(timestamps=[0.0, 2.0, 7.0])
        assert trace.inter_arrival_times() == [2.0, 5.0]

    def test_empty_trace_is_harmless(self):
        trace = EmpiricalEventTrace()
        assert len(trace) == 0
        assert trace.empirical_eta_plus(10.0) == 0
        assert trace.empirical_eta_minus(10.0) == 0

    def test_merge_traces(self):
        merged = merge_traces([
            EmpiricalEventTrace(timestamps=[0.0, 10.0]),
            EmpiricalEventTrace(timestamps=[5.0]),
        ])
        assert merged.timestamps == [0.0, 5.0, 10.0]

    def test_analytic_model_dominates_jittered_trace(self):
        """An analytic model with the trace's parameters must upper-bound it."""
        model = PeriodicWithJitter(period=10.0, jitter=3.0)
        # Simulated arrivals: period 10, each displaced by <= 3 ms.
        offsets = [0.0, 2.5, 1.0, 3.0, 0.5, 2.0]
        trace = EmpiricalEventTrace(
            timestamps=[i * 10.0 + offsets[i % len(offsets)] for i in range(30)])
        for dt in (1.0, 5.0, 10.0, 25.0, 50.0, 100.0):
            assert model.eta_plus(dt) >= trace.empirical_eta_plus(dt)
            assert model.eta_minus(dt) <= trace.empirical_eta_minus(dt)


class TestCurveWrappers:
    def test_curve_from_event_model_delegates(self):
        model = PeriodicEventModel(period=10.0)
        curve = curve_from_event_model(model)
        assert curve.max_events(25.0) == model.eta_plus(25.0)
        assert curve.min_events(25.0) == model.eta_minus(25.0)

    def test_distance_from_event_model_delegates(self):
        model = PeriodicWithJitter(period=10.0, jitter=2.0)
        distance = distance_from_event_model(model)
        assert distance.min_span(3) == model.delta_minus(3)
        assert distance.max_span(3) == model.delta_plus(3)

    def test_dominates(self):
        loose = curve_from_event_model(PeriodicWithJitter(period=10.0, jitter=5.0))
        tight = curve_from_event_model(PeriodicEventModel(period=10.0))
        horizons = [1.0, 10.0, 50.0]
        assert loose.dominates(tight, horizons)
        assert not tight.dominates(loose, horizons)

    def test_trace_to_arrival_curve(self):
        trace = EmpiricalEventTrace(timestamps=[0.0, 10.0, 20.0])
        curve = trace.to_arrival_curve("measured")
        assert isinstance(curve, ArrivalCurve)
        assert curve.max_events(25.0) == 3

"""Persistent result store + named workload registry tests.

The store's contract mirrors the serving caches it persists: every
store-served answer must be *bit-identical* to a cold solve, and every
failure mode of the disk (torn writes, foreign bytes, stale schema
versions, concurrent daemons sharing one directory) must degrade to a
counted miss plus a cold solve -- never a wrong number, never an
exception out of a request.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.analysis.response_time import MessageResponseTime
from repro.can.bus import CanBus
from repro.obs.metrics import MetricsRegistry
from repro.server import AnalysisDaemon, DaemonError, InProcessClient, TcpClient
from repro.server.faults import FaultInjector
from repro.server.harness import ServerHarness
from repro.service.session import AnalysisSession
from repro.store import ResultStore
from repro.store.codec import (
    SCHEMA_VERSION,
    bus_payload_from_json,
    bus_payload_to_json,
    float_from_json,
    float_to_json,
    system_result_from_json,
    system_result_to_json,
)
from repro.whatif.session import SystemSession
from repro.whatif.system_deltas import BusSpeedDelta, SegmentConfigDelta
from repro.workloads import builtin_registry, multibus_system, synthetic_kmatrix
from repro.service.deltas import JitterDelta


def _bus_session(n_messages=10, seed=0, **kwargs) -> AnalysisSession:
    kmatrix = synthetic_kmatrix(n_messages, seed=seed)
    bus = CanBus(name="B", bit_rate_bps=500_000.0)
    return AnalysisSession(kmatrix, bus, **kwargs)


def _fleet(seed=7):
    return multibus_system(n_buses=3, messages_per_bus=8, seed=seed)


# --------------------------------------------------------------------------- #
# Codec: bit-exact round trips
# --------------------------------------------------------------------------- #
class TestCodec:
    def test_floats_round_trip_bit_exactly(self):
        values = [0.0, -0.0, 1e-308, 0.1 + 0.2, 123456.789, math.pi,
                  math.inf, -math.inf]
        for value in values:
            token = float_to_json(value)
            back = float_from_json(json.loads(json.dumps(token)))
            assert math.copysign(1.0, back) == math.copysign(1.0, value)
            assert back == value or (math.isnan(back) and math.isnan(value))

    def test_nan_round_trips(self):
        assert math.isnan(float_from_json(float_to_json(math.nan)))

    def test_unbounded_result_round_trips(self):
        result = MessageResponseTime(
            name="M1", can_id=0x80, transmission_time=0.26, blocking=0.26,
            jitter=1.5, worst_case=math.inf, best_case=0.26,
            busy_period=math.inf, instances_analyzed=3, bounded=False,
            queuing_delays=(0.3, 0.7, math.inf))
        payload = bus_payload_to_json({"M1": result})
        wire = json.loads(json.dumps(payload, allow_nan=False))
        assert bus_payload_from_json(wire)["M1"] == result

    def test_system_result_round_trips(self):
        outcome = SystemSession(_fleet()).analyze().result
        payload = system_result_to_json(outcome)
        wire = json.loads(json.dumps(payload, allow_nan=False))
        assert system_result_from_json(wire) == outcome


# --------------------------------------------------------------------------- #
# Store core: atomicity, corruption tolerance, eviction
# --------------------------------------------------------------------------- #
class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.put("bus", "abc123", {"results": {}})
        assert store.get("bus", "abc123") == {"results": {}}
        assert store.contains("bus", "abc123")
        assert store.get("bus", "feed00") is None
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1

    def test_kinds_are_disjoint(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("bus", "aa", {"results": {}})
        assert store.get("system", "aa") is None

    def test_bad_digest_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.put("bus", "../escape", {})
        with pytest.raises(ValueError):
            store.get("bus", "")

    def test_torn_bytes_are_a_counted_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("bus", "aa", {"results": {}})
        path = store._path("bus", "aa")
        path.write_bytes(path.read_bytes()[:11])
        assert store.get("bus", "aa") is None
        assert store.stats()["corrupt"] == 1
        assert not path.exists(), "corrupt entries are quarantined"

    def test_foreign_json_is_a_counted_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store._path("bus", "aa").write_text("[1, 2, 3]")
        assert store.get("bus", "aa") is None
        assert store.stats()["corrupt"] == 1

    def test_key_mismatch_is_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("bus", "aa", {"results": {}})
        raw = store._path("bus", "aa").read_bytes()
        store._path("bus", "bb").write_bytes(raw)
        assert store.get("bus", "bb") is None
        assert store.stats()["corrupt"] == 1

    def test_stale_schema_is_a_miss_but_not_deleted(self, tmp_path):
        store = ResultStore(tmp_path)
        record = {"schema": SCHEMA_VERSION + 1, "kind": "bus", "key": "aa",
                  "payload": {"results": {}}}
        store._path("bus", "aa").write_text(json.dumps(record))
        assert store.get("bus", "aa") is None
        assert store.stats()["stale"] == 1
        assert store._path("bus", "aa").exists(), \
            "a newer daemon generation may own stale-schema entries"

    def test_eviction_under_size_pressure(self, tmp_path):
        store = ResultStore(tmp_path)
        for index in range(10):
            store.put("bus", f"d{index:02d}", {"results": {"pad": "x" * 200}})
        total = store.stats()["bytes"]
        store.max_bytes = total // 2
        store.put("bus", "d10", {"results": {"pad": "x" * 200}})
        stats = store.stats()
        assert stats["bytes"] <= store.max_bytes
        assert stats["evictions"] > 0
        # The newest entry survives (oldest-read go first).
        assert store.contains("bus", "d10")

    def test_lru_touch_on_read(self, tmp_path):
        import os
        store = ResultStore(tmp_path)
        store.put("bus", "old", {"results": {}})
        store.put("bus", "new", {"results": {}})
        # Make "old" genuinely oldest, then read it to refresh it.
        past = store._path("bus", "old")
        os.utime(past, (1, 1))
        assert store.get("bus", "old") is not None
        store.max_bytes = store.stats()["bytes"] - 1
        store.compact()
        assert store.contains("bus", "old"), "read entries are LRU-refreshed"

    def test_compact_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        for index in range(4):
            store.put("bus", f"e{index}", {"results": {}})
        stats = store.compact(max_bytes=0)
        assert stats["entries"] == 0 and stats["evictions"] == 4
        store.put("bus", "f0", {"results": {}})
        assert store.clear() == 1
        assert store.stats()["entries"] == 0

    def test_metrics_binding(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path, metrics=registry)
        store.put("bus", "aa", {"results": {}})
        store.get("bus", "aa")
        store.get("bus", "bb")
        assert registry.value("store_publishes_total") == 1
        assert registry.value("store_lookups_total", result="hit") == 1
        assert registry.value("store_lookups_total", result="miss") == 1


# --------------------------------------------------------------------------- #
# Fault injection: the store degrades, requests never fail
# --------------------------------------------------------------------------- #
class TestStoreFaults:
    def test_torn_write_degrades_to_cold_solve(self, tmp_path):
        faults = FaultInjector.from_spec("store.torn_write@1")
        cold = _bus_session().analyze()
        warm_writer = _bus_session(
            store=ResultStore(tmp_path, faults=faults))
        assert warm_writer.analyze().results == cold.results
        # The publish was torn: a fresh session must cold-solve (counted
        # corrupt), still bit-identically, and then re-publish cleanly.
        store = ResultStore(tmp_path, faults=FaultInjector())
        reader = _bus_session(store=store)
        result = reader.analyze()
        assert result.results == cold.results
        assert reader.store_hits == 0
        assert store.stats()["corrupt"] == 1
        assert store.stats()["publishes"] == 1
        third = _bus_session(store=ResultStore(tmp_path))
        assert third.analyze().results == cold.results
        assert third.store_hits == 1

    def test_stale_schema_degrades_to_cold_solve(self, tmp_path):
        faults = FaultInjector.from_spec("store.stale_schema@1")
        cold = _bus_session().analyze()
        writer = _bus_session(store=ResultStore(tmp_path, faults=faults))
        assert writer.analyze().results == cold.results
        store = ResultStore(tmp_path)
        reader = _bus_session(store=store)
        assert reader.analyze().results == cold.results
        assert reader.store_hits == 0
        assert store.stats()["stale"] == 1

    def test_torn_write_through_daemon_requests_never_fail(self, tmp_path):
        system = _fleet()
        with AnalysisDaemon(name="cold") as plain:
            plain.add_system("fleet", system)
            want = InProcessClient(plain).analyze_system("fleet")
        faults = FaultInjector.from_spec("store.torn_write@1+")
        with AnalysisDaemon(
                name="torn",
                store=ResultStore(tmp_path, faults=faults)) as daemon:
            daemon.add_system("fleet", system)
            client = InProcessClient(daemon)
            assert client.analyze_system("fleet") == want
            stats = client.store_stats()["stats"]
            assert stats["publish_errors"] > 0
            assert stats["publishes"] == 0


# --------------------------------------------------------------------------- #
# Bit-identity: store-served == cold solve, across many seeds
# --------------------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.mark.parametrize("seed", range(24))
    def test_bus_results_bit_identical_across_seeds(self, tmp_path, seed):
        cold = _bus_session(seed=seed).analyze()
        publisher = _bus_session(seed=seed, store=ResultStore(tmp_path))
        publisher.analyze()
        served = _bus_session(seed=seed, store=ResultStore(tmp_path))
        result = served.analyze()
        assert served.store_hits == 1
        assert result.results == cold.results
        assert result.report == cold.report

    def test_delta_variants_round_trip(self, tmp_path):
        deltas = (JitterDelta("Msg000_ECU1", 1.25),)
        cold = _bus_session(seed=3).query(deltas)
        publisher = _bus_session(seed=3, store=ResultStore(tmp_path))
        publisher.query(deltas)
        served = _bus_session(seed=3, store=ResultStore(tmp_path))
        result = served.query(deltas)
        assert served.store_hits == 1
        assert result.results == cold.results

    def test_system_results_bit_identical(self, tmp_path):
        system = _fleet()
        cold = SystemSession(system).analyze()
        SystemSession(system, store=ResultStore(tmp_path)).analyze()
        served_session = SystemSession(system, store=ResultStore(tmp_path))
        served = served_session.analyze()
        assert served_session.store_hits == 1
        assert served.result == cold.result
        assert served.stats.cache_hit

    def test_system_delta_variants_round_trip(self, tmp_path):
        system = _fleet()
        delta = BusSpeedDelta("CAN-1", 250_000.0)
        cold = SystemSession(system).query((delta,))
        SystemSession(system, store=ResultStore(tmp_path)).query((delta,))
        served_session = SystemSession(system, store=ResultStore(tmp_path))
        served = served_session.query((delta,))
        assert served_session.store_hits == 1
        assert served.result == cold.result


# --------------------------------------------------------------------------- #
# Serving stack: restarts, shared directories, concurrency
# --------------------------------------------------------------------------- #
class TestDaemonRestart:
    def test_two_daemons_share_one_store_dir(self, tmp_path):
        system = _fleet()
        with AnalysisDaemon(name="plain") as plain:
            plain.add_system("fleet", system)
            want = InProcessClient(plain).analyze_system("fleet")

        with AnalysisDaemon(name="a", store=ResultStore(tmp_path)) as a:
            a.add_system("fleet", system)
            first = InProcessClient(a).analyze_system("fleet")
        assert first == want

        with AnalysisDaemon(name="b", store=ResultStore(tmp_path)) as b:
            b.add_system("fleet", system)
            client = InProcessClient(b)
            assert client.analyze_system("fleet") == want
            assert b.metrics.value(
                "store_lookups_total", result="hit") >= 1
            stats = client.store_stats()
            assert stats["enabled"] is True
            assert stats["stats"]["hits"] >= 1

    def test_per_shard_query_served_from_store(self, tmp_path):
        system = _fleet()
        with AnalysisDaemon(name="a", store=ResultStore(tmp_path)) as a:
            a.add_system("fleet", system)
            client = InProcessClient(a)
            client.analyze_system("fleet")
            want = client.query("fleet/CAN-0")
        with AnalysisDaemon(name="b", store=ResultStore(tmp_path)) as b:
            b.add_system("fleet", system)
            got = InProcessClient(b).query("fleet/CAN-0")
        assert got["results"] == want["results"]

    def test_store_op_compact_and_clear(self, tmp_path):
        with AnalysisDaemon(store=ResultStore(tmp_path)) as daemon:
            daemon.add_system("fleet", _fleet())
            client = InProcessClient(daemon)
            client.analyze_system("fleet")
            assert client.store_stats()["stats"]["entries"] > 0
            compacted = client.store_compact(max_bytes=0)
            assert compacted["stats"]["entries"] == 0
            client.analyze_system("fleet")  # in-memory caches still serve
            cleared = client.store_clear()
            assert cleared["stats"]["entries"] == 0

    def test_store_op_validates_input(self, tmp_path):
        with AnalysisDaemon(store=ResultStore(tmp_path)) as daemon:
            client = InProcessClient(daemon)
            with pytest.raises(DaemonError) as err:
                client.request("store", action="explode")
            assert err.value.code == "protocol"
            with pytest.raises(DaemonError) as err:
                client.store_compact(max_bytes=-1)
            assert err.value.code == "protocol"

    def test_tcp_restart_serves_system_query_from_store(self, tmp_path):
        def factory() -> AnalysisDaemon:
            daemon = AnalysisDaemon(store=ResultStore(tmp_path))
            daemon.add_system("fleet", _fleet())
            return daemon

        delta = SegmentConfigDelta(
            "CAN-0", (JitterDelta("B0_Msg000_ECU1", 0.5),))
        with ServerHarness(factory) as harness:
            with TcpClient(*harness.address) as client:
                first = client.system_query("fleet", [delta])
            harness.restart()
            with TcpClient(*harness.address) as client:
                second = client.system_query("fleet", [delta])
                hits = harness.daemon.metrics.value(
                    "store_lookups_total", result="hit")
        assert second["messages"] == first["messages"]
        assert hits >= 1

    def test_concurrent_publish_and_lookup(self, tmp_path):
        store = ResultStore(tmp_path)
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def worker(worker_seed: int) -> None:
            try:
                barrier.wait(timeout=30)
                for seed in (worker_seed, worker_seed + 1, 0):
                    session = _bus_session(
                        n_messages=6, seed=seed,
                        store=ResultStore(tmp_path))
                    cold = _bus_session(n_messages=6, seed=seed).analyze()
                    assert session.analyze().results == cold.results
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert store.stats()["entries"] > 0


# --------------------------------------------------------------------------- #
# Named workload registry
# --------------------------------------------------------------------------- #
class TestWorkloadRegistry:
    def test_builtin_names(self):
        registry = builtin_registry()
        assert "multibus_chain" in registry.names()
        assert "powertrain" in registry.names()
        listing = registry.describe()
        assert listing["multibus_chain"]["kind"] == "system"
        assert "n_buses" in listing["multibus_chain"]["params"]

    def test_expansion_is_deterministic(self):
        registry = builtin_registry()
        params = {"n_buses": 2, "messages_per_bus": 6, "seed": 5}
        first = registry.expand("multibus_chain", params)
        second = registry.expand("multibus_chain", params)
        assert first.fingerprint() == second.fingerprint()

    def test_unknown_generator_and_param_raise(self):
        registry = builtin_registry()
        with pytest.raises(ValueError):
            registry.expand("nope", {})
        with pytest.raises(ValueError):
            registry.expand("multibus_chain", {"bogus": 1})

    def test_register_workload_over_the_wire(self, tmp_path):
        params = {"n_buses": 2, "messages_per_bus": 6, "seed": 5}
        with AnalysisDaemon(store=ResultStore(tmp_path)) as daemon:
            client = InProcessClient(daemon)
            reply = client.register_workload("fleet", "multibus_chain",
                                             params)
            assert reply["system"] == "fleet"
            assert reply["generator"] == "multibus_chain"
            assert set(reply["shards"]) == {"CAN-0", "CAN-1"}
            want = client.analyze_system("fleet")
        # Full-topology registration of the same parameters is
        # fingerprint-identical, so a restart via the *named* path serves
        # the explicitly-registered fleet's results (and vice versa).
        with AnalysisDaemon(store=ResultStore(tmp_path)) as daemon:
            client = InProcessClient(daemon)
            client.register_system(
                "fleet", builtin_registry().expand("multibus_chain", params))
            assert client.analyze_system("fleet") == want
            assert daemon.metrics.value(
                "store_lookups_total", result="hit") >= 1

    def test_register_workload_config_kind(self):
        with AnalysisDaemon() as daemon:
            client = InProcessClient(daemon)
            reply = client.register_workload(
                "bench", "synthetic_bus", {"n_messages": 8, "seed": 1})
            assert reply == {"target": "bench", "generator": "synthetic_bus"}
            answer = client.query("bench")
            assert len(answer["results"]) == 8

    def test_workload_errors_are_typed(self):
        with AnalysisDaemon() as daemon:
            client = InProcessClient(daemon)
            with pytest.raises(DaemonError) as err:
                client.register_workload("x", "nope")
            assert err.value.code == "invalid"
            with pytest.raises(DaemonError) as err:
                client.register_workload("x", "multibus_chain", {"bogus": 1})
            assert err.value.code == "invalid"
            with pytest.raises(DaemonError) as err:
                client.request("register", name="x", workload={})
            assert err.value.code == "protocol"

    def test_identical_workloads_dedupe_into_one_session(self):
        with AnalysisDaemon() as daemon:
            client = InProcessClient(daemon)
            params = {"n_messages": 8, "seed": 1}
            client.register_workload("alice", "synthetic_bus", params)
            client.register_workload("bob", "synthetic_bus", params)
            assert daemon.pool.get("alice") is daemon.pool.get("bob")

"""Unit tests for the standard event models (eta/delta calculus)."""

from __future__ import annotations

import pytest

from repro.events.model import (
    EventModel,
    PeriodicEventModel,
    PeriodicWithBurst,
    PeriodicWithJitter,
    SporadicEventModel,
    event_model_from_parameters,
)


class TestPeriodicEventModel:
    def test_eta_plus_counts_grid_points(self):
        model = PeriodicEventModel(period=10.0)
        assert model.eta_plus(0.0) == 0
        assert model.eta_plus(1.0) == 1
        assert model.eta_plus(10.0) == 1
        assert model.eta_plus(10.5) == 2
        assert model.eta_plus(100.0) == 10

    def test_eta_minus_counts_guaranteed_events(self):
        model = PeriodicEventModel(period=10.0)
        assert model.eta_minus(9.9) == 0
        assert model.eta_minus(10.0) == 1
        assert model.eta_minus(35.0) == 3

    def test_delta_functions(self):
        model = PeriodicEventModel(period=10.0)
        assert model.delta_minus(1) == 0.0
        assert model.delta_minus(3) == 20.0
        assert model.delta_plus(3) == 20.0

    def test_rejects_nonzero_jitter(self):
        with pytest.raises(ValueError):
            PeriodicEventModel(period=10.0, jitter=1.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicEventModel(period=0.0)


class TestPeriodicWithJitter:
    def test_eta_plus_includes_jitter(self):
        model = PeriodicWithJitter(period=10.0, jitter=4.0)
        # Window of 7 ms can contain events at 0 and at 10-4=6.
        assert model.eta_plus(7.0) == 2
        assert model.eta_plus(0.5) == 1

    def test_eta_minus_excludes_jitter(self):
        model = PeriodicWithJitter(period=10.0, jitter=4.0)
        assert model.eta_minus(13.9) == 0
        assert model.eta_minus(14.0) == 1

    def test_delta_minus_shrinks_with_jitter(self):
        model = PeriodicWithJitter(period=10.0, jitter=4.0)
        assert model.delta_minus(2) == 6.0
        assert model.delta_plus(2) == 14.0

    def test_effective_min_distance(self):
        model = PeriodicWithJitter(period=10.0, jitter=4.0)
        assert model.effective_min_distance == pytest.approx(6.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            PeriodicWithJitter(period=10.0, jitter=-1.0)


class TestPeriodicWithBurst:
    def test_burst_size_bounded_by_min_distance(self):
        model = PeriodicWithBurst(period=10.0, jitter=25.0, min_distance=1.0)
        assert model.is_bursty
        assert model.burst_size >= 2
        # In a 1 ms window at most ceil(1/1)+1 = 2 events.
        assert model.eta_plus(1.0) == 2

    def test_eta_plus_uses_minimum_of_bounds(self):
        model = PeriodicWithBurst(period=10.0, jitter=25.0, min_distance=1.0)
        # Long horizons are governed by the period+jitter bound.
        assert model.eta_plus(100.0) == 13
        # Short horizons are governed by the distance bound.
        assert model.eta_plus(2.0) == 3

    def test_delta_minus_uses_min_distance(self):
        model = PeriodicWithBurst(period=10.0, jitter=25.0, min_distance=1.0)
        assert model.delta_minus(3) == pytest.approx(2.0)

    def test_requires_min_distance(self):
        with pytest.raises(ValueError):
            PeriodicWithBurst(period=10.0, jitter=25.0, min_distance=0.0)


class TestSporadicEventModel:
    def test_no_lower_bound(self):
        model = SporadicEventModel(period=10.0)
        assert model.eta_minus(1000.0) == 0

    def test_upper_bound_matches_min_interarrival(self):
        model = SporadicEventModel(period=10.0)
        assert model.eta_plus(25.0) == 3


class TestFactory:
    def test_zero_jitter_gives_periodic(self):
        model = event_model_from_parameters(period=5.0)
        assert isinstance(model, PeriodicEventModel)

    def test_small_jitter_gives_jitter_model(self):
        model = event_model_from_parameters(period=5.0, jitter=1.0)
        assert isinstance(model, PeriodicWithJitter)

    def test_large_jitter_with_distance_gives_burst_model(self):
        model = event_model_from_parameters(period=5.0, jitter=12.0,
                                            min_distance=0.5)
        assert isinstance(model, PeriodicWithBurst)

    def test_sporadic_flag(self):
        model = event_model_from_parameters(period=5.0, jitter=1.0, sporadic=True)
        assert isinstance(model, SporadicEventModel)

    def test_with_jitter_returns_new_instance(self):
        model = event_model_from_parameters(period=5.0, jitter=1.0)
        changed = model.with_jitter(2.0)
        assert changed.jitter == 2.0
        assert model.jitter == 1.0

    def test_describe_mentions_parameters(self):
        model = event_model_from_parameters(period=5.0, jitter=1.0)
        text = model.describe()
        assert "P=5" in text and "J=1" in text


class TestConsistency:
    """Cross-checks between eta and delta views."""

    @pytest.mark.parametrize("model", [
        PeriodicEventModel(period=7.0),
        PeriodicWithJitter(period=7.0, jitter=3.0),
        PeriodicWithBurst(period=7.0, jitter=20.0, min_distance=0.5),
        SporadicEventModel(period=7.0, jitter=2.0),
    ])
    def test_eta_plus_of_delta_minus_covers_n(self, model: EventModel):
        # n events fit into a window just larger than delta_minus(n).
        for n in range(2, 8):
            window = model.delta_minus(n) + 1e-6
            assert model.eta_plus(window) >= n

    @pytest.mark.parametrize("model", [
        PeriodicEventModel(period=7.0),
        PeriodicWithJitter(period=7.0, jitter=3.0),
        PeriodicWithBurst(period=7.0, jitter=20.0, min_distance=0.5),
    ])
    def test_monotonicity(self, model: EventModel):
        windows = [0.5, 1.0, 5.0, 7.0, 14.0, 70.0]
        values = [model.eta_plus(dt) for dt in windows]
        assert values == sorted(values)
        lower = [model.eta_minus(dt) for dt in windows]
        assert lower == sorted(lower)
        assert all(lo <= hi for lo, hi in zip(lower, values))

"""Fault-injection tests of the serving tier.

Every test drives a *failure* path -- deadline blown, queue full, daemon
draining, connection dropped, daemon restarted mid-conversation -- and
asserts the contract of :mod:`repro.server.protocol`'s error taxonomy:
the client always gets a typed error or a bit-identical retried result,
never a hung future, a dead socket without recourse, or a silently
wrong number.

Fault schedules come from :class:`repro.server.faults.FaultInjector` so
each failure fires deterministically on the n-th pass through a named
site; nothing here sleeps and hopes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import pytest

from repro.can.kmatrix import KMatrix
from repro.cancel import Cancelled, CancelToken, DeadlineExceeded
from repro.server import AnalysisDaemon, DaemonError, InProcessClient, \
    JobQueue, ProtocolError, TcpClient
from repro.server.client import ConnectionLost, RetryPolicy
from repro.server.faults import (
    FaultInjector,
    FaultSpecError,
    from_env,
)
from repro.server.harness import ServerHarness
from repro.server.jobs import QueueFullError
from repro.server.protocol import deltas_to_json
from repro.server.tcp import start_server
from repro.service.deltas import BusConfiguration, JitterDelta
from repro.workloads.powertrain import (
    PowertrainConfig,
    powertrain_bus,
    powertrain_controllers,
    powertrain_kmatrix,
)
from repro.workloads.scaling import scaled_kmatrix

#: Job-queue modes the daemon must behave identically under; ``process``
#: maps to ``thread`` inside the queue (jobs share the session pool).
MODES = ("serial", "thread", "process")


def _powertrain_config(n_messages: int = 20) -> BusConfiguration:
    config = PowertrainConfig(n_messages=n_messages)
    return BusConfiguration(
        kmatrix=powertrain_kmatrix(config),
        bus=powertrain_bus(config),
        assumed_jitter_fraction=0.15,
        controllers=powertrain_controllers(config))


def _divergent_config() -> BusConfiguration:
    """A workload whose utilization sits just above 1.

    The busy-period fixed point grows geometrically toward the horizon,
    so an unbounded analysis takes seconds -- long enough that any
    reasonable ``deadline_ms`` fires first, on either kernel backend.
    """
    bus = powertrain_bus()
    base = scaled_kmatrix(0.99, bus, seed=1)
    u0 = sum(bus.transmission_time(m) / m.period for m in base.messages)
    scale = u0 / 1.00002
    overloaded = KMatrix(messages=[replace(m, period=m.period * scale)
                                   for m in base.messages])
    return BusConfiguration(kmatrix=overloaded, bus=bus)


@pytest.fixture(scope="module")
def config() -> BusConfiguration:
    return _powertrain_config()


@pytest.fixture(scope="module")
def divergent() -> BusConfiguration:
    return _divergent_config()


def _fresh_daemon(config, *, faults=None, **kwargs) -> AnalysisDaemon:
    daemon = AnalysisDaemon(
        faults=faults if faults is not None else FaultInjector(), **kwargs)
    daemon.add_config("pt", config)
    return daemon


def _assert_pool_clean(daemon: AnalysisDaemon) -> None:
    """No hung futures, no leaked worker threads after a drain."""
    stats = daemon.jobs.stats()
    assert stats["pending"] == 0
    assert stats["completed"] == stats["submitted"]
    assert daemon.jobs.alive_workers == 0
    assert not any(t.name.startswith("repro-worker")
                   for t in threading.enumerate())


# --------------------------------------------------------------------------- #
# Fault-spec parsing
# --------------------------------------------------------------------------- #
class TestFaultSpecs:
    def test_spec_round_trip(self):
        injector = FaultInjector.from_spec(
            "tcp.drop@2, worker.stall@1:200, handle.stall@3+:50")
        assert injector
        assert injector.check("tcp.drop") is None          # hit 1
        rule = injector.check("tcp.drop")                  # hit 2
        assert rule is not None and rule.nth == 2
        assert injector.fired() == ("tcp.drop#2",)

    def test_onwards_rule_keeps_firing(self):
        injector = FaultInjector.from_spec("handle.stall@2+:5")
        assert injector.check("handle.stall") is None
        assert injector.check("handle.stall").arg == 5.0
        assert injector.check("handle.stall").arg == 5.0

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault site"):
            FaultInjector.from_spec("tcp.explode@1")

    @pytest.mark.parametrize("spec", ["tcp.drop@x", "tcp.drop@0",
                                      "tcp.slow@1:fast", "tcp.slow@1:-3"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            FaultInjector.from_spec(spec)

    def test_from_env(self):
        injector = from_env({"REPRO_FAULTS": "tcp.drop@1"})
        assert injector and injector.check("tcp.drop") is not None
        assert not from_env({})

    def test_empty_injector_is_free(self):
        assert FaultInjector().check("tcp.drop") is None


# --------------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------------- #
class TestDeadlines:
    def test_divergent_query_times_out_within_twice_deadline(
            self, config, divergent):
        """The acceptance criterion: a 100 ms deadline against a divergent
        fixed point answers a typed ``timeout`` within 200 ms, while a
        concurrent client's queries still come back bit-identical."""
        daemon = _fresh_daemon(config, mode="thread", workers=2)
        daemon.add_config("div", divergent)
        client = InProcessClient(daemon)
        try:
            reference = client.query("pt")["results"]
            outcome = {}

            def divergent_query():
                start = time.monotonic()
                response = daemon.handle({"op": "query", "target": "div",
                                          "deadline_ms": 100, "id": 1})
                outcome["elapsed_ms"] = (time.monotonic() - start) * 1000
                outcome["response"] = response

            worker = threading.Thread(target=divergent_query)
            worker.start()
            concurrent = client.query("pt")["results"]
            worker.join(timeout=5)
            assert not worker.is_alive()
            response = outcome["response"]
            assert response["ok"] is False
            assert response["code"] == "timeout"
            assert response["id"] == 1
            assert outcome["elapsed_ms"] < 200
            assert concurrent == reference
            assert client.query("pt")["results"] == reference
            assert daemon.handle({"op": "stats"})["result"]["timeouts"] == 1
        finally:
            daemon.close(grace=0.5)
        _assert_pool_clean(daemon)

    def test_generous_deadline_result_bit_identical(self, config):
        daemon = _fresh_daemon(config, mode="serial")
        client = InProcessClient(daemon)
        try:
            plain = client.query("pt")["results"]
            bounded = client.query("pt", deadline_ms=60_000)["results"]
            assert bounded == plain
        finally:
            daemon.close(grace=0.5)

    @pytest.mark.parametrize("bad", ["soon", -5, 0, True])
    def test_invalid_deadline_is_protocol_error(self, config, bad):
        daemon = _fresh_daemon(config, mode="serial")
        try:
            response = daemon.handle(
                {"op": "query", "target": "pt", "deadline_ms": bad})
            assert response["ok"] is False
            assert response["code"] == "protocol"
        finally:
            daemon.close(grace=0.5)

    def test_cancelled_carries_reason(self):
        token = CancelToken()
        token.cancel(reason="draining")
        with pytest.raises(Cancelled) as exc_info:
            token.check()
        assert exc_info.value.reason == "draining"
        with pytest.raises(DeadlineExceeded):
            CancelToken.after_ms(-1).check()


# --------------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_overloaded_response_carries_retry_hint(self, config):
        daemon = _fresh_daemon(config, mode="thread", workers=1,
                               max_inflight=1)
        try:
            with daemon._active_lock:
                daemon._inflight += 1  # occupy the only slot
            response = daemon.handle({"op": "query", "target": "pt"})
            assert response["ok"] is False
            assert response["code"] == "overloaded"
            assert response["retry_after_ms"] >= 50
            # control ops are exempt from admission control
            assert daemon.handle({"op": "health"})["ok"] is True
            stats = daemon.handle({"op": "stats"})["result"]
            assert stats["rejected_overload"] == 1
            with daemon._active_lock:
                daemon._inflight -= 1
        finally:
            daemon.close(grace=0.5)

    def test_client_retries_through_overload(self, config):
        daemon = _fresh_daemon(config, mode="thread", workers=1,
                               max_inflight=1)
        client = InProcessClient(
            daemon, retry=RetryPolicy(attempts=5, base_delay=0.02, jitter=0))
        try:
            reference = client.query("pt")["results"]
            with daemon._active_lock:
                daemon._inflight += 1

            def release():
                time.sleep(0.03)
                with daemon._active_lock:
                    daemon._inflight -= 1

            threading.Thread(target=release).start()
            assert client.query("pt")["results"] == reference
            assert client.retries >= 1
        finally:
            daemon.close(grace=0.5)

    def test_bounded_queue_rejects_with_queue_full(self, monkeypatch):
        # Needs a real worker thread to hold the queue open: neutralise a
        # REPRO_PARALLEL=serial override, which would run the hog inline.
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        jobs = JobQueue(workers=1, mode="thread", max_pending=2)
        gate = threading.Event()
        try:
            jobs.submit(gate.wait, label="hog")
            jobs.submit(lambda: None, label="queued")
            with pytest.raises(QueueFullError) as exc_info:
                jobs.submit(lambda: None, label="rejected")
            assert exc_info.value.retry_after_ms > 0
            assert jobs.rejected == 1
        finally:
            gate.set()
            jobs.shutdown(grace=1.0)


# --------------------------------------------------------------------------- #
# Job-queue shutdown semantics (the submit/shutdown race regression)
# --------------------------------------------------------------------------- #
class TestJobQueueShutdown:
    def test_submit_shutdown_race_never_hangs_a_future(self):
        """Hammer submit against shutdown: every submit either raises or
        returns a future that *resolves* -- the enqueue-after-sentinel
        race used to leave futures forever pending."""
        for _ in range(20):
            jobs = JobQueue(workers=2, mode="thread")
            futures, errors = [], []
            start = threading.Barrier(3)

            def submitter():
                start.wait()
                for _ in range(10):
                    try:
                        futures.append(jobs.submit(lambda: 42))
                    except RuntimeError as error:
                        errors.append(error)

            threads = [threading.Thread(target=submitter) for _ in range(2)]
            for thread in threads:
                thread.start()
            start.wait()
            jobs.shutdown(grace=1.0)
            for thread in threads:
                thread.join(timeout=5)
                assert not thread.is_alive()
            for future in futures:
                assert future.done()  # resolved: result or typed error
                if future.cancelled():
                    continue
                if future.exception() is None:
                    assert future.result(timeout=0) == 42

    def test_straggler_reported_not_ignored(self, monkeypatch):
        """A job that ignores its cancel token degrades the pool visibly."""
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        jobs = JobQueue(workers=1, mode="thread")
        release = threading.Event()
        jobs.submit(lambda: release.wait(10), label="stuck")
        time.sleep(0.02)
        jobs.shutdown(grace=0.05)
        try:
            assert jobs.stragglers  # the worker is stuck past the drain
            assert not jobs.healthy
            assert "STRAGGLERS" in jobs.describe()
            assert jobs.stats()["stragglers"]
        finally:
            release.set()

    def test_drain_cancels_token_aware_job(self, divergent, monkeypatch):
        """A running job holding a cancel token unwinds within the grace
        window with a typed ``Cancelled(reason='draining')``."""
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        jobs = JobQueue(workers=1, mode="thread")
        token = CancelToken()
        analysis = divergent.build_analysis()
        future = jobs.submit(
            lambda: analysis.analyze_all(cancel=token), cancel=token)
        time.sleep(0.05)
        started = time.monotonic()
        jobs.shutdown(grace=1.0)
        assert time.monotonic() - started < 5.0
        with pytest.raises(Cancelled) as exc_info:
            future.result(timeout=0)
        assert exc_info.value.reason == "draining"
        assert not jobs.stragglers


# --------------------------------------------------------------------------- #
# Graceful drain through the daemon (in-process and TCP, all modes)
# --------------------------------------------------------------------------- #
class TestGracefulDrain:
    @pytest.mark.parametrize("mode", MODES)
    def test_shutdown_during_batch_resolves_every_step(self, config, mode):
        """Closing the daemon mid-batch yields, per step, either a result
        bit-identical to a serial run or a typed error entry."""
        reference_daemon = _fresh_daemon(config, mode="serial")
        try:
            reference = InProcessClient(reference_daemon).query(
                "pt", deltas=[JitterDelta(fraction=0.2)])["results"]
        finally:
            reference_daemon.close(grace=0.5)

        daemon = _fresh_daemon(
            config, mode=mode, workers=2,
            faults=FaultInjector.from_spec("worker.stall@1+:40"))
        steps = [{"deltas": deltas_to_json([JitterDelta(fraction=0.2)]),
                  "label": f"step{i}"} for i in range(6)]
        outcome = {}

        def run_batch():
            outcome["response"] = daemon.handle(
                {"op": "batch", "target": "pt",
                 "queries": steps, "id": 3})

        worker = threading.Thread(target=run_batch)
        worker.start()
        time.sleep(0.06)  # let some steps start, others sit queued
        daemon.close(grace=0.15)
        worker.join(timeout=10)
        assert not worker.is_alive()
        response = outcome["response"]
        assert response["id"] == 3
        if response["ok"]:
            results = response["result"]["results"]
            assert len(results) == len(steps)
            for entry in results:
                if "error" in entry:
                    assert entry["code"] in ("draining", "timeout",
                                             "overloaded")
                else:
                    assert entry["results"] == reference
        else:
            assert response["code"] in ("draining", "timeout")
        _assert_pool_clean(daemon)

    @pytest.mark.parametrize("mode", MODES)
    def test_tcp_shutdown_during_batch_answers_not_dead_socket(
            self, config, mode):
        daemon = _fresh_daemon(
            config, mode=mode, workers=2,
            faults=FaultInjector.from_spec("worker.stall@1+:40"))
        server = start_server(daemon, port=0)
        client = TcpClient(*server.address, retry=RetryPolicy(attempts=1))
        outcome = {}

        def run_batch():
            try:
                outcome["result"] = client.batch(
                    "pt", [{"label": f"s{i}"} for i in range(6)])
            except DaemonError as error:
                outcome["error"] = error

        worker = threading.Thread(target=run_batch)
        worker.start()
        time.sleep(0.06)
        server.stop(grace=0.15)
        worker.join(timeout=10)
        assert not worker.is_alive()
        # Either a full per-step answer or a *typed* error -- a bare dead
        # socket surfaces as ConnectionLost, which is also typed.
        if "error" in outcome:
            assert isinstance(outcome["error"], DaemonError)
            assert outcome["error"].code in ("draining", "timeout",
                                             "transport")
        else:
            assert len(outcome["result"]["results"]) == 6
        client.close()
        _assert_pool_clean(daemon)

    def test_post_drain_requests_typed_while_control_ops_answer(self, config):
        daemon = _fresh_daemon(config, mode="thread", workers=1)
        daemon.close(grace=0.2)
        rejected = daemon.handle({"op": "query", "target": "pt"})
        assert rejected["ok"] is False and rejected["code"] == "draining"
        assert daemon.handle({"op": "ping"})["ok"] is True
        health = daemon.handle({"op": "health"})["result"]
        assert health["status"] == "draining"
        assert daemon.handle({"op": "stats"})["result"][
            "rejected_draining"] == 1


# --------------------------------------------------------------------------- #
# TCP faults: drops, slow reads, restarts
# --------------------------------------------------------------------------- #
class TestTcpFaults:
    def test_dropped_connection_retried_bit_identical(self, config):
        daemon = _fresh_daemon(
            config, mode="thread", workers=2,
            faults=FaultInjector.from_spec("tcp.drop@2"))
        server = start_server(daemon, port=0)
        client = TcpClient(*server.address,
                           retry=RetryPolicy(base_delay=0.01, jitter=0))
        try:
            first = client.query("pt")["results"]
            retried = client.query("pt")["results"]  # dropped, then retried
            assert retried == first
            assert client.retries == 1 and client.reconnects == 1
            assert daemon.faults.fired() == ("tcp.drop#2",)
        finally:
            client.close()
            server.stop(grace=0.5)

    def test_drop_without_retries_is_typed_connection_lost(self, config):
        daemon = _fresh_daemon(
            config, mode="thread", workers=2,
            faults=FaultInjector.from_spec("tcp.drop@1"))
        server = start_server(daemon, port=0)
        client = TcpClient(*server.address, retry=RetryPolicy(attempts=1))
        try:
            with pytest.raises(ConnectionLost) as exc_info:
                client.query("pt")
            assert exc_info.value.code == "transport"
            assert exc_info.value.retryable
        finally:
            client.close()
            server.stop(grace=0.5)

    def test_slow_read_then_clean_recovery(self, config):
        """A slow response delays but does not desynchronise the stream."""
        daemon = _fresh_daemon(
            config, mode="thread", workers=2,
            faults=FaultInjector.from_spec("tcp.slow@1:80"))
        server = start_server(daemon, port=0)
        client = TcpClient(*server.address,
                           retry=RetryPolicy(base_delay=0.01, jitter=0))
        try:
            start = time.monotonic()
            first = client.query("pt")["results"]
            assert time.monotonic() - start >= 0.08
            assert client.query("pt")["results"] == first
            assert client.retries == 0  # slow, not broken
        finally:
            client.close()
            server.stop(grace=0.5)

    def test_mid_conversation_restart_retried_bit_identical(self, config):
        with ServerHarness(lambda: _fresh_daemon(
                config, mode="thread", workers=2)) as harness:
            client = TcpClient(*harness.address,
                               retry=RetryPolicy(base_delay=0.02, jitter=0))
            before = client.query("pt")["results"]
            harness.restart()
            after = client.query("pt")["results"]
            assert after == before
            assert client.reconnects >= 1
            assert harness.restarts == 1
            client.close()

    def test_register_not_retried_after_send(self, config):
        """Non-idempotent ops surface a mid-request drop instead of
        silently re-sending."""
        daemon = _fresh_daemon(
            config, mode="thread", workers=2,
            faults=FaultInjector.from_spec("tcp.drop@1"))
        server = start_server(daemon, port=0)
        client = TcpClient(*server.address,
                           retry=RetryPolicy(attempts=3, base_delay=0.01,
                                             jitter=0))
        try:
            with pytest.raises(ConnectionLost) as exc_info:
                client.register_config("pt2", config)
            assert exc_info.value.sent
            assert client.retries == 0
        finally:
            client.close()
            server.stop(grace=0.5)


# --------------------------------------------------------------------------- #
# Response-id verification
# --------------------------------------------------------------------------- #
class TestResponseIds:
    @pytest.mark.parametrize("op,params", [
        ("ping", {}),
        ("health", {}),
        ("stats", {}),
        ("targets", {}),
        ("scenarios", {}),
        ("query", {"target": "pt"}),
        ("batch", {"target": "pt", "queries": [{"label": "a"}]}),
        ("nonsense", {}),
    ])
    def test_every_response_echoes_request_id(self, config, op, params):
        daemon = _fresh_daemon(config, mode="serial")
        try:
            response = daemon.handle({"op": op, "id": 7719, **params})
            assert response["id"] == 7719
        finally:
            daemon.close(grace=0.5)

    def test_mismatched_id_raises_protocol_error(self, config):
        class MisroutingDaemon(AnalysisDaemon):
            def handle(self, request, **kwargs):
                response = super().handle(request, **kwargs)
                response["id"] = -1
                return response

        daemon = MisroutingDaemon(mode="serial", faults=FaultInjector())
        daemon.add_config("pt", config)
        client = InProcessClient(daemon)
        try:
            with pytest.raises(ProtocolError, match="does not match"):
                client.query("pt")
        finally:
            daemon.close(grace=0.5)

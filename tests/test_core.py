"""Unit and integration tests for the compositional analysis engine."""

from __future__ import annotations

import pytest

from repro.can.bus import CanBus
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.core.engine import CompositionalAnalysis
from repro.core.paths import EndToEndPath, path_latency
from repro.core.system import BusSegment, SystemModel
from repro.ecu.task import EcuModel, OsekOverheads, Task, TaskKind
from repro.events.model import PeriodicEventModel
from repro.gateway.model import ForwardingPolicy, GatewayModel, GatewayRoute


def _two_bus_system() -> SystemModel:
    """Two buses coupled by a gateway, one detailed sender ECU."""
    body = KMatrix(messages=[
        CanMessage(name="BodySpeed", can_id=0x100, dlc=8, period=20.0,
                   sender="BodyECU", receivers=("Gateway1",)),
        CanMessage(name="BodyLight", can_id=0x200, dlc=4, period=100.0,
                   sender="BodyECU", receivers=("Gateway1",)),
    ])
    powertrain = KMatrix(messages=[
        CanMessage(name="PTSpeed", can_id=0x110, dlc=8, period=20.0,
                   sender="Gateway1", receivers=("EngineECU",)),
        CanMessage(name="EngineTorque", can_id=0x120, dlc=8, period=10.0,
                   sender="EngineECU", receivers=("Gateway1",)),
    ])
    system = SystemModel(name="two-bus")
    system.add_bus(BusSegment(bus=CanBus(name="Body-CAN", bit_rate_bps=125_000.0),
                              kmatrix=body))
    system.add_bus(BusSegment(bus=CanBus(name="PT-CAN", bit_rate_bps=500_000.0),
                              kmatrix=powertrain))
    system.add_gateway(GatewayModel(
        name="Gateway1",
        policy=ForwardingPolicy.PERIODIC_POLLING,
        polling_period=2.0,
        copy_time=0.05,
        routes=[GatewayRoute(source_message="BodySpeed",
                             destination_message="PTSpeed",
                             source_bus="Body-CAN",
                             destination_bus="PT-CAN")],
    ))
    system.add_ecu(EcuModel(
        name="EngineECU",
        overheads=OsekOverheads(0.0, 0.0, 0.0, 0.0),
        tasks=[
            Task(name="TorqueTask", priority=2, wcet=1.5, bcet=0.5,
                 activation=PeriodicEventModel(period=10.0),
                 sends_messages=("EngineTorque",)),
            Task(name="IdleTask", priority=9, wcet=2.0,
                 kind=TaskKind.COOPERATIVE,
                 activation=PeriodicEventModel(period=50.0)),
        ]))
    return system


class TestSystemModel:
    def test_validation_passes_for_consistent_system(self):
        assert _two_bus_system().validate() == []

    def test_validation_reports_unknown_messages(self):
        system = _two_bus_system()
        system.gateways["Gateway1"].routes.append(
            GatewayRoute("Ghost", "AlsoGhost", "Body-CAN", "PT-CAN"))
        problems = system.validate()
        assert any("Ghost" in p for p in problems)

    def test_validation_reports_bus_mismatch(self):
        system = _two_bus_system()
        system.gateways["Gateway1"].routes[0] = GatewayRoute(
            "BodySpeed", "PTSpeed", "PT-CAN", "Body-CAN")
        problems = system.validate()
        assert len(problems) == 2

    def test_duplicate_registration_rejected(self):
        system = _two_bus_system()
        with pytest.raises(ValueError):
            system.add_bus(system.buses["PT-CAN"])
        with pytest.raises(ValueError):
            system.add_gateway(system.gateways["Gateway1"])
        with pytest.raises(ValueError):
            system.add_ecu(system.ecus["EngineECU"])

    def test_bus_of_message(self):
        system = _two_bus_system()
        assert system.bus_of_message("BodySpeed").name == "Body-CAN"
        with pytest.raises(KeyError):
            system.bus_of_message("Nope")

    def test_describe_lists_buses(self):
        text = _two_bus_system().describe()
        assert "Body-CAN" in text and "PT-CAN" in text


class TestCompositionalAnalysis:
    def test_invalid_system_rejected(self):
        system = _two_bus_system()
        system.gateways["Gateway1"].routes.append(
            GatewayRoute("Ghost", "AlsoGhost", "Body-CAN", "PT-CAN"))
        with pytest.raises(ValueError):
            CompositionalAnalysis(system)

    def test_fixed_point_converges(self):
        result = CompositionalAnalysis(_two_bus_system()).run()
        assert result.converged
        assert result.all_deadlines_met
        assert result.iterations >= 2

    def test_all_messages_and_tasks_analyzed(self):
        system = _two_bus_system()
        result = CompositionalAnalysis(system).run()
        assert set(result.message_results) == set(system.message_names())
        assert "EngineECU.TorqueTask" in result.task_results

    def test_forwarded_message_inherits_jitter(self):
        """The gateway output jitter must show up in the PT-CAN analysis."""
        result = CompositionalAnalysis(_two_bus_system()).run()
        # PTSpeed is forwarded from BodySpeed: its send model must carry the
        # forwarding jitter (polling period) on top of the arrival jitter.
        assert result.send_jitter("PTSpeed") > result.arrival_jitter("BodySpeed") - 1e-9
        assert result.send_jitter("PTSpeed") >= 2.0  # at least the polling period

    def test_task_sent_message_uses_response_interval(self):
        result = CompositionalAnalysis(_two_bus_system()).run()
        task = result.task_results["EngineECU.TorqueTask"]
        assert result.send_jitter("EngineTorque") == pytest.approx(
            task.worst_case - task.best_case, abs=1e-6)

    def test_arrival_jitter_exceeds_send_jitter(self):
        result = CompositionalAnalysis(_two_bus_system()).run()
        for name in ("BodySpeed", "PTSpeed", "EngineTorque"):
            assert result.arrival_jitter(name) >= result.send_jitter(name) - 1e-9 \
                or result.send_jitter(name) != result.send_jitter(name)  # NaN guard

    def test_single_bus_without_components_converges_trivially(self,
                                                               small_kmatrix,
                                                               small_bus):
        system = SystemModel(name="flat")
        system.add_bus(BusSegment(bus=small_bus, kmatrix=small_kmatrix))
        result = CompositionalAnalysis(system).run()
        assert result.converged
        assert result.total_messages == len(small_kmatrix)

    def test_describe_mentions_buses(self):
        result = CompositionalAnalysis(_two_bus_system()).run()
        assert "PT-CAN" in result.describe()


class TestEndToEndPaths:
    def test_path_latency_sums_segments(self):
        system = _two_bus_system()
        result = CompositionalAnalysis(system).run()
        path = EndToEndPath(name="body-to-engine", segments=(
            ("message", "BodySpeed"),
            ("gateway", "Gateway1:PTSpeed"),
            ("message", "PTSpeed"),
        ))
        latency = path_latency(path, system, result)
        assert latency.worst_case >= result.worst_case_response("BodySpeed")
        assert latency.worst_case >= result.worst_case_response("PTSpeed")
        assert latency.best_case <= latency.worst_case
        assert latency.jitter >= 0.0
        assert len(latency.per_segment) == 3

    def test_task_segment(self):
        system = _two_bus_system()
        result = CompositionalAnalysis(system).run()
        path = EndToEndPath(name="torque", segments=(
            ("task", "EngineECU.TorqueTask"),
            ("message", "EngineTorque"),
        ))
        latency = path_latency(path, system, result)
        assert latency.worst_case == pytest.approx(
            result.task_results["EngineECU.TorqueTask"].worst_case
            + result.worst_case_response("EngineTorque"))

    def test_unknown_segment_kind_rejected(self):
        with pytest.raises(ValueError):
            EndToEndPath(name="bad", segments=(("pigeon", "X"),))

    def test_unknown_references_raise(self):
        system = _two_bus_system()
        result = CompositionalAnalysis(system).run()
        with pytest.raises(KeyError):
            path_latency(EndToEndPath(name="p", segments=(("message", "Nope"),)),
                         system, result)

"""Unit tests for the perf harness itself (``benchmarks/perf/run_bench.py``).

The harness is CI infrastructure: its regression gate
(:func:`run_bench.check_regression`) decides whether a PR fails, so the
gating logic, the ``BENCH_timing.json`` schema and the CLI wiring (``--check``
failing on an injected regression, ``--quick`` reducing work without changing
workloads) get the same test coverage as library code.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "benchmarks" / "perf" / "run_bench.py"
BASELINE_PATH = REPO_ROOT / "BENCH_timing.json"


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location("_run_bench_under_test",
                                                  BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _entry(seed=1.0, kernel=0.1, speedup=None, **extra):
    record = {"seed_seconds": seed, "kernel_seconds": kernel,
              "speedup": round(seed / kernel, 2) if speedup is None
              else speedup}
    record.update(extra)
    return record


# --------------------------------------------------------------------------- #
# Committed baseline schema
# --------------------------------------------------------------------------- #
class TestCommittedBaselineSchema:
    @pytest.fixture(scope="class")
    def baseline(self):
        return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))

    def test_top_level_schema(self, baseline):
        assert baseline["schema"] == 1
        assert set(baseline) >= {"schema", "created_utc", "machine",
                                 "scenarios"}
        assert set(baseline["machine"]) >= {"python", "platform", "cpus"}

    def test_scenario_records_are_complete(self, baseline):
        scenarios = baseline["scenarios"]
        assert scenarios, "baseline must not be empty"
        for name, entry in scenarios.items():
            assert entry["seed_seconds"] > 0, name
            assert entry["kernel_seconds"] > 0, name
            assert entry["speedup"] == pytest.approx(
                entry["seed_seconds"] / entry["kernel_seconds"], rel=0.02)

    def test_gated_scenarios_present(self, baseline):
        scenarios = baseline["scenarios"]
        for name in ("analyze_all_powertrain80", "scaling_n400",
                     "service_jitter_whatif_100q", "server_whatif_throughput",
                     "engine_incremental", "system_whatif"):
            assert name in scenarios, name
        gated = [entry for entry in scenarios.values()
                 if entry.get("min_speedup")]
        assert gated, "at least one scenario must carry a min_speedup gate"
        for entry in gated:
            assert entry["speedup"] >= entry["min_speedup"]


# --------------------------------------------------------------------------- #
# Gating logic
# --------------------------------------------------------------------------- #
class TestCheckRegression:
    def test_clean_run_passes(self, run_bench):
        baseline = {"scenarios": {"a": _entry(kernel=0.10),
                                  "b": _entry(kernel=0.50)}}
        fresh = {"a": _entry(kernel=0.11), "b": _entry(kernel=0.45)}
        assert run_bench.check_regression(fresh, baseline, 2.0) == []

    def test_kernel_slowdown_fails(self, run_bench):
        baseline = {"scenarios": {"a": _entry(kernel=0.10)}}
        fresh = {"a": _entry(kernel=0.30)}
        failures = run_bench.check_regression(fresh, baseline, 2.0)
        assert len(failures) == 1 and "a:" in failures[0]

    def test_threshold_is_respected(self, run_bench):
        baseline = {"scenarios": {"a": _entry(kernel=0.10)}}
        fresh = {"a": _entry(kernel=0.30)}
        assert run_bench.check_regression(fresh, baseline, 4.0) == []

    def test_min_speedup_gate(self, run_bench):
        baseline = {"scenarios": {}}
        fresh = {"svc": _entry(seed=1.0, kernel=0.5, min_speedup=5.0)}
        failures = run_bench.check_regression(fresh, baseline, 2.0)
        assert len(failures) == 1 and "below" in failures[0]
        fresh = {"svc": _entry(seed=10.0, kernel=0.5, min_speedup=5.0)}
        assert run_bench.check_regression(fresh, baseline, 2.0) == []

    def test_speedup_margin_scales_the_floor(self, run_bench):
        baseline = {"scenarios": {}}
        fresh = {"svc": _entry(seed=1.8, kernel=1.0, min_speedup=2.0)}
        assert run_bench.check_regression(fresh, baseline, 2.0,
                                          speedup_margin=0.75) == []
        failures = run_bench.check_regression(fresh, baseline, 2.0)
        assert len(failures) == 1 and "below" in failures[0]

    def test_scenarios_missing_from_fresh_run_are_skipped(self, run_bench):
        """--quick drops ga_run; the gate must not fail on its absence."""
        baseline = {"scenarios": {"ga_run": _entry(kernel=2.0),
                                  "a": _entry(kernel=0.1)}}
        fresh = {"a": _entry(kernel=0.1)}
        assert run_bench.check_regression(fresh, baseline, 2.0) == []


# --------------------------------------------------------------------------- #
# CLI wiring
# --------------------------------------------------------------------------- #
class TestMain:
    def test_check_fails_on_injected_regression(self, run_bench, tmp_path,
                                                monkeypatch, capsys):
        output = tmp_path / "bench.json"
        output.write_text(json.dumps(
            {"schema": 1, "scenarios": {"a": _entry(kernel=0.01)}}))
        monkeypatch.setattr(
            run_bench, "run_scenarios",
            lambda repeat, skip_seed, baseline, quick=False:
                {"a": _entry(kernel=0.05)})
        assert run_bench.main(["--check", "--output", str(output)]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_check_passes_without_regression(self, run_bench, tmp_path,
                                             monkeypatch):
        output = tmp_path / "bench.json"
        output.write_text(json.dumps(
            {"schema": 1, "scenarios": {"a": _entry(kernel=0.01)}}))
        monkeypatch.setattr(
            run_bench, "run_scenarios",
            lambda repeat, skip_seed, baseline, quick=False:
                {"a": _entry(kernel=0.01)})
        assert run_bench.main(["--check", "--output", str(output)]) == 0

    def test_check_without_baseline_is_skipped(self, run_bench, tmp_path,
                                               monkeypatch):
        monkeypatch.setattr(
            run_bench, "run_scenarios",
            lambda repeat, skip_seed, baseline, quick=False: {})
        missing = tmp_path / "does-not-exist.json"
        assert run_bench.main(["--check", "--output", str(missing)]) == 0
        assert not missing.exists()

    def test_quick_implies_best_of_two_and_skip_seed(self, run_bench,
                                                     tmp_path, monkeypatch):
        captured = {}

        def fake(repeat, skip_seed, baseline, quick=False):
            captured.update(repeat=repeat, skip_seed=skip_seed, quick=quick)
            return {}

        monkeypatch.setattr(run_bench, "run_scenarios", fake)
        rc = run_bench.main(["--quick", "--check",
                             "--output", str(tmp_path / "none.json")])
        assert rc == 0
        assert captured == {"repeat": 2, "skip_seed": True, "quick": True}

    def test_quick_applies_speedup_margin(self, run_bench, tmp_path,
                                          monkeypatch):
        output = tmp_path / "bench.json"
        output.write_text(json.dumps({"schema": 1, "scenarios": {}}))
        monkeypatch.setattr(
            run_bench, "run_scenarios",
            lambda repeat, skip_seed, baseline, quick=False:
                {"svc": _entry(seed=1.9, kernel=1.0, min_speedup=2.0)})
        assert run_bench.main(["--check", "--output", str(output)]) == 1
        assert run_bench.main(["--quick", "--check",
                               "--output", str(output)]) == 0

    def test_baseline_rewrite_has_schema(self, run_bench, tmp_path,
                                         monkeypatch):
        output = tmp_path / "bench.json"
        monkeypatch.setattr(
            run_bench, "run_scenarios",
            lambda repeat, skip_seed, baseline, quick=False:
                {"a": _entry(kernel=0.2)})
        assert run_bench.main(["--output", str(output)]) == 0
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["schema"] == 1
        assert payload["scenarios"]["a"]["kernel_seconds"] == 0.2
        assert set(payload["machine"]) >= {"python", "platform", "cpus"}

    def test_timed_returns_best_and_result(self, run_bench):
        calls = []

        def workload():
            calls.append(None)
            return "result"

        seconds, result = run_bench._timed(workload, repeat=3)
        assert result == "result"
        assert len(calls) == 3
        assert seconds >= 0.0

"""Tests for workload generators, the canonical experiments and reporting."""

from __future__ import annotations

import pytest

from repro.analysis.load import bus_load
from repro.experiments import (
    ALL_INTERPRETATIONS,
    BEST_CASE,
    JITTER_SWEEP_FRACTIONS,
    WORST_CASE,
    ZERO_JITTER_CASE,
)
from repro.reporting.tables import (
    format_loss_curves,
    format_sensitivity_table,
    format_table,
    series_to_rows,
)
from repro.workloads.figure1 import figure1_network
from repro.workloads.powertrain import (
    PowertrainConfig, powertrain_controllers, powertrain_kmatrix,
)
from repro.workloads.scaling import scaled_kmatrix, synthetic_kmatrix


class TestPowertrainWorkload:
    def test_matches_paper_description(self, powertrain):
        kmatrix, bus, controllers = powertrain
        # "more than 50 messages", "several ECUs including gateways",
        # 500 kbit/s power-train bus.
        assert len(kmatrix) > 50
        assert len(kmatrix.ecu_names()) >= 6
        assert any(name.startswith("Gateway") for name in kmatrix.senders())
        assert bus.bit_rate_bps == 500_000.0
        assert set(controllers) == set(PowertrainConfig().ecu_names)

    def test_only_some_jitters_are_known(self, powertrain):
        kmatrix, _bus, _controllers = powertrain
        known = [m for m in kmatrix if m.jitter is not None]
        unknown = kmatrix.messages_with_unknown_jitter()
        assert known and unknown
        assert len(known) < len(kmatrix) / 2
        # "typically in the range of 10-30 % of the message's period"
        for message in known:
            fraction = message.jitter / message.period
            assert 0.05 <= fraction <= 0.35

    def test_generation_is_deterministic(self, powertrain_config):
        first = powertrain_kmatrix(powertrain_config)
        second = powertrain_kmatrix(powertrain_config)
        assert first.to_csv() == second.to_csv()

    def test_different_seeds_differ(self):
        a = powertrain_kmatrix(PowertrainConfig(seed=1))
        b = powertrain_kmatrix(PowertrainConfig(seed=2))
        assert a.to_csv() != b.to_csv()

    def test_utilization_in_realistic_band(self, powertrain):
        kmatrix, bus, _controllers = powertrain
        load = bus_load(kmatrix, bus, include_stuffing=True)
        assert 0.40 < load.utilization < 0.75

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PowertrainConfig(n_ecus=1)
        with pytest.raises(ValueError):
            PowertrainConfig(n_gateways=8, n_ecus=8)
        with pytest.raises(ValueError):
            PowertrainConfig(displaced_fraction=1.5)

    def test_controllers_mark_gateways_basiccan(self, powertrain_config):
        controllers = powertrain_controllers(powertrain_config)
        from repro.can.controller import CanControllerType
        assert controllers["Gateway1"].controller_type == CanControllerType.BASIC
        assert controllers["ECU1"].controller_type == CanControllerType.FULL


class TestSyntheticWorkloads:
    def test_synthetic_kmatrix_policies(self):
        for policy in ("block", "rate-monotonic", "random"):
            kmatrix = synthetic_kmatrix(30, seed=3, id_policy=policy)
            assert len(kmatrix) == 30
        with pytest.raises(ValueError):
            synthetic_kmatrix(10, id_policy="alphabetical")

    def test_rate_monotonic_policy_orders_fast_first(self):
        kmatrix = synthetic_kmatrix(40, seed=1, id_policy="rate-monotonic")
        ordered = kmatrix.sorted_by_priority()
        periods = [m.period for m in ordered]
        assert periods == sorted(periods)

    def test_scaled_kmatrix_hits_target(self, small_bus):
        for target in (0.3, 0.5):
            kmatrix = scaled_kmatrix(target, small_bus, seed=2)
            load = bus_load(kmatrix, small_bus)
            assert load.utilization <= target + 0.02
            assert load.utilization >= target - 0.15

    def test_figure1_network_consistency(self):
        kmatrix, bus = figure1_network()
        assert bus.bit_rate_bps == 500_000.0
        assert len(kmatrix.senders()) == 4


class TestExperiments:
    def test_experiment1_zero_jitter_all_deadlines_met(self, powertrain):
        """Section 4, experiment 1: zero jitters -> all deadlines met."""
        kmatrix, bus, controllers = powertrain
        report = ZERO_JITTER_CASE.analyze(kmatrix, bus, 0.0, controllers)
        assert report.all_deadlines_met

    def test_worst_case_loses_more_than_best_case(self, powertrain):
        kmatrix, bus, controllers = powertrain
        best = BEST_CASE.analyze(kmatrix, bus, 0.25, controllers)
        worst = WORST_CASE.analyze(kmatrix, bus, 0.25, controllers)
        assert worst.loss_fraction >= best.loss_fraction
        assert worst.loss_fraction > 0.0

    def test_loss_curves_are_monotone(self, small_powertrain):
        kmatrix, bus, controllers = small_powertrain
        curve = WORST_CASE.loss_curve(kmatrix, bus,
                                      jitter_fractions=(0.0, 0.2, 0.4, 0.6),
                                      controllers=controllers)
        losses = [loss for _fraction, loss in curve]
        assert all(b >= a - 1e-9 for a, b in zip(losses, losses[1:]))

    def test_sweep_covers_0_to_60_percent(self):
        assert JITTER_SWEEP_FRACTIONS[0] == 0.0
        assert JITTER_SWEEP_FRACTIONS[-1] == pytest.approx(0.60)
        assert len(JITTER_SWEEP_FRACTIONS) == 13

    def test_all_interpretations_have_distinct_names(self):
        names = [interpretation.name for interpretation in ALL_INTERPRETATIONS]
        assert len(names) == len(set(names))


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value %"], [["a", 0.5], ["bb", 0.25]],
                            title="demo")
        assert "demo" in text
        assert "50.0" in text and "25.0" in text

    def test_series_to_rows_requires_common_axis(self):
        with pytest.raises(ValueError):
            series_to_rows({"a": [(0.0, 1.0)], "b": [(0.5, 2.0)]})
        rows = series_to_rows({"a": [(0.0, 1.0), (0.1, 2.0)],
                               "b": [(0.0, 3.0), (0.1, 4.0)]})
        assert rows == [[0.0, 1.0, 3.0], [0.1, 2.0, 4.0]]

    def test_loss_curve_formatting(self):
        text = format_loss_curves({"best": [(0.0, 0.0), (0.2, 0.1)],
                                   "worst": [(0.0, 0.05), (0.2, 0.4)]})
        assert "jitter %" in text
        assert "worst %" in text

    def test_sensitivity_table_formatting(self):
        text = format_sensitivity_table({"MsgA": [(0.0, 1.2), (0.2, 3.4)]})
        assert "MsgA [ms]" in text

"""Unit tests for the CAN worst-case response-time analysis."""

from __future__ import annotations

import math

import pytest

from repro.analysis.response_time import (
    CanBusAnalysis,
    best_case_response_time,
    worst_case_response_time,
)
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import BurstErrorModel, SporadicErrorModel


@pytest.fixture()
def two_message_matrix() -> KMatrix:
    """Two messages whose response times can be computed by hand."""
    return KMatrix(messages=[
        CanMessage(name="High", can_id=0x100, dlc=8, period=10.0, sender="E1"),
        CanMessage(name="Low", can_id=0x200, dlc=8, period=10.0, sender="E2"),
    ])


class TestHandComputedCases:
    def test_highest_priority_message(self, two_message_matrix, small_bus):
        """R(High) = blocking by Low (0.27) + own transmission (0.27)."""
        result = worst_case_response_time(
            two_message_matrix.get("High"), two_message_matrix, small_bus)
        assert result.blocking == pytest.approx(0.27)
        assert result.worst_case == pytest.approx(0.54, abs=1e-6)

    def test_lowest_priority_message(self, two_message_matrix, small_bus):
        """R(Low) = interference by High (0.27) + own transmission (0.27)."""
        result = worst_case_response_time(
            two_message_matrix.get("Low"), two_message_matrix, small_bus)
        assert result.blocking == 0.0
        assert result.worst_case == pytest.approx(0.54, abs=1e-6)

    def test_jitter_shifts_response(self, small_bus):
        kmatrix = KMatrix(messages=[
            CanMessage(name="High", can_id=0x100, dlc=8, period=10.0,
                       jitter=3.0, sender="E1"),
            CanMessage(name="Low", can_id=0x200, dlc=8, period=10.0, sender="E2"),
        ])
        result = worst_case_response_time(kmatrix.get("High"), kmatrix, small_bus)
        # Queuing delay is unchanged, but the response is measured from the
        # earliest possible queuing instant: + jitter.
        assert result.worst_case == pytest.approx(0.54 + 3.0, abs=1e-6)

    def test_best_case_is_transmission_only(self, two_message_matrix, small_bus):
        message = two_message_matrix.get("Low")
        assert best_case_response_time(message, small_bus) == pytest.approx(0.222)

    def test_error_model_adds_overhead(self, two_message_matrix, small_bus):
        clean = worst_case_response_time(
            two_message_matrix.get("Low"), two_message_matrix, small_bus)
        noisy = worst_case_response_time(
            two_message_matrix.get("Low"), two_message_matrix, small_bus,
            error_model=SporadicErrorModel(min_interarrival=10.0))
        # One error in the short busy window: 0.062 recovery + 0.27 resend.
        assert noisy.worst_case - clean.worst_case == pytest.approx(0.332,
                                                                    abs=1e-6)


class TestStructuralProperties:
    def test_queuing_delay_grows_with_lower_priority(self, small_kmatrix,
                                                     small_bus):
        # The response time includes the message's own jitter, so compare the
        # jitter-free part (queuing + transmission), which must be monotone in
        # priority for equal-length frames... it is not in general either
        # (blocking differs), so check against the highest-priority message.
        analysis = CanBusAnalysis(small_kmatrix, small_bus)
        results = analysis.analyze_all()
        by_priority = small_kmatrix.sorted_by_priority()
        top = results[by_priority[0].name]
        top_delay = top.worst_case - top.jitter
        lowest = results[by_priority[-1].name]
        assert lowest.worst_case - lowest.jitter >= top_delay - top.blocking

    def test_response_monotone_in_jitter(self, small_kmatrix, small_bus):
        lo = CanBusAnalysis(small_kmatrix, small_bus,
                            assumed_jitter_fraction=0.0).analyze_all()
        hi = CanBusAnalysis(small_kmatrix, small_bus,
                            assumed_jitter_fraction=0.4).analyze_all()
        for name in lo:
            assert hi[name].worst_case >= lo[name].worst_case - 1e-9

    def test_response_monotone_in_errors(self, small_kmatrix, small_bus):
        clean = CanBusAnalysis(small_kmatrix, small_bus).analyze_all()
        noisy = CanBusAnalysis(
            small_kmatrix, small_bus,
            error_model=BurstErrorModel(min_interarrival=20.0, burst_length=3,
                                        intra_burst_gap=0.5)).analyze_all()
        for name in clean:
            assert noisy[name].worst_case >= clean[name].worst_case

    def test_worst_case_at_least_best_case(self, small_kmatrix, small_bus):
        analysis = CanBusAnalysis(small_kmatrix, small_bus,
                                  assumed_jitter_fraction=0.2)
        for message in small_kmatrix:
            result = analysis.response_time(message)
            assert result.worst_case >= result.best_case
            assert result.worst_case >= result.transmission_time

    def test_utilization_matches_load(self, small_kmatrix, small_bus):
        analysis = CanBusAnalysis(small_kmatrix, small_bus)
        from repro.analysis.load import bus_load
        assert analysis.utilization() == pytest.approx(
            bus_load(small_kmatrix, small_bus).utilization)

    def test_overload_reported_as_unbounded(self, small_bus):
        """A message set with > 100 % utilization cannot be bounded."""
        messages = [
            CanMessage(name=f"M{i}", can_id=0x100 + i, dlc=8, period=0.5,
                       sender="E1")
            for i in range(4)
        ]
        kmatrix = KMatrix(messages=messages)
        analysis = CanBusAnalysis(kmatrix, small_bus)
        assert analysis.utilization() > 1.0
        result = analysis.response_time(kmatrix.get("M3"))
        assert not result.bounded
        assert math.isinf(result.worst_case)

    def test_external_event_model_override(self, small_kmatrix, small_bus):
        from repro.events.model import PeriodicWithJitter
        override = {"FastA": PeriodicWithJitter(period=10.0, jitter=5.0)}
        analysis = CanBusAnalysis(small_kmatrix, small_bus,
                                  event_models=override)
        assert analysis.jitter(small_kmatrix.get("FastA")) == 5.0
        # Other messages keep their K-Matrix model.
        assert analysis.jitter(small_kmatrix.get("FastB")) == 0.0

    def test_bursty_interferer_increases_response(self, small_bus):
        base = KMatrix(messages=[
            CanMessage(name="Burst", can_id=0x100, dlc=8, period=10.0,
                       sender="GW"),
            CanMessage(name="Victim", can_id=0x200, dlc=8, period=20.0,
                       sender="E2"),
        ])
        bursty = base.map_messages(
            lambda m: m.with_jitter(30.0) if m.name == "Burst" else m)
        bursty = KMatrix(messages=[
            m if m.name != "Burst" else
            CanMessage(name="Burst", can_id=0x100, dlc=8, period=10.0,
                       jitter=30.0, min_distance=0.3, sender="GW")
            for m in base])
        plain = worst_case_response_time(base.get("Victim"), base, small_bus)
        stressed = worst_case_response_time(bursty.get("Victim"), bursty,
                                            small_bus)
        assert stressed.worst_case > plain.worst_case

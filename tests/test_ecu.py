"""Unit tests for the OSEK-style ECU substrate."""

from __future__ import annotations

import math

import pytest

from repro.ecu.analysis import EcuAnalysis, message_output_models
from repro.ecu.task import (
    EcuModel,
    OsekOverheads,
    Task,
    TaskKind,
    TimeTable,
    TimeTableEntry,
)
from repro.events.model import PeriodicEventModel, PeriodicWithJitter


def _simple_ecu() -> EcuModel:
    """Three-task ECU with hand-checkable response times."""
    return EcuModel(name="ECU_A", overheads=OsekOverheads(0.0, 0.0, 0.0, 0.0),
                    tasks=[
        Task(name="ISR", priority=1, wcet=0.2, bcet=0.1,
             kind=TaskKind.INTERRUPT,
             activation=PeriodicEventModel(period=5.0)),
        Task(name="Control", priority=5, wcet=1.0, bcet=0.6,
             activation=PeriodicEventModel(period=10.0),
             sends_messages=("EngineTorque",)),
        Task(name="Background", priority=9, wcet=3.0, bcet=1.0,
             kind=TaskKind.COOPERATIVE,
             activation=PeriodicEventModel(period=100.0)),
    ])


class TestTaskModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            Task(name="T", priority=1, wcet=0.0)
        with pytest.raises(ValueError):
            Task(name="T", priority=1, wcet=1.0, bcet=2.0)
        with pytest.raises(ValueError):
            Task(name="T", priority=1, wcet=1.0, non_preemptable_region=2.0)

    def test_cooperative_tasks_block_for_their_wcet(self):
        task = Task(name="T", priority=1, wcet=3.0, kind=TaskKind.COOPERATIVE,
                    activation=PeriodicEventModel(period=10.0))
        assert task.effective_non_preemptable_region == 3.0

    def test_preemptive_task_blocks_only_explicit_region(self):
        task = Task(name="T", priority=1, wcet=3.0,
                    non_preemptable_region=0.5,
                    activation=PeriodicEventModel(period=10.0))
        assert task.effective_non_preemptable_region == 0.5

    def test_osek_overhead_validation(self):
        with pytest.raises(ValueError):
            OsekOverheads(activation=-1.0)


class TestEcuModel:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            EcuModel(name="E", tasks=[
                Task(name="T", priority=1, wcet=1.0,
                     activation=PeriodicEventModel(period=10.0)),
                Task(name="T", priority=2, wcet=1.0,
                     activation=PeriodicEventModel(period=10.0)),
            ])

    def test_task_without_activation_needs_timetable(self):
        with pytest.raises(ValueError):
            EcuModel(name="E", tasks=[Task(name="T", priority=1, wcet=1.0)])
        ecu = EcuModel(
            name="E",
            tasks=[Task(name="T", priority=1, wcet=1.0)],
            timetable=TimeTable(period=10.0,
                                entries=(TimeTableEntry("T", 0.0),)))
        assert ecu.activation_of(ecu.task("T")).period == 10.0

    def test_priority_relations(self):
        ecu = _simple_ecu()
        control = ecu.task("Control")
        higher = {t.name for t in ecu.higher_priority_tasks(control)}
        lower = {t.name for t in ecu.lower_priority_tasks(control)}
        assert higher == {"ISR"}
        assert lower == {"Background"}

    def test_utilization(self):
        ecu = _simple_ecu()
        expected = 0.2 / 5.0 + 1.0 / 10.0 + 3.0 / 100.0
        assert ecu.utilization() == pytest.approx(expected)

    def test_sender_task_lookup(self):
        ecu = _simple_ecu()
        assert ecu.sender_task_of("EngineTorque").name == "Control"
        assert ecu.sender_task_of("Unknown") is None


class TestTimeTable:
    def test_single_entry_is_periodic(self):
        table = TimeTable(period=10.0, entries=(TimeTableEntry("T", 2.0),))
        model = table.event_model_for("T")
        assert model.period == 10.0
        assert model.jitter == 0.0

    def test_multiple_entries_give_faster_rate(self):
        table = TimeTable(period=20.0, entries=(
            TimeTableEntry("T", 0.0), TimeTableEntry("T", 10.0)))
        model = table.event_model_for("T")
        assert model.period == pytest.approx(10.0)

    def test_irregular_entries_have_jitter(self):
        table = TimeTable(period=20.0, entries=(
            TimeTableEntry("T", 0.0), TimeTableEntry("T", 6.0)))
        model = table.event_model_for("T")
        assert model.jitter > 0.0

    def test_offset_outside_period_rejected(self):
        with pytest.raises(ValueError):
            TimeTable(period=10.0, entries=(TimeTableEntry("T", 12.0),))

    def test_unknown_task_raises(self):
        table = TimeTable(period=10.0, entries=(TimeTableEntry("T", 0.0),))
        with pytest.raises(KeyError):
            table.event_model_for("Other")


class TestEcuAnalysis:
    def test_hand_computed_response_times(self):
        ecu = _simple_ecu()
        results = EcuAnalysis(ecu).analyze_all()
        # ISR: blocked by the longest lower-priority non-preemptable region
        # (Background, 3.0 ms cooperative) plus its own execution.
        assert results["ISR"].worst_case == pytest.approx(3.0 + 0.2)
        # Control: blocking 3.0 + ISR interference (one hit in 4.2ms window)
        # + own 1.0 = 4.2.
        assert results["Control"].worst_case == pytest.approx(4.2)
        # Background: no lower-priority blocking, interference from both.
        assert results["Background"].worst_case >= 3.0

    def test_best_case_not_exceeding_worst_case(self):
        results = EcuAnalysis(_simple_ecu()).analyze_all()
        for result in results.values():
            assert result.best_case <= result.worst_case

    def test_overheads_increase_response_times(self):
        bare = _simple_ecu()
        costly = EcuModel(name="ECU_A",
                          overheads=OsekOverheads(0.05, 0.05, 0.02, 0.02),
                          tasks=list(bare.tasks))
        bare_results = EcuAnalysis(bare).analyze_all()
        costly_results = EcuAnalysis(costly).analyze_all()
        for name in bare_results:
            assert costly_results[name].worst_case > bare_results[name].worst_case

    def test_overloaded_ecu_reported_unbounded(self):
        ecu = EcuModel(name="E", overheads=OsekOverheads(0, 0, 0, 0), tasks=[
            Task(name="T1", priority=1, wcet=6.0,
                 activation=PeriodicEventModel(period=10.0)),
            Task(name="T2", priority=2, wcet=6.0,
                 activation=PeriodicEventModel(period=10.0)),
        ])
        results = EcuAnalysis(ecu).analyze_all()
        assert not results["T2"].bounded
        assert math.isinf(results["T2"].worst_case)

    def test_is_schedulable(self):
        assert EcuAnalysis(_simple_ecu()).is_schedulable()
        assert not EcuAnalysis(_simple_ecu()).is_schedulable(
            deadlines={"Control": 0.5})


class TestMessageOutputModels:
    def test_output_jitter_is_response_interval(self):
        ecu = _simple_ecu()
        results = EcuAnalysis(ecu).analyze_all()
        models = message_output_models(ecu)
        control = results["Control"]
        model = models["EngineTorque"]
        assert model.period == 10.0
        assert model.jitter == pytest.approx(
            control.worst_case - control.best_case)

    def test_activation_jitter_is_propagated(self):
        ecu = _simple_ecu()
        jittery = EcuModel(name="E", overheads=ecu.overheads, tasks=[
            task if task.name != "Control" else task.with_activation(
                PeriodicWithJitter(period=10.0, jitter=2.0))
            for task in ecu.tasks
        ])
        models = message_output_models(jittery)
        assert models["EngineTorque"].jitter >= 2.0

    def test_tasks_without_messages_produce_nothing(self):
        ecu = _simple_ecu()
        models = message_output_models(ecu)
        assert set(models) == {"EngineTorque"}

"""Unit tests for the bus-error models."""

from __future__ import annotations

import pytest

from repro.errors.models import (
    BurstErrorModel, CompositeErrorModel, NoErrors, SporadicErrorModel,
    composite,
)


class TestNoErrors:
    def test_zero_everything(self):
        model = NoErrors()
        assert model.errors_in(1000.0) == 0
        assert model.overhead(1000.0, 0.062, 0.27) == 0.0
        assert "no errors" in model.describe()


class TestSporadicErrorModel:
    def test_error_count_in_window(self):
        model = SporadicErrorModel(min_interarrival=10.0)
        assert model.errors_in(0.0) == 0
        assert model.errors_in(5.0) == 1
        assert model.errors_in(10.0) == 2
        assert model.errors_in(25.0) == 3

    def test_overhead_scales_with_costs(self):
        model = SporadicErrorModel(min_interarrival=10.0)
        assert model.overhead(5.0, 0.062, 0.27) == pytest.approx(0.332)
        assert model.overhead(25.0, 0.062, 0.27) == pytest.approx(3 * 0.332)

    def test_rare_errors_cost_little(self):
        frequent = SporadicErrorModel(min_interarrival=5.0)
        rare = SporadicErrorModel(min_interarrival=500.0)
        assert rare.overhead(100.0, 0.062, 0.27) < \
            frequent.overhead(100.0, 0.062, 0.27)

    def test_invalid_interarrival(self):
        with pytest.raises(ValueError):
            SporadicErrorModel(min_interarrival=0.0)

    def test_monotonic_in_window(self):
        model = SporadicErrorModel(min_interarrival=7.0)
        values = [model.errors_in(t) for t in (0, 1, 5, 7, 10, 50, 100)]
        assert values == sorted(values)


class TestBurstErrorModel:
    def test_short_window_sees_partial_burst(self):
        model = BurstErrorModel(min_interarrival=50.0, burst_length=3,
                                intra_burst_gap=1.0)
        assert model.errors_in(0.5) == 1
        assert model.errors_in(1.5) == 2
        assert model.errors_in(10.0) == 3

    def test_long_window_sees_multiple_bursts(self):
        model = BurstErrorModel(min_interarrival=50.0, burst_length=3,
                                intra_burst_gap=1.0)
        assert model.errors_in(50.0) == 2 * 3
        assert model.errors_in(149.0) == 3 * 3

    def test_burst_costs_more_than_sporadic(self):
        burst = BurstErrorModel(min_interarrival=50.0, burst_length=3,
                                intra_burst_gap=0.5)
        sporadic = SporadicErrorModel(min_interarrival=50.0)
        assert burst.overhead(100.0, 0.062, 0.27) > \
            sporadic.overhead(100.0, 0.062, 0.27)

    def test_burst_must_fit_between_bursts(self):
        with pytest.raises(ValueError):
            BurstErrorModel(min_interarrival=2.0, burst_length=5,
                            intra_burst_gap=1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstErrorModel(burst_length=0)
        with pytest.raises(ValueError):
            BurstErrorModel(intra_burst_gap=-1.0)

    def test_monotonic_in_window(self):
        model = BurstErrorModel(min_interarrival=20.0, burst_length=4,
                                intra_burst_gap=0.5)
        values = [model.errors_in(t) for t in (0, 0.4, 1, 2, 10, 20, 40, 100)]
        assert values == sorted(values)


class TestComposite:
    def test_composite_adds_overheads(self):
        sporadic = SporadicErrorModel(min_interarrival=10.0)
        burst = BurstErrorModel(min_interarrival=100.0, burst_length=2,
                                intra_burst_gap=0.5)
        combined = CompositeErrorModel(components=(sporadic, burst))
        assert combined.errors_in(50.0) == \
            sporadic.errors_in(50.0) + burst.errors_in(50.0)
        assert combined.overhead(50.0, 0.062, 0.27) == pytest.approx(
            sporadic.overhead(50.0, 0.062, 0.27)
            + burst.overhead(50.0, 0.062, 0.27))

    def test_composite_factory_collapses_trivial_cases(self):
        assert isinstance(composite([]), NoErrors)
        assert isinstance(composite([NoErrors()]), NoErrors)
        single = SporadicErrorModel(min_interarrival=10.0)
        assert composite([single, NoErrors()]) is single
        assert isinstance(composite([single, single]), CompositeErrorModel)

    def test_describe_concatenates(self):
        combined = CompositeErrorModel(components=(
            SporadicErrorModel(min_interarrival=10.0),
            BurstErrorModel(min_interarrival=100.0)))
        text = combined.describe()
        assert "sporadic" in text and "burst" in text

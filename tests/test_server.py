"""Tests of the analysis daemon: protocol, pool, queue, clients, TCP.

The core exactness property throughout: every response-time float a client
reads from the daemon -- through the JSON protocol, possibly over a real
socket, possibly interleaved with other clients' mutating queries -- must
**bit-match** a from-scratch ``CanBusAnalysis.analyze_all`` of the mutated
configuration.  JSON round-trips finite doubles exactly (``repr`` codec),
so ``==`` is the right comparison.
"""

from __future__ import annotations

import threading

import pytest

from repro.can.message import CanMessage
from repro.errors.models import (
    BurstErrorModel,
    CompositeErrorModel,
    NoErrors,
    SporadicErrorModel,
)
from repro.events.model import (
    PeriodicEventModel,
    PeriodicWithBurst,
    PeriodicWithJitter,
    SporadicEventModel,
)
from repro.server import (
    AnalysisDaemon,
    DaemonError,
    InProcessClient,
    JobQueue,
    ProtocolError,
    SessionPool,
    TcpClient,
    UnknownTargetError,
    start_server,
)
from repro.server.protocol import (
    decode_line,
    delta_from_json,
    delta_to_json,
    encode_line,
    error_model_from_json,
    error_model_to_json,
    event_model_from_json,
    event_model_to_json,
)
from repro.service.deltas import (
    AddMessageDelta,
    BusConfiguration,
    BusDelta,
    DeadlinePolicyDelta,
    ErrorModelDelta,
    EventModelDelta,
    JitterDelta,
    PriorityDelta,
    RemoveMessageDelta,
    apply_deltas,
)
from repro.workloads.multibus import multibus_system
from repro.workloads.powertrain import (
    PowertrainConfig,
    powertrain_bus,
    powertrain_controllers,
    powertrain_kmatrix,
)


def _powertrain_config(n_messages: int = 30) -> BusConfiguration:
    config = PowertrainConfig(n_messages=n_messages)
    return BusConfiguration(
        kmatrix=powertrain_kmatrix(config),
        bus=powertrain_bus(config),
        assumed_jitter_fraction=0.15,
        controllers=powertrain_controllers(config))


def _reference_worst_cases(config: BusConfiguration, deltas=()) -> dict:
    """From-scratch analyze_all of the delta'd configuration."""
    mutated = apply_deltas(config, deltas)
    analysis = mutated.build_analysis()
    return {name: result.worst_case if result.bounded else None
            for name, result in analysis.analyze_all().items()}


@pytest.fixture(scope="module")
def daemon() -> AnalysisDaemon:
    d = AnalysisDaemon(name="test-daemon")
    d.add_config("powertrain", _powertrain_config())
    d.add_system("multibus", multibus_system(
        n_buses=3, messages_per_bus=8, seed=5))
    yield d
    d.close()


@pytest.fixture(scope="module")
def client(daemon) -> InProcessClient:
    return InProcessClient(daemon)


# --------------------------------------------------------------------------- #
# Protocol codec
# --------------------------------------------------------------------------- #
class TestProtocolRoundtrips:
    EVENT_MODELS = [
        PeriodicEventModel(period=10.0),
        PeriodicWithJitter(period=10.0, jitter=2.5),
        PeriodicWithBurst(period=10.0, jitter=15.0, min_distance=0.5),
        SporadicEventModel(period=7.5, jitter=1.25),
    ]

    ERROR_MODELS = [
        NoErrors(),
        SporadicErrorModel(min_interarrival=31.25),
        BurstErrorModel(min_interarrival=50.0, burst_length=3,
                        intra_burst_gap=1.5),
        CompositeErrorModel(components=(
            SporadicErrorModel(min_interarrival=100.0),
            BurstErrorModel(min_interarrival=500.0, burst_length=2,
                            intra_burst_gap=0.25))),
    ]

    def test_event_models_roundtrip(self):
        for model in self.EVENT_MODELS:
            data = decode_line(encode_line(event_model_to_json(model)))
            assert event_model_from_json(data) == model
            assert type(event_model_from_json(data)) is type(model)

    def test_error_models_roundtrip(self):
        for model in self.ERROR_MODELS:
            data = decode_line(encode_line(error_model_to_json(model)))
            assert error_model_from_json(data) == model

    def test_deltas_roundtrip(self):
        deltas = [
            JitterDelta(fraction=0.35),
            JitterDelta(message_name="M1", jitter=0.625),
            JitterDelta(message_name="M1", fraction=0.1),
            ErrorModelDelta(SporadicErrorModel(min_interarrival=12.5)),
            PriorityDelta(swap=("A", "B")),
            PriorityDelta(order=("C", "A", "B")),
            PriorityDelta.from_mapping({"A": 0x10, "B": 0x20}),
            EventModelDelta.from_mapping(
                {"A": PeriodicWithJitter(period=5.0, jitter=1.0)},
                replace_all=True),
            AddMessageDelta(CanMessage(
                name="New", can_id=0x77, dlc=4, period=12.5,
                sender="ECU_X", receivers=("ECU_Y",), jitter=0.5)),
            RemoveMessageDelta("Old"),
            BusDelta(bit_rate_bps=250_000.0, bit_stuffing=False),
            DeadlinePolicyDelta("min-rearrival"),
        ]
        for delta in deltas:
            data = decode_line(encode_line(delta_to_json(delta)))
            assert delta_from_json(data) == delta

    def test_unknown_tags_raise(self):
        with pytest.raises(ProtocolError):
            delta_from_json({"delta": "quantum"})
        with pytest.raises(ProtocolError):
            event_model_from_json({"model": "chaotic", "period": 1.0})
        with pytest.raises(ProtocolError):
            error_model_from_json({"errors": "gremlins"})

    def test_malformed_lines_raise(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError):
            decode_line(b"\n")


# --------------------------------------------------------------------------- #
# Session pool
# --------------------------------------------------------------------------- #
class TestSessionPool:
    def test_identical_configs_share_a_session(self):
        pool = SessionPool()
        first = pool.add_config("alpha", _powertrain_config(20))
        second = pool.add_config("beta", _powertrain_config(20))
        assert first is second
        assert len(pool) == 1
        assert pool.get("alpha") is pool.get("beta")

    def test_deadline_policy_separates_sessions(self):
        pool = SessionPool()
        base = _powertrain_config(20)
        strict = BusConfiguration(
            kmatrix=base.kmatrix, bus=base.bus,
            error_model=base.error_model,
            assumed_jitter_fraction=base.assumed_jitter_fraction,
            controllers=base.controllers,
            deadline_policy="min-rearrival")
        assert pool.add_config("a", base) is not pool.add_config("b", strict)

    def test_unknown_target_raises_with_inventory(self):
        pool = SessionPool()
        pool.add_config("only", _powertrain_config(20))
        with pytest.raises(UnknownTargetError) as error:
            pool.get("missing")
        assert "only" in str(error.value)

    def test_lru_eviction_of_unpinned_sessions(self):
        pool = SessionPool(max_sessions=2)
        for index, size in enumerate((16, 20, 24)):
            pool.add_config(f"t{index}", _powertrain_config(size), pin=False)
        assert len(pool) == 2
        assert pool.evicted_sessions == 1
        assert "t0" not in pool
        assert "t2" in pool

    def test_system_sharding(self):
        pool = SessionPool()
        system = multibus_system(n_buses=3, messages_per_bus=6, seed=2)
        shards = pool.add_system("chain", system)
        assert shards == {"CAN-0": "chain/CAN-0", "CAN-1": "chain/CAN-1",
                          "CAN-2": "chain/CAN-2"}
        assert pool.shard_map("chain") == shards
        got_system, sessions = pool.system("chain")
        assert got_system is system
        assert sorted(sessions) == ["CAN-0", "CAN-1", "CAN-2"]
        assert sessions["CAN-1"] is pool.get("chain/CAN-1")

    def test_system_name_containing_slash(self):
        pool = SessionPool()
        system = multibus_system(n_buses=2, messages_per_bus=6, seed=2)
        pool.add_system("plant/line1", system)
        _, sessions = pool.system("plant/line1")
        assert sorted(sessions) == ["CAN-0", "CAN-1"]

    def test_reregistration_unpins_the_orphaned_session(self):
        pool = SessionPool(max_sessions=1)
        pool.add_config("target", _powertrain_config(16))
        # Same name, new configuration: the old fingerprint loses its
        # alias and its pin, so the bound can reclaim it.
        pool.add_config("target", _powertrain_config(20))
        assert len(pool) == 1
        assert pool.evicted_sessions == 1
        assert pool.get("target").base_config.kmatrix is not None


# --------------------------------------------------------------------------- #
# Job queue
# --------------------------------------------------------------------------- #
class TestJobQueue:
    def test_serial_mode_runs_inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "serial")
        queue = JobQueue()
        assert queue.mode == "serial"
        assert queue.submit(lambda: 21 * 2).result(timeout=1) == 42
        queue.shutdown()

    def test_threaded_queue_resolves_futures_in_submit_order(self,
                                                             monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "thread")
        queue = JobQueue(workers=4)
        assert queue.mode == "thread"
        futures = [queue.submit(lambda i=i: i * i) for i in range(32)]
        assert [f.result(timeout=5) for f in futures] == [
            i * i for i in range(32)]
        assert queue.pending == 0
        queue.shutdown()

    def test_exceptions_travel_through_futures(self):
        queue = JobQueue()

        def boom():
            raise RuntimeError("bang")

        future = queue.submit(boom)
        with pytest.raises(RuntimeError, match="bang"):
            future.result(timeout=5)
        queue.shutdown()

    def test_submit_after_shutdown_raises(self):
        queue = JobQueue()
        queue.shutdown()
        with pytest.raises(RuntimeError):
            queue.submit(lambda: None)

    def test_process_mode_degrades_to_thread(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "process")
        queue = JobQueue()
        assert queue.mode == "thread"
        queue.shutdown()


# --------------------------------------------------------------------------- #
# REPRO_PARALLEL validation (satellite)
# --------------------------------------------------------------------------- #
class TestReproParallelValidation:
    def test_invalid_override_raises_naming_modes(self, monkeypatch):
        from repro.parallel import resolve_mode
        monkeypatch.setenv("REPRO_PARALLEL", "processes")
        with pytest.raises(ValueError) as error:
            resolve_mode("auto", 4)
        message = str(error.value)
        for mode in ("serial", "thread", "process", "auto"):
            assert mode in message

    def test_auto_and_empty_overrides_are_accepted(self, monkeypatch):
        from repro.parallel import resolve_mode
        monkeypatch.setenv("REPRO_PARALLEL", "auto")
        assert resolve_mode("serial", 4) == "serial"
        monkeypatch.setenv("REPRO_PARALLEL", "  ")
        assert resolve_mode("serial", 4) == "serial"


# --------------------------------------------------------------------------- #
# Daemon endpoints (in-process client, full protocol path)
# --------------------------------------------------------------------------- #
class TestDaemonEndpoints:
    def test_ping_health_targets_scenarios(self, client):
        assert client.ping()["pong"] is True
        health = client.health()
        assert health["status"] == "ok"
        assert "powertrain" in health["targets"]
        assert "multibus" in health["systems"]
        assert "paper-jitter-sweep" in health["scenarios"]
        names = [s["name"] for s in client.scenarios()["scenarios"]]
        assert names == sorted(names)

    def test_query_bit_matches_from_scratch(self, client):
        config = _powertrain_config()
        victim = config.kmatrix.sorted_by_priority()[5].name
        deltas = (JitterDelta(message_name=victim, jitter=1.75),)
        response = client.query("powertrain", deltas)
        expected = _reference_worst_cases(config, deltas)
        got = {name: entry["worst_case"]
               for name, entry in response["results"].items()}
        assert got == expected

    def test_query_subset_and_no_report(self, client):
        config = _powertrain_config()
        names = [m.name for m in config.kmatrix.sorted_by_priority()[:3]]
        response = client.query(
            "powertrain", (JitterDelta(fraction=0.3),),
            message_names=names, with_report=False)
        assert sorted(response["results"]) == sorted(names)
        assert response["report"] is None

    def test_query_unknown_target_is_clean_error(self, client):
        with pytest.raises(DaemonError, match="unknown target"):
            client.query("nope", ())

    def test_unknown_op_is_clean_error(self, client):
        with pytest.raises(DaemonError, match="unknown op"):
            client.request("frobnicate")

    def test_malformed_delta_is_clean_error(self, client):
        with pytest.raises(DaemonError):
            client.request("query", target="powertrain",
                           deltas=[{"delta": "quantum"}])

    def test_type_malformed_params_are_clean_errors(self, client):
        """Valid JSON of the wrong shape must yield an error response,
        never an unhandled exception (which would kill a TCP connection)."""
        with pytest.raises(DaemonError):
            client.request("query", target="powertrain", deltas="abc")
        with pytest.raises(DaemonError):
            client.request("batch", target="powertrain", queries=["x"])
        with pytest.raises(DaemonError):
            client.request("query", target="powertrain",
                           deltas=[{"delta": "jitter", "fraction": "many"}])
        # The daemon is still alive afterwards.
        assert client.ping()["pong"] is True

    def test_reregistered_system_is_not_served_stale(self):
        daemon = AnalysisDaemon(name="rereg")
        daemon.add_system("sys", multibus_system(
            n_buses=2, messages_per_bus=6, seed=1))
        client = InProcessClient(daemon)
        first = client.analyze_system("sys")
        replacement = multibus_system(n_buses=3, messages_per_bus=8, seed=2)
        daemon.add_system("sys", replacement)
        second = client.analyze_system("sys")
        assert len(second["messages"]) > len(first["messages"])
        from repro.core.engine import CompositionalAnalysis
        direct = CompositionalAnalysis(replacement,
                                       incremental=False).run()
        got = {name: entry["worst_case"]
               for name, entry in second["messages"].items()}
        assert got == {
            name: result.worst_case if result.bounded else None
            for name, result in direct.message_results.items()}
        daemon.close()

    def test_scenario_run(self, client):
        response = client.run_scenario("powertrain", "paper-jitter-sweep")
        assert response["scenario"] == "paper-jitter-sweep"
        assert len(response["queries"]) == 13
        assert "query" in response["table"]
        config = _powertrain_config()
        last = response["queries"][-1]
        expected = _reference_worst_cases(
            config, (JitterDelta(fraction=0.6),))
        got = {name: entry["worst_case"]
               for name, entry in last["results"].items()}
        assert got == expected

    def test_batch_preserves_request_order(self, client):
        config = _powertrain_config()
        fractions = [0.05 * i for i in range(8)]
        response = client.batch("powertrain", [
            {"deltas": (JitterDelta(fraction=f),), "label": f"f{index}"}
            for index, f in enumerate(fractions)])
        assert [q["label"] for q in response["results"]] == [
            f"f{i}" for i in range(len(fractions))]
        for fraction, entry in zip(fractions, response["results"]):
            expected = _reference_worst_cases(
                config, (JitterDelta(fraction=fraction),))
            got = {name: value["worst_case"]
                   for name, value in entry["results"].items()}
            assert got == expected

    def test_analyze_system_matches_direct_engine(self, client):
        from repro.core.engine import CompositionalAnalysis
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=5)
        direct = CompositionalAnalysis(system, incremental=False).run()
        response = client.analyze_system("multibus")
        assert response["converged"] == direct.converged
        assert response["iterations"] == direct.iterations
        got = {name: entry["worst_case"]
               for name, entry in response["messages"].items()}
        expected = {name: result.worst_case if result.bounded else None
                    for name, result in direct.message_results.items()}
        assert got == expected
        # A second request reuses the pool sessions and stays identical.
        assert client.analyze_system("multibus")["messages"] == \
            response["messages"]

    def test_stats_endpoint_exposes_sessions_and_table(self, client):
        client.query("powertrain", (JitterDelta(fraction=0.25),))
        stats = client.stats()
        assert stats["requests_served"] > 0
        names = [s["name"] for s in stats["sessions"]]
        assert "powertrain" in names
        table = stats["table"]
        for header in ("session", "queries", "hits", "reused", "warm",
                       "cold"):
            assert header in table
        assert "powertrain" in table


# --------------------------------------------------------------------------- #
# Concurrent clients (the multi-user property)
# --------------------------------------------------------------------------- #
class TestConcurrentClients:
    N_THREADS = 6
    QUERIES_PER_THREAD = 8

    def test_interleaved_mutating_queries_all_bit_match(self):
        """N threads issue interleaved jitter/priority deltas against one
        daemon; every response must bit-match a from-scratch analysis of
        exactly that delta sequence (no cross-client bleed)."""
        config = _powertrain_config(24)
        daemon = AnalysisDaemon(name="concurrent")
        daemon.add_config("shared", config)
        priorities = config.kmatrix.sorted_by_priority()
        pairs = [(priorities[i].name, priorities[i + 1].name)
                 for i in range(0, 8, 2)]
        failures: list[str] = []
        barrier = threading.Barrier(self.N_THREADS)

        def run_client(thread_index: int) -> None:
            client = InProcessClient(daemon)
            barrier.wait(timeout=10)
            for step in range(self.QUERIES_PER_THREAD):
                if (thread_index + step) % 2 == 0:
                    victim = priorities[3 + thread_index].name
                    deltas = (JitterDelta(
                        message_name=victim,
                        jitter=0.25 * (step + 1) * (thread_index + 1)),)
                else:
                    deltas = (PriorityDelta(
                        swap=pairs[(thread_index + step) % len(pairs)]),)
                response = client.query("shared", deltas, with_report=False)
                got = {name: entry["worst_case"]
                       for name, entry in response["results"].items()}
                expected = _reference_worst_cases(config, deltas)
                if got != expected:
                    failures.append(
                        f"thread {thread_index} step {step}: mismatch")

        threads = [threading.Thread(target=run_client, args=(index,))
                   for index in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        daemon.close()
        assert not failures, failures
        stats = daemon.pool.stats()[0]
        assert stats.queries == self.N_THREADS * self.QUERIES_PER_THREAD


# --------------------------------------------------------------------------- #
# TCP transport
# --------------------------------------------------------------------------- #
class TestTcpTransport:
    def test_tcp_end_to_end_bit_matches_in_process(self):
        config = _powertrain_config(24)
        daemon = AnalysisDaemon(name="tcp-test")
        daemon.add_config("powertrain", config)
        server = start_server(daemon, port=0)
        host, port = server.address
        try:
            deltas = (JitterDelta(fraction=0.4),)
            local = InProcessClient(daemon).query("powertrain", deltas)
            with TcpClient(host, port) as tcp:
                assert tcp.ping()["pong"] is True
                remote = tcp.query("powertrain", deltas)
                assert remote["results"] == local["results"]
                assert remote["fingerprint"] == local["fingerprint"]
                scenario = tcp.run_scenario("powertrain",
                                            "paper-error-sweep-sporadic")
                assert len(scenario["queries"]) == 8
        finally:
            server.stop()

    def test_shutdown_op_stops_the_server(self):
        daemon = AnalysisDaemon(name="tcp-shutdown")
        daemon.add_config("powertrain", _powertrain_config(16))
        server = start_server(daemon, port=0)
        host, port = server.address
        with TcpClient(host, port) as tcp:
            assert tcp.shutdown_daemon()["stopping"] is True
        assert daemon.shutdown_requested
        server.stop()
        with pytest.raises(OSError):
            TcpClient(host, port, timeout=0.5)

    def test_concurrent_tcp_clients(self):
        config = _powertrain_config(20)
        daemon = AnalysisDaemon(name="tcp-multi")
        daemon.add_config("powertrain", config)
        server = start_server(daemon, port=0)
        host, port = server.address
        failures: list[str] = []

        def run_client(index: int) -> None:
            try:
                with TcpClient(host, port) as tcp:
                    for step in range(4):
                        fraction = 0.05 * ((index + step) % 6)
                        deltas = (JitterDelta(fraction=fraction),)
                        response = tcp.query("powertrain", deltas,
                                             with_report=False)
                        got = {name: entry["worst_case"] for name, entry
                               in response["results"].items()}
                        if got != _reference_worst_cases(config, deltas):
                            failures.append(f"client {index} step {step}")
            except Exception as error:  # noqa: BLE001 - collected for assert
                failures.append(f"client {index}: {error!r}")

        threads = [threading.Thread(target=run_client, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        try:
            assert not failures, failures
        finally:
            server.stop()


# --------------------------------------------------------------------------- #
# Session stats (satellite)
# --------------------------------------------------------------------------- #
class TestSessionStats:
    def test_stats_counters_and_table(self):
        from repro.reporting.tables import format_session_stats
        from repro.service.session import AnalysisSession
        config = _powertrain_config(16)
        session = AnalysisSession.from_config(config, name="stats-test",
                                              max_cached_configs=2)
        session.analyze()
        session.analyze()  # exact cache hit
        for fraction in (0.2, 0.3, 0.4):  # forces evictions (bound is 2)
            session.query((JitterDelta(fraction=fraction),))
        stats = session.stats()
        assert stats.queries == 5
        assert stats.cache_hits == 1
        assert stats.cache_misses == 4
        assert stats.evictions >= 1
        assert stats.reused + stats.warm_started + stats.cold > 0
        table = format_session_stats([stats])
        assert "stats-test" in table
        assert "evicted" in table

"""Unit tests for supply-chain contracts and workflows (Figure 6)."""

from __future__ import annotations

import pytest

from repro.ecu.task import EcuModel, OsekOverheads, Task
from repro.events.model import PeriodicEventModel
from repro.supplychain.contracts import (
    MessageTimingClause,
    RequirementSpec,
    TimingDataSheet,
    TimingProperty,
    check_contract,
)
from repro.supplychain.workflow import (
    derive_oem_arrival_datasheet,
    derive_oem_requirements,
    derive_supplier_datasheet,
    iterative_refinement,
)


def _requirement(jitter: float = 2.0) -> RequirementSpec:
    return RequirementSpec(
        issuer="OEM", role="OEM", property=TimingProperty.SEND_JITTER,
        clauses=(MessageTimingClause(message="M1", period=10.0,
                                     max_jitter=jitter),))


def _datasheet(jitter: float = 1.0,
               message: str = "M1") -> TimingDataSheet:
    return TimingDataSheet(
        issuer="Supplier", role="supplier", property=TimingProperty.SEND_JITTER,
        clauses=(MessageTimingClause(message=message, period=10.0,
                                     max_jitter=jitter),))


class TestContracts:
    def test_tighter_guarantee_satisfies_requirement(self):
        result = check_contract(_requirement(2.0), _datasheet(1.0))
        assert result.satisfied
        assert "all requirements met" in result.describe()

    def test_looser_guarantee_violates(self):
        result = check_contract(_requirement(2.0), _datasheet(3.0))
        assert not result.satisfied
        assert result.violations[0].message == "M1"

    def test_missing_message_violates(self):
        result = check_contract(_requirement(), _datasheet(message="Other"))
        assert not result.satisfied
        assert "no guarantee" in result.violations[0].reason

    def test_period_mismatch_violates(self):
        datasheet = TimingDataSheet(
            issuer="S", role="supplier", property=TimingProperty.SEND_JITTER,
            clauses=(MessageTimingClause(message="M1", period=20.0,
                                         max_jitter=0.5),))
        result = check_contract(_requirement(), datasheet)
        assert not result.satisfied
        assert "period" in result.violations[0].reason

    def test_property_mismatch_violates(self):
        datasheet = TimingDataSheet(
            issuer="S", role="supplier", property=TimingProperty.ARRIVAL_JITTER,
            clauses=(MessageTimingClause(message="M1", period=10.0),))
        result = check_contract(_requirement(), datasheet)
        assert not result.satisfied

    def test_latency_bound_checked(self):
        requirement = RequirementSpec(
            issuer="Supplier", role="supplier",
            property=TimingProperty.ARRIVAL_JITTER,
            clauses=(MessageTimingClause(message="M1", period=10.0,
                                         max_jitter=5.0, max_latency=4.0),))
        good = TimingDataSheet(
            issuer="OEM", role="OEM", property=TimingProperty.ARRIVAL_JITTER,
            clauses=(MessageTimingClause(message="M1", period=10.0,
                                         max_jitter=3.0, max_latency=3.5),))
        bad = TimingDataSheet(
            issuer="OEM", role="OEM", property=TimingProperty.ARRIVAL_JITTER,
            clauses=(MessageTimingClause(message="M1", period=10.0,
                                         max_jitter=3.0, max_latency=6.0),))
        assert check_contract(requirement, good).satisfied
        assert not check_contract(requirement, bad).satisfied

    def test_clause_validation(self):
        with pytest.raises(ValueError):
            MessageTimingClause(message="M", period=0.0)
        with pytest.raises(ValueError):
            MessageTimingClause(message="M", period=10.0, max_jitter=-1.0)


class TestWorkflow:
    @pytest.fixture()
    def network(self, small_kmatrix, small_bus):
        return small_kmatrix, small_bus

    def test_oem_requirements_cover_supplier_messages(self, network):
        kmatrix, bus = network
        specs = derive_oem_requirements(kmatrix, bus, supplier_ecus=["ECU_A"],
                                        background_jitter_fraction=0.1)
        assert set(specs) == {"ECU_A"}
        spec = specs["ECU_A"]
        assert set(spec.messages()) == {m.name for m in kmatrix.sent_by("ECU_A")}
        for clause in spec.clauses:
            assert clause.max_jitter >= 0.0

    def test_requirements_keep_bus_schedulable(self, network):
        """Setting every message to its required jitter must stay feasible."""
        from repro.analysis.schedulability import analyze_schedulability
        kmatrix, bus = network
        specs = derive_oem_requirements(kmatrix, bus,
                                        supplier_ecus=["ECU_A", "ECU_B"],
                                        background_jitter_fraction=0.0,
                                        safety_margin=0.7)
        jitters = {}
        for spec in specs.values():
            for clause in spec.clauses:
                jitters[clause.message] = clause.max_jitter
        probe = kmatrix.map_messages(
            lambda m: m.with_jitter(min(jitters.get(m.name, 0.0), 2 * m.period)))
        report = analyze_schedulability(probe, bus)
        assert report.all_deadlines_met

    def test_supplier_datasheet_from_ecu_model(self, network):
        kmatrix, bus = network
        ecu = EcuModel(name="ECU_A", overheads=OsekOverheads(0, 0, 0, 0), tasks=[
            Task(name="Fast", priority=1, wcet=0.5, bcet=0.2,
                 activation=PeriodicEventModel(period=10.0),
                 sends_messages=("FastA",)),
            Task(name="Slow", priority=5, wcet=2.0, bcet=1.0,
                 activation=PeriodicEventModel(period=20.0),
                 sends_messages=("Medium",)),
            Task(name="Bg", priority=9, wcet=1.0, bcet=0.5,
                 activation=PeriodicEventModel(period=500.0),
                 sends_messages=("Background",)),
        ])
        datasheet = derive_supplier_datasheet(ecu, kmatrix, bus)
        assert set(datasheet.messages()) == {"FastA", "Medium", "Background"}
        assert datasheet.clause_for("FastA").max_jitter == pytest.approx(0.3)

    def test_duality_round_trip(self, network):
        """OEM requirement vs. supplier guarantee: the Figure-6 check."""
        kmatrix, bus = network
        specs = derive_oem_requirements(kmatrix, bus, supplier_ecus=["ECU_A"],
                                        background_jitter_fraction=0.1)
        ecu = EcuModel(name="ECU_A", overheads=OsekOverheads(0, 0, 0, 0), tasks=[
            Task(name="Fast", priority=1, wcet=0.2, bcet=0.1,
                 activation=PeriodicEventModel(period=10.0),
                 sends_messages=("FastA",)),
            Task(name="Slow", priority=5, wcet=0.5, bcet=0.3,
                 activation=PeriodicEventModel(period=20.0),
                 sends_messages=("Medium",)),
            Task(name="Bg", priority=9, wcet=0.3, bcet=0.2,
                 activation=PeriodicEventModel(period=500.0),
                 sends_messages=("Background",)),
        ])
        datasheet = derive_supplier_datasheet(ecu, kmatrix, bus)
        result = check_contract(specs["ECU_A"], datasheet)
        assert result.satisfied

    def test_oem_arrival_datasheet(self, network):
        kmatrix, bus = network
        datasheet = derive_oem_arrival_datasheet(kmatrix, bus,
                                                 receiver_ecu="ECU_B",
                                                 assumed_jitter_fraction=0.1)
        received = {m.name for m in kmatrix.received_by("ECU_B")}
        assert set(datasheet.messages()) == received
        for clause in datasheet.clauses:
            assert clause.max_latency is not None and clause.max_latency > 0

    def test_iterative_refinement_rounds(self, network):
        kmatrix, bus = network
        requirement = _requirement(2.0)
        rounds = iterative_refinement(
            kmatrix, bus,
            requirement_rounds=[
                ("initial assumptions", {"ECU_A": requirement}),
                ("after supplier feedback", {"ECU_A": requirement}),
            ],
            datasheet_rounds=[
                {"ECU_A": _datasheet(3.0)},
                {"ECU_A": _datasheet(1.5)},
            ])
        assert len(rounds) == 2
        assert not rounds[0].all_satisfied
        assert rounds[1].all_satisfied
        assert "round 2" in rounds[1].describe()

    def test_refinement_length_mismatch(self, network):
        kmatrix, bus = network
        with pytest.raises(ValueError):
            iterative_refinement(kmatrix, bus,
                                 requirement_rounds=[("a", {})],
                                 datasheet_rounds=[])

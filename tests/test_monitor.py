"""Tests for the live conformance monitor (repro.monitor) and its ops.

Covers the transport-free layers (metrics history, alert rules, frame
streams, the monitor core) and the serving tier end to end: a recorded
simulation trace replayed in chunks through a TCP daemon, with an injected
jitter burst that pushes exactly one message past its analytic deadline.
"""

from __future__ import annotations

import pytest

from repro.analysis.response_time import CanBusAnalysis
from repro.events.curves import EmpiricalEventTrace, fit_periodic_jitter
from repro.monitor import (
    AlertEngine,
    AlertRule,
    ConformanceMonitor,
    MonitorConfig,
    ObservedFrame,
    chunked,
    frames_from_trace,
    inject_jitter_burst,
)
from repro.obs.history import MetricsHistory, SeriesRing
from repro.obs.metrics import MetricsRegistry
from repro.server import protocol
from repro.server.client import DaemonError, InProcessClient, TcpClient
from repro.server.daemon import AnalysisDaemon
from repro.server.tcp import start_server
from repro.service.deltas import BusConfiguration
from repro.service.session import AnalysisSession
from repro.sim.simulator import CanBusSimulator, SimulationConfig


def _configuration(small_kmatrix, small_bus) -> BusConfiguration:
    return BusConfiguration(kmatrix=small_kmatrix, bus=small_bus,
                            assumed_jitter_fraction=0.0)


def _recorded_frames(small_kmatrix, small_bus, duration=2000.0, seed=3):
    simulator = CanBusSimulator(
        small_kmatrix, small_bus,
        config=SimulationConfig(duration=duration, seed=seed))
    return frames_from_trace(simulator.run())


# --------------------------------------------------------------------------- #
# Metrics history
# --------------------------------------------------------------------------- #
class TestMetricsHistory:
    def test_ring_evicts_oldest(self):
        ring = SeriesRing(capacity=3)
        for window in range(5):
            ring.append(window, float(window))
        assert [p.window for p in ring.last()] == [2, 3, 4]
        assert [p.value for p in ring.last(2)] == [3.0, 4.0]

    def test_history_series_and_snapshot_rendering(self):
        history = MetricsHistory(capacity=4)
        for window in range(6):
            history.record(window, "observed_max_ms", 1.0 + window,
                           message="Slow")
            history.record(window, "monitor_violations", 0.0)
        series = history.series("observed_max_ms", message="Slow")
        assert [p.window for p in series] == [2, 3, 4, 5]
        assert history.latest("observed_max_ms", message="Slow") == 6.0
        assert history.window_values("monitor_violations", last=2) == \
            [0.0, 0.0]
        snapshot = history.snapshot(last=1)
        assert snapshot['observed_max_ms{message="Slow"}'] == [[5, 6.0]]
        assert "monitor_violations" in snapshot
        assert sorted(snapshot) == history.names()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MetricsHistory(capacity=0)
        with pytest.raises(ValueError):
            SeriesRing(capacity=0)


# --------------------------------------------------------------------------- #
# Alert rules and engine
# --------------------------------------------------------------------------- #
class TestAlertRules:
    def test_parse_full_expression(self):
        rule = AlertRule.parse(
            "tight", "observed_slack_ms < 0.1*deadline for 3 windows")
        assert rule.metric == "observed_slack_ms"
        assert rule.op == "<"
        assert rule.threshold == 0.1
        assert rule.scale == "deadline"
        assert rule.for_windows == 3
        assert rule.describe() == \
            "observed_slack_ms < 0.1*deadline for 3 windows"

    def test_parse_minimal_and_json_round_trip(self):
        rule = AlertRule.parse("any", "violations > 0")
        assert rule.scale is None and rule.for_windows == 1
        assert AlertRule.from_json(rule.to_json()) == rule
        via_expr = AlertRule.from_json(
            {"name": "any", "expr": "violations > 0"})
        assert via_expr == rule

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            AlertRule.parse("bad", "observed_slack_ms ~ 3")
        with pytest.raises(ValueError):
            AlertRule.parse("bad", "x < 1*frobnicate")
        with pytest.raises(ValueError):
            AlertRule(name="", metric="m", op="<", threshold=1.0)
        with pytest.raises(ValueError):
            AlertRule(name="r", metric="m", op="<", threshold=1.0,
                      for_windows=0)

    def test_streaks_are_edge_triggered_and_rearm(self):
        engine = AlertEngine(
            [AlertRule.parse("tight", "slack < 1.0 for 2 windows")])
        fired = []
        samples = [0.5, 0.5, 0.5, 5.0, 0.5, 0.5]
        for window, value in enumerate(samples):
            fired.extend(engine.evaluate(window, {"M": {"slack": value}}))
        # First excursion fires once at its second window; the clearing in
        # window 3 re-arms; the second excursion fires again at window 5.
        assert [(a.window, a.subject) for a in fired] == [(1, "M"), (5, "M")]
        assert engine.active == [("tight", "M")]

    def test_scaled_threshold_uses_subject_quantities(self):
        engine = AlertEngine(
            [AlertRule.parse("tight", "slack < 0.1*deadline")])
        scales = {"A": {"deadline": 100.0}, "B": {"deadline": 10.0}}
        alerts = engine.evaluate(
            0, {"A": {"slack": 5.0}, "B": {"slack": 5.0}}, scales)
        # 5 < 10 fires for A (deadline 100); 5 < 1 does not fire for B.
        assert [(a.subject, a.threshold) for a in alerts] == [("A", 10.0)]

    def test_missing_metric_resets_streak(self):
        engine = AlertEngine(
            [AlertRule.parse("tight", "slack < 1.0 for 2 windows")])
        assert engine.evaluate(0, {"M": {"slack": 0.5}}) == []
        assert engine.evaluate(1, {"M": {}}) == []
        assert engine.evaluate(2, {"M": {"slack": 0.5}}) == []


# --------------------------------------------------------------------------- #
# Frame streams
# --------------------------------------------------------------------------- #
class TestStreams:
    def test_frames_from_trace_sorted_by_completion(
            self, small_kmatrix, small_bus):
        frames = _recorded_frames(small_kmatrix, small_bus, duration=300.0)
        assert frames
        assert all(a.finished_at <= b.finished_at
                   for a, b in zip(frames, frames[1:]))

    def test_chunked_sizes(self):
        frames = [ObservedFrame("M", float(i), float(i) + 1.0)
                  for i in range(10)]
        chunks = list(chunked(frames, size=4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        with pytest.raises(ValueError):
            list(chunked(frames, size=0))

    def test_frame_json_round_trip(self):
        frame = ObservedFrame("M", 1.5, 2.25, success=False, attempt=2)
        assert ObservedFrame.from_json(frame.to_json()) == frame
        assert frame.response_time == 0.75

    def test_inject_jitter_burst_moves_queuing_earlier(self):
        frames = [ObservedFrame("S", 100.0 * i, 100.0 * i + 1.0)
                  for i in range(10)]
        burst = inject_jitter_burst(frames, "S", start=300.0, count=3,
                                    shift=30.0)
        affected = [f for f in burst if f.queued_at != f.finished_at - 1.0]
        assert len(affected) == 3
        # Linear ramp: 10, 20, 30 ms earlier; completions untouched.
        assert [round(f.response_time, 6) for f in affected] == \
            [11.0, 21.0, 31.0]

    def test_protocol_codecs_and_version(self):
        assert protocol.PROTOCOL_VERSION == 6
        frames = [ObservedFrame("M", 0.0, 1.0)]
        decoded = protocol.frames_from_json(protocol.frames_to_json(frames))
        assert decoded == frames
        with pytest.raises(protocol.ProtocolError):
            protocol.frames_from_json([[1, 2, 3]])
        rules = protocol.alert_rules_from_json(
            [{"name": "a", "expr": "violations > 0"}])
        assert rules[0].metric == "violations"
        with pytest.raises(protocol.ProtocolError):
            protocol.alert_rules_from_json(["not an object"])
        with pytest.raises(protocol.ProtocolError):
            protocol.alert_rules_from_json([{"name": "a"}])


# --------------------------------------------------------------------------- #
# Monitor core (no transport)
# --------------------------------------------------------------------------- #
class TestConformanceMonitor:
    def _monitor(self, small_kmatrix, small_bus, rules=()):
        session = AnalysisSession(small_kmatrix, small_bus,
                                  name="monitor-test")
        return ConformanceMonitor(
            session, target="bus", rules=rules,
            config=MonitorConfig(window_ms=100.0))

    def test_clean_replay_flags_nothing(self, small_kmatrix, small_bus):
        monitor = self._monitor(small_kmatrix, small_bus)
        frames = _recorded_frames(small_kmatrix, small_bus)
        total = 0
        for chunk in chunked(frames, 256):
            total += len(monitor.ingest(chunk).violations)
        total += len(monitor.flush().violations)
        status = monitor.status()
        assert total == 0
        assert status["violations"] == 0
        assert status["refits"] == 0
        assert status["overrides"] == []
        assert status["frames"] == len(frames)

    def test_burst_flags_exactly_one_message_with_fresh_bound(
            self, small_kmatrix, small_bus):
        monitor = self._monitor(small_kmatrix, small_bus)
        frames = inject_jitter_burst(
            _recorded_frames(small_kmatrix, small_bus), "Slow",
            start=500.0, count=5, shift=120.0)
        violations = []
        for chunk in chunked(frames, 256):
            violations.extend(monitor.ingest(chunk).violations)
        violations.extend(monitor.flush().violations)
        assert violations
        assert {v.message for v in violations} == {"Slow"}
        status = monitor.status()
        assert status["overrides"] == ["Slow"]
        # The flagged record carries the re-derived (post-refit) bound: it
        # bit-matches a from-scratch analysis with the final fitted model.
        arrivals = EmpiricalEventTrace(
            [f.queued_at for f in frames
             if f.message == "Slow" and f.attempt == 1])
        fitted = fit_periodic_jitter(arrivals, 100.0, max_n=64)
        direct = CanBusAnalysis(
            small_kmatrix, small_bus, assumed_jitter_fraction=0.0,
            event_models={"Slow": fitted}).analyze_all()
        assert status["messages"]["Slow"]["bound"] == \
            direct["Slow"].worst_case
        assert status["messages"]["Slow"]["fitted_jitter"] == fitted.jitter
        # Deadline violations only: the refit made the bound cover the
        # observed burst before the violation was recorded.
        assert all(v.kind == "observed-over-deadline" for v in violations)
        assert all(v.observed <= status["messages"]["Slow"]["bound"] + 1e-9
                   for v in violations)

    def test_violation_counters_and_alerts(self, small_kmatrix, small_bus):
        registry = MetricsRegistry()
        session = AnalysisSession(small_kmatrix, small_bus,
                                  name="monitor-metrics")
        monitor = ConformanceMonitor(
            session, target="bus",
            rules=(AlertRule.parse("any-violation", "violations > 0"),),
            config=MonitorConfig(window_ms=100.0), metrics=registry)
        frames = inject_jitter_burst(
            _recorded_frames(small_kmatrix, small_bus), "Slow",
            start=500.0, count=5, shift=120.0)
        alerts = []
        for chunk in chunked(frames, 256):
            alerts.extend(monitor.ingest(chunk).alerts)
        alerts.extend(monitor.flush().alerts)
        assert [a.rule for a in alerts] == ["any-violation"]
        assert registry.value("monitor_violations_total",
                              message="Slow") == 1.0
        assert registry.value("monitor_violations_total",
                              message="FastA") == 0.0
        assert registry.value("monitor_alerts_total",
                              rule="any-violation") == 1.0
        assert registry.value("monitor_refits_total", target="bus") >= 1.0
        fired = monitor.alerts()["fired"]
        assert fired and fired[-1]["rule"] == "any-violation"
        # History carries the windowed series behind the alert.
        assert monitor.history.latest("observed_max_ms", message="Slow") \
            is not None

    def test_unknown_message_raises_typed_error(self, small_kmatrix,
                                                small_bus):
        from repro.sim.trace import UnknownMessageError
        monitor = self._monitor(small_kmatrix, small_bus)
        with pytest.raises(UnknownMessageError):
            monitor.ingest([ObservedFrame("Nope", 0.0, 1.0)])


# --------------------------------------------------------------------------- #
# Serving tier: acceptance end-to-end
# --------------------------------------------------------------------------- #
class TestMonitorOverTheWire:
    def _daemon(self, small_kmatrix, small_bus):
        daemon = AnalysisDaemon(name="monitor-e2e", mode="serial")
        daemon.add_config("bus", _configuration(small_kmatrix, small_bus))
        return daemon

    def test_tcp_replay_conformance_end_to_end(self, small_kmatrix,
                                               small_bus):
        frames = _recorded_frames(small_kmatrix, small_bus)
        burst = inject_jitter_burst(frames, "Slow", start=500.0, count=5,
                                    shift=120.0)
        daemon = self._daemon(small_kmatrix, small_bus)
        server = start_server(daemon, port=0)
        host, port = server.address
        try:
            with TcpClient(host, port) as client:
                client.monitor_start(
                    "bus", window_ms=100.0,
                    rules=[AlertRule.parse("any-violation",
                                           "violations > 0")])
                # Clean replay first: nothing may be flagged.
                clean_violations = []
                for chunk in chunked(frames, 256):
                    report = client.monitor_ingest("bus", chunk)
                    clean_violations.extend(report["violations"])
                report = client.monitor_ingest("bus", [], flush=True)
                clean_violations.extend(report["violations"])
                assert clean_violations == []
                assert client.monitor_status("bus")["violations"] == 0

                # Restart and replay the burst: exactly one message flagged.
                client.monitor_start(
                    "bus", window_ms=100.0,
                    rules=[AlertRule.parse("any-violation",
                                           "violations > 0")])
                violations, alerts = [], []
                for chunk in chunked(burst, 256):
                    report = client.monitor_ingest("bus", chunk)
                    violations.extend(report["violations"])
                    alerts.extend(report["alerts"])
                report = client.monitor_ingest("bus", [], flush=True)
                violations.extend(report["violations"])
                alerts.extend(report["alerts"])
                assert {v["message"] for v in violations} == {"Slow"}

                # Re-derived bound bit-matches a from-scratch analysis with
                # the fitted empirical model -- through JSON and TCP.
                status = client.monitor_status("bus")
                arrivals = EmpiricalEventTrace(
                    [f.queued_at for f in burst
                     if f.message == "Slow" and f.attempt == 1])
                fitted = fit_periodic_jitter(arrivals, 100.0, max_n=64)
                direct = CanBusAnalysis(
                    small_kmatrix, small_bus, assumed_jitter_fraction=0.0,
                    event_models={"Slow": fitted}).analyze_all()
                assert status["messages"]["Slow"]["bound"] == \
                    direct["Slow"].worst_case
                assert status["overrides"] == ["Slow"]

                # The violation and the fired alert are visible through the
                # observability ops.
                counters = client.metrics(
                    history=True, history_last=8)["metrics"]["counters"]
                assert counters[
                    'monitor_violations_total{message="Slow"}'] == 1.0
                assert counters[
                    'monitor_alerts_total{rule="any-violation"}'] == 1.0
                assert [a["rule"] for a in alerts] == ["any-violation"]
                fired = client.monitor_alerts("bus")["fired"]
                assert [a["rule"] for a in fired] == ["any-violation"]
                history = client.metrics(
                    history=True, history_last=8)["history"]
                assert 'observed_max_ms{message="Slow"}' in history["bus"]
                stopped = client.monitor_stop("bus")
                assert stopped["violations"] == len(violations)
        finally:
            server.stop()

    def test_monitor_error_taxonomy_over_the_wire(self, small_kmatrix,
                                                  small_bus):
        daemon = self._daemon(small_kmatrix, small_bus)
        client = InProcessClient(daemon)
        with pytest.raises(DaemonError) as excinfo:
            client.monitor_status("bus")
        assert excinfo.value.code == "unknown_target"
        with pytest.raises(DaemonError) as excinfo:
            client.monitor_start("missing")
        assert excinfo.value.code == "unknown_target"
        client.monitor_start("bus")
        with pytest.raises(DaemonError) as excinfo:
            client.monitor_ingest("bus", [ObservedFrame("Nope", 0.0, 1.0)])
        assert excinfo.value.code == "unknown_target"
        with pytest.raises(DaemonError) as excinfo:
            client.monitor_ingest("bus", [["bad", "frame"]])
        assert excinfo.value.code == "protocol"
        with pytest.raises(DaemonError) as excinfo:
            client.monitor_start("bus", window_ms=-1.0)
        assert excinfo.value.code == "invalid"
        daemon.close()

    def test_monitor_restart_resets_state(self, small_kmatrix, small_bus):
        daemon = self._daemon(small_kmatrix, small_bus)
        client = InProcessClient(daemon)
        frames = inject_jitter_burst(
            _recorded_frames(small_kmatrix, small_bus), "Slow",
            start=500.0, count=5, shift=120.0)
        client.monitor_start("bus", window_ms=100.0)
        client.monitor_ingest("bus", frames, flush=True)
        assert client.monitor_status("bus")["violations"] == 1
        client.monitor_start("bus", window_ms=100.0)
        status = client.monitor_status("bus")
        assert status["violations"] == 0
        assert status["frames"] == 0
        assert status["overrides"] == []
        daemon.close()

    def test_health_reports_active_alerts(self, small_kmatrix, small_bus):
        daemon = self._daemon(small_kmatrix, small_bus)
        client = InProcessClient(daemon)
        client.monitor_start(
            "bus", window_ms=100.0,
            rules=[AlertRule.parse("always", "frames >= 0")])
        frames = _recorded_frames(small_kmatrix, small_bus, duration=300.0)
        client.monitor_ingest("bus", frames, flush=True)
        health = client.health()
        assert health["monitors"] == ["bus"]
        assert health["status"] == "degraded"
        assert any("active alert" in cause for cause in health["causes"])
        assert health["signals"]["monitor_active_alerts"] >= 1
        client.monitor_stop("bus")
        assert client.health()["status"] == "ok"
        daemon.close()

    def test_monitor_status_is_a_control_op_during_drain(self, small_kmatrix,
                                                         small_bus):
        daemon = self._daemon(small_kmatrix, small_bus)
        client = InProcessClient(daemon)
        client.monitor_start("bus")
        daemon.close(grace=0.0)
        # Status/alerts keep answering while draining; ingest is rejected.
        assert client.monitor_status("bus")["target"] == "bus"
        assert client.monitor_alerts("bus")["active"] == []
        with pytest.raises(DaemonError) as excinfo:
            client.monitor_ingest("bus", [])
        assert excinfo.value.code == "draining"

    def test_reporting_formatters_render(self, small_kmatrix, small_bus):
        from repro.reporting import format_alerts, format_monitor_status
        daemon = self._daemon(small_kmatrix, small_bus)
        client = InProcessClient(daemon)
        client.monitor_start(
            "bus", rules=[AlertRule.parse("any", "violations > 0")])
        frames = inject_jitter_burst(
            _recorded_frames(small_kmatrix, small_bus), "Slow",
            start=500.0, count=5, shift=120.0)
        client.monitor_ingest("bus", frames, flush=True)
        status_text = format_monitor_status(client.monitor_status("bus"),
                                            title="monitor")
        assert "Slow" in status_text and "violation" in status_text
        alerts_text = format_alerts(client.monitor_alerts("bus"))
        assert "any" in alerts_text
        daemon.close()

"""Unit tests for priority-assignment baselines and the genetic optimizer."""

from __future__ import annotations

import pytest

from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import NoErrors
from repro.optimize.assignment import (
    audsley_assignment,
    deadline_monotonic_assignment,
    rate_monotonic_assignment,
)
from repro.optimize.genetic import (
    GeneticOptimizerConfig,
    optimize_priorities,
)
from repro.optimize.objectives import (
    AnalysisScenario,
    evaluate_configuration,
    paper_scenarios,
)


@pytest.fixture()
def inverted_matrix() -> KMatrix:
    """Fast messages carry the worst identifiers (anti-rate-monotonic)."""
    return KMatrix(messages=[
        CanMessage(name="Slow1", can_id=0x100, dlc=8, period=200.0, sender="E1"),
        CanMessage(name="Slow2", can_id=0x101, dlc=8, period=200.0, sender="E2"),
        CanMessage(name="Mid1", can_id=0x200, dlc=8, period=20.0, sender="E1"),
        CanMessage(name="Fast1", can_id=0x300, dlc=8, period=5.0, sender="E2",
                   deadline=1.0),
        CanMessage(name="Fast2", can_id=0x301, dlc=8, period=5.0, sender="E1",
                   deadline=1.0),
    ])


class TestDeterministicAssignments:
    def test_rate_monotonic_orders_by_period(self, inverted_matrix):
        reassigned = rate_monotonic_assignment(inverted_matrix)
        ordered = [m.name for m in reassigned.sorted_by_priority()]
        assert ordered[:2] == ["Fast1", "Fast2"]
        assert ordered[-1] in {"Slow1", "Slow2"}

    def test_id_pool_is_preserved(self, inverted_matrix):
        reassigned = rate_monotonic_assignment(inverted_matrix)
        assert sorted(m.can_id for m in reassigned) == \
            sorted(m.can_id for m in inverted_matrix)

    def test_deadline_monotonic_uses_explicit_deadlines(self, inverted_matrix):
        reassigned = deadline_monotonic_assignment(inverted_matrix)
        ordered = [m.name for m in reassigned.sorted_by_priority()]
        assert set(ordered[:2]) == {"Fast1", "Fast2"}

    def test_original_matrix_untouched(self, inverted_matrix):
        rate_monotonic_assignment(inverted_matrix)
        assert inverted_matrix.get("Fast1").can_id == 0x300


class TestAudsley:
    def test_finds_feasible_assignment(self, inverted_matrix, small_bus):
        scenario = AnalysisScenario(name="strict", bus=small_bus,
                                    deadline_policy="explicit")
        # The inverted assignment misses deadlines ...
        assert scenario.analyze(inverted_matrix).loss_fraction > 0.0
        # ... but Audsley finds an assignment that does not.
        optimized, feasible = audsley_assignment(inverted_matrix, scenario)
        assert feasible
        assert scenario.analyze(optimized).all_deadlines_met

    def test_reports_infeasible_systems(self, small_bus):
        kmatrix = KMatrix(messages=[
            CanMessage(name="A", can_id=0x100, dlc=8, period=1.0,
                       deadline=0.25, sender="E1"),
            CanMessage(name="B", can_id=0x200, dlc=8, period=1.0,
                       deadline=0.25, sender="E2"),
        ])
        scenario = AnalysisScenario(name="hopeless", bus=small_bus,
                                    deadline_policy="explicit")
        optimized, feasible = audsley_assignment(kmatrix, scenario)
        assert not feasible
        assert len(optimized) == len(kmatrix)  # still a complete matrix


class TestObjectives:
    def test_evaluation_counts_losses(self, inverted_matrix, small_bus):
        scenario = AnalysisScenario(name="strict", bus=small_bus,
                                    deadline_policy="explicit")
        bad = evaluate_configuration(inverted_matrix, [scenario])
        good = evaluate_configuration(
            deadline_monotonic_assignment(inverted_matrix), [scenario])
        assert bad.lost_messages > good.lost_messages
        assert good.dominates(bad) or good.objectives() < bad.objectives()

    def test_paper_scenarios_structure(self, small_bus):
        scenarios = paper_scenarios(small_bus, jitter_fractions=(0.1, 0.25))
        assert len(scenarios) == 4
        names = {s.name for s in scenarios}
        assert any("worst" in n for n in names)
        assert any("best" in n for n in names)

    def test_dominance_is_strict(self, inverted_matrix, small_bus):
        scenario = AnalysisScenario(name="s", bus=small_bus)
        evaluation = evaluate_configuration(inverted_matrix, [scenario])
        assert not evaluation.dominates(evaluation)


class TestGeneticOptimizer:
    def test_optimizer_repairs_inverted_assignment(self, inverted_matrix,
                                                   small_bus):
        scenario = AnalysisScenario(name="strict", bus=small_bus,
                                    deadline_policy="explicit",
                                    error_model=NoErrors())
        config = GeneticOptimizerConfig(population_size=8, archive_size=4,
                                        generations=4, seed=1)
        result = optimize_priorities(inverted_matrix, [scenario], config)
        assert result.best_evaluation.lost_messages == 0
        assert result.improved
        assert scenario.analyze(result.best_kmatrix).all_deadlines_met

    def test_optimizer_never_returns_worse_than_original(self, small_kmatrix,
                                                         small_bus):
        scenario = AnalysisScenario(name="ok", bus=small_bus)
        config = GeneticOptimizerConfig(population_size=6, archive_size=3,
                                        generations=2, seed=2)
        result = optimize_priorities(small_kmatrix, [scenario], config)
        assert result.best_evaluation.lost_messages <= \
            result.original_evaluation.lost_messages

    def test_result_reuses_id_pool(self, inverted_matrix, small_bus):
        scenario = AnalysisScenario(name="strict", bus=small_bus,
                                    deadline_policy="explicit")
        config = GeneticOptimizerConfig(population_size=6, archive_size=3,
                                        generations=2, seed=3)
        result = optimize_priorities(inverted_matrix, [scenario], config)
        assert sorted(m.can_id for m in result.best_kmatrix) == \
            sorted(m.can_id for m in inverted_matrix)
        assert {m.name for m in result.best_kmatrix} == \
            {m.name for m in inverted_matrix}

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GeneticOptimizerConfig(population_size=1)
        with pytest.raises(ValueError):
            GeneticOptimizerConfig(mutation_probability=1.5)

    def test_describe_summarises_run(self, inverted_matrix, small_bus):
        scenario = AnalysisScenario(name="s", bus=small_bus,
                                    deadline_policy="explicit")
        config = GeneticOptimizerConfig(population_size=6, archive_size=3,
                                        generations=2, seed=4)
        result = optimize_priorities(inverted_matrix, [scenario], config)
        assert "lost messages" in result.describe()

"""Delta correctness: every session query bit-matches a from-scratch analysis.

The what-if service promises that its reuse / warm-start / cold planning is
invisible in the results: a query through an
:class:`~repro.service.session.AnalysisSession` must equal -- ``==`` on the
full result objects, i.e. bit for bit -- a cold ``analyze_all`` of a fresh
:class:`~repro.analysis.response_time.CanBusAnalysis` built on the mutated
K-Matrix.  These tests sweep the same structurally diverse synthetic seed
corpus as ``tests/test_kernel_equivalence.py`` over every delta type,
including the invalidation cases (jitter shrinking, priority swaps, message
add/remove) where stale seeds would be unsound.
"""

from __future__ import annotations

import pytest

from repro.analysis.response_time import CanBusAnalysis
from repro.can.bus import CanBus
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import BurstErrorModel, NoErrors, SporadicErrorModel
from repro.optimize.objectives import (
    AnalysisScenario,
    evaluate_configuration_with_context,
)
from repro.service import (
    AddMessageDelta,
    AnalysisSession,
    BatchJob,
    BatchRunner,
    BusConfiguration,
    ErrorModelDelta,
    EventModelDelta,
    JitterDelta,
    PriorityDelta,
    RemoveMessageDelta,
    ScenarioCatalog,
    SessionEvaluator,
    builtin_catalog,
    jitter_sweep_scenario,
    message_jitter_sweep_scenario,
    priority_swap_scenario,
    system_jobs,
)
from repro.service.deltas import BusDelta, DeadlinePolicyDelta, apply_deltas
from repro.workloads.multibus import multibus_system
from repro.workloads.scaling import synthetic_kmatrix

#: Same corpus shape as the kernel-equivalence suite.
SEEDS = tuple(range(16))

_BUS = CanBus(name="svc", bit_rate_bps=250_000.0)


def _matrix(seed: int) -> KMatrix:
    return synthetic_kmatrix(
        n_messages=9 + seed % 6,
        n_ecus=3 + seed % 3,
        seed=seed,
        id_policy=("block", "rate-monotonic", "random")[seed % 3],
        known_jitter_probability=0.3,
    )


def _session(seed: int, **kwargs) -> AnalysisSession:
    return AnalysisSession(_matrix(seed), _BUS, **kwargs)


def _reference(config: BusConfiguration):
    """Cold from-scratch analysis of a configuration."""
    return config.build_analysis().analyze_all()


def assert_query_exact(session: AnalysisSession, deltas: tuple,
                       warm_from=None) -> None:
    """The session result must ``==`` a cold analysis of the mutated matrix."""
    result = session.query(deltas, warm_from=warm_from)
    expected = _reference(apply_deltas(session.base_config, deltas))
    assert result.results == expected


class TestDeltaExactness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fraction_sweep_up_and_down(self, seed):
        """Ascending points warm-start, descending points must not go stale."""
        session = _session(seed)
        session.analyze()
        for fraction in (0.1, 0.3, 0.6, 0.2, 0.0, 0.45):
            assert_query_exact(session, (JitterDelta(fraction=fraction),))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_message_jitter_grow_and_shrink(self, seed):
        kmatrix = _matrix(seed)
        session = AnalysisSession(kmatrix, _BUS)
        session.analyze()
        for index in (0, len(kmatrix) // 2, len(kmatrix) - 1):
            name = kmatrix.messages[index].name
            for jitter in (2.5, 0.5, 7.0, 0.0):
                assert_query_exact(
                    session, (JitterDelta(message_name=name, jitter=jitter),))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_error_model_harden_and_relax(self, seed):
        session = _session(seed)
        session.analyze()
        models = (
            SporadicErrorModel(min_interarrival=100.0),
            SporadicErrorModel(min_interarrival=10.0),
            SporadicErrorModel(min_interarrival=400.0),
            BurstErrorModel(min_interarrival=60.0, burst_length=3,
                            intra_burst_gap=0.5),
            NoErrors(),
        )
        for model in models:
            assert_query_exact(session, (ErrorModelDelta(model),))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_priority_swap_invalidates_exactly(self, seed):
        kmatrix = _matrix(seed)
        session = AnalysisSession(kmatrix, _BUS)
        session.analyze()
        order = [m.name for m in kmatrix.sorted_by_priority()]
        swaps = [(order[0], order[-1]), (order[0], order[1]),
                 (order[len(order) // 2], order[-1])]
        for pair in swaps:
            assert_query_exact(session, (PriorityDelta(swap=pair),))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_reprioritisation(self, seed):
        kmatrix = _matrix(seed)
        session = AnalysisSession(kmatrix, _BUS)
        session.analyze()
        order = tuple(m.name for m in kmatrix.sorted_by_priority())
        reversed_order = tuple(reversed(order))
        rotated = order[1:] + order[:1]
        for candidate in (reversed_order, rotated):
            assert_query_exact(session, (PriorityDelta(order=candidate),))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_add_and_remove_message(self, seed):
        kmatrix = _matrix(seed)
        session = AnalysisSession(kmatrix, _BUS)
        session.analyze()
        ids = {m.can_id for m in kmatrix}
        highest = CanMessage(name="IntruderHigh", can_id=min(ids) - 1,
                             dlc=8, period=5.0, sender="ECU1")
        lowest = CanMessage(name="IntruderLow", can_id=max(ids) + 1,
                            dlc=8, period=20.0, sender="ECU2")
        assert_query_exact(session, (AddMessageDelta(highest),))
        assert_query_exact(session, (AddMessageDelta(lowest),))
        for victim in (kmatrix.sorted_by_priority()[0].name,
                       kmatrix.sorted_by_priority()[-1].name):
            assert_query_exact(session, (RemoveMessageDelta(victim),))

    @pytest.mark.parametrize("seed", (0, 3, 7, 11))
    def test_stacked_deltas(self, seed):
        kmatrix = _matrix(seed)
        session = AnalysisSession(kmatrix, _BUS)
        session.analyze()
        order = [m.name for m in kmatrix.sorted_by_priority()]
        deltas = (
            JitterDelta(fraction=0.25),
            ErrorModelDelta(SporadicErrorModel(min_interarrival=50.0)),
            PriorityDelta(swap=(order[0], order[2])),
            JitterDelta(message_name=order[1], jitter=4.0),
            BusDelta(bit_stuffing=False),
        )
        for length in range(1, len(deltas) + 1):
            assert_query_exact(session, deltas[:length])

    def test_chained_sweep_equals_independent_queries(self):
        """A warm-chained sweep must equal per-point fresh sessions."""
        kmatrix = _matrix(5)
        chained = AnalysisSession(kmatrix, _BUS)
        previous = None
        for fraction in (0.0, 0.1, 0.2, 0.3, 0.4):
            previous = chained.query((JitterDelta(fraction=fraction),),
                                     warm_from=previous)
            fresh = CanBusAnalysis(
                kmatrix, _BUS,
                assumed_jitter_fraction=fraction).analyze_all()
            assert previous.results == fresh


class TestEventModelDeltaExactness:
    """The engine's delta: externally injected activation models.

    Chained injections with growing jitter and an appearing minimum
    distance reproduce exactly the shape the compositional engine issues
    every global iteration -- including the sharpened cap-appearance
    dominance rule and the O(|changed|) seed re-verification, both of
    which must never cost a bit of exactness.
    """

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chained_injections_exact(self, seed):
        from repro.events.model import (
            PeriodicWithBurst,
            PeriodicWithJitter,
        )
        session = _session(seed)
        kmatrix = session.base_config.kmatrix
        targets = kmatrix.sorted_by_priority()[:2]
        previous = None
        for step in range(4):
            models = {}
            for index, message in enumerate(targets):
                jitter = (0.1 + 0.35 * step) * message.period * (index + 1)
                if step == 0:
                    models[message.name] = PeriodicWithJitter(
                        period=message.period, jitter=jitter)
                else:
                    # From step 1 on a transmission-time-scale minimum
                    # distance appears: the engine's iteration-2 shape.
                    models[message.name] = PeriodicWithBurst(
                        period=message.period,
                        jitter=max(jitter, message.period * 1.01),
                        min_distance=0.25)
            deltas = (EventModelDelta.from_mapping(models, replace_all=True),)
            result = session.query(deltas, warm_from=previous)
            expected = _reference(apply_deltas(session.base_config, deltas))
            assert result.results == expected
            previous = result

    @pytest.mark.parametrize("seed", SEEDS)
    def test_shrinking_injections_stay_exact(self, seed):
        """Jitter shrinking between injections forces cold paths -- the
        planner must notice, not warm-start from a too-high seed."""
        from repro.events.model import PeriodicWithJitter
        session = _session(seed)
        kmatrix = session.base_config.kmatrix
        victim = kmatrix.sorted_by_priority()[0]
        previous = None
        for jitter_factor in (2.0, 0.4, 1.2, 0.1):
            models = {victim.name: PeriodicWithJitter(
                period=victim.period, jitter=jitter_factor * victim.period)}
            deltas = (EventModelDelta.from_mapping(models, replace_all=True),)
            result = session.query(deltas, warm_from=previous)
            expected = _reference(apply_deltas(session.base_config, deltas))
            assert result.results == expected
            previous = result

    def test_merge_vs_replace_semantics(self):
        from repro.events.model import PeriodicWithJitter
        session = _session(3)
        kmatrix = session.base_config.kmatrix
        first, second = kmatrix.sorted_by_priority()[:2]
        inject_first = EventModelDelta.from_mapping(
            {first.name: PeriodicWithJitter(period=first.period, jitter=1.0)})
        inject_second = EventModelDelta.from_mapping(
            {second.name: PeriodicWithJitter(period=second.period,
                                             jitter=2.0)})
        merged = apply_deltas(session.base_config,
                              (inject_first, inject_second))
        assert set(merged.event_models) == {first.name, second.name}
        replaced = apply_deltas(
            session.base_config,
            (inject_first,
             EventModelDelta.from_mapping(
                 {second.name: PeriodicWithJitter(period=second.period,
                                                  jitter=2.0)},
                 replace_all=True)))
        assert set(replaced.event_models) == {second.name}
        assert_query_exact(session, (inject_first, inject_second))

    def test_unknown_message_rejected(self):
        from repro.events.model import PeriodicWithJitter
        session = _session(1)
        delta = EventModelDelta.from_mapping(
            {"NoSuchMessage": PeriodicWithJitter(period=5.0, jitter=1.0)})
        with pytest.raises(KeyError):
            session.query((delta,))

    def test_non_event_model_value_rejected(self):
        with pytest.raises(ValueError):
            EventModelDelta(models=(("M", 5.0),))


class TestSessionMechanics:
    def test_repeated_query_hits_cache(self):
        session = _session(2)
        first = session.query((JitterDelta(fraction=0.2),))
        second = session.query((JitterDelta(fraction=0.2),))
        assert second.stats.cache_hit
        assert first.results == second.results
        assert first.fingerprint == second.fingerprint

    def test_deadline_policy_reuses_analysis_cache(self):
        session = _session(2)
        period = session.query((JitterDelta(fraction=0.2),))
        strict = session.query(
            (JitterDelta(fraction=0.2), DeadlinePolicyDelta("min-rearrival")))
        assert strict.stats.cache_hit
        assert strict.report.deadline_policy == "min-rearrival"
        assert period.report.deadline_policy == "period"
        assert {v.name: v.worst_case_response
                for v in strict.report.verdicts} == {
                    v.name: v.worst_case_response
                    for v in period.report.verdicts}

    def test_low_priority_whatif_reuses_upstream_results(self):
        """Bumping the lowest-priority jitter must not re-solve the rest."""
        kmatrix = _matrix(4)
        session = AnalysisSession(kmatrix, _BUS)
        session.analyze()
        victim = kmatrix.sorted_by_priority()[-1]
        grown = (victim.jitter or 0.0) + 3.0
        result = session.query(
            (JitterDelta(message_name=victim.name, jitter=grown),))
        assert result.stats.reused == len(kmatrix) - 1
        assert result.stats.cold == 0

    def test_subset_query_matches_full_query(self):
        kmatrix = _matrix(6)
        session = AnalysisSession(kmatrix, _BUS)
        names = tuple(m.name for m in kmatrix)[:3]
        subset = session.query((JitterDelta(fraction=0.3),),
                               message_names=names)
        assert set(subset.results) == set(names)
        assert subset.report is None
        full = session.query((JitterDelta(fraction=0.3),))
        for name in names:
            assert subset.results[name] == full.results[name]

    def test_subset_then_full_extends_partial_entry(self):
        kmatrix = _matrix(6)
        session = AnalysisSession(kmatrix, _BUS)
        name = kmatrix.messages[0].name
        session.query((JitterDelta(fraction=0.1),), message_names=(name,))
        full = session.query((JitterDelta(fraction=0.1),))
        expected = CanBusAnalysis(
            kmatrix, _BUS, assumed_jitter_fraction=0.1).analyze_all()
        assert full.results == expected

    def test_cache_eviction_keeps_base_and_stays_exact(self):
        kmatrix = _matrix(3)
        session = AnalysisSession(kmatrix, _BUS, max_cached_configs=3)
        session.analyze()
        for fraction in (0.05, 0.1, 0.15, 0.2, 0.25, 0.3):
            assert_query_exact(session, (JitterDelta(fraction=fraction),))
        base_again = session.analyze()
        assert base_again.results == _reference(session.base_config)

    def test_unknown_message_rejected(self):
        session = _session(1)
        with pytest.raises(KeyError):
            session.query((JitterDelta(message_name="NoSuch", jitter=1.0),))
        with pytest.raises(KeyError):
            session.query((), message_names=("NoSuch",))

    def test_warm_from_accepts_tuples_of_results_and_keys(self):
        session = _session(1)
        first = session.query((JitterDelta(fraction=0.1),))
        second = session.query((JitterDelta(fraction=0.2),))
        chained = session.query((JitterDelta(fraction=0.3),),
                                warm_from=(first, second))
        assert chained.results == _reference(
            apply_deltas(session.base_config, (JitterDelta(fraction=0.3),)))
        key = session.key_for((JitterDelta(fraction=0.2),))
        keyed = session.query((JitterDelta(fraction=0.35),), warm_from=(key,))
        assert keyed.stats.warm_started > 0

    def test_priority_swap_accepts_list(self):
        kmatrix = _matrix(1)
        session = AnalysisSession(kmatrix, _BUS)
        names = [m.name for m in kmatrix.sorted_by_priority()]
        delta = PriorityDelta(swap=[names[0], names[1]])
        result = session.query((delta,))
        assert result.results == _reference(
            apply_deltas(session.base_config, (delta,)))

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            JitterDelta()
        with pytest.raises(ValueError):
            JitterDelta(message_name="X", jitter=1.0, fraction=0.1)
        with pytest.raises(ValueError):
            PriorityDelta()
        with pytest.raises(ValueError):
            PriorityDelta(swap=("a", "b"), order=("a", "b"))
        with pytest.raises(ValueError):
            DeadlinePolicyDelta("bogus")


class TestCatalogAndBatch:
    def test_builtin_catalog_runs_bit_exact(self):
        catalog = builtin_catalog()
        assert "paper-jitter-sweep" in catalog
        session = _session(8)
        run = catalog.run("paper-error-sweep-sporadic", session)
        assert len(run.queries) == 8
        for query in run.queries:
            expected = _reference(
                apply_deltas(session.base_config, query.deltas))
            assert query.results == expected
        assert "paper-error-sweep-sporadic" in run.to_table()

    def test_catalog_registration_and_errors(self):
        catalog = ScenarioCatalog()
        scenario = jitter_sweep_scenario(fractions=(0.0, 0.2))
        catalog.register(scenario)
        with pytest.raises(ValueError):
            catalog.register(scenario)
        catalog.register(scenario, overwrite=True)
        with pytest.raises(KeyError):
            catalog.get("missing")
        assert catalog.names() == [scenario.name]

    def test_message_jitter_and_swap_families(self):
        kmatrix = _matrix(9)
        session = AnalysisSession(kmatrix, _BUS)
        session.analyze()
        order = [m.name for m in kmatrix.sorted_by_priority()]
        for scenario in (
                message_jitter_sweep_scenario(order[-1], (0.5, 1.0, 2.0)),
                priority_swap_scenario([(order[0], order[1]),
                                        (order[1], order[-1])])):
            run = scenario.run(session)
            for query in run.queries:
                expected = _reference(
                    apply_deltas(session.base_config, query.deltas))
                assert query.results == expected

    def test_batch_runner_is_deterministic_across_modes(self):
        scenario = jitter_sweep_scenario(fractions=(0.0, 0.25))
        jobs = [
            BatchJob(label=f"seed{seed}",
                     config=BusConfiguration(kmatrix=_matrix(seed), bus=_BUS),
                     scenario=scenario)
            for seed in (1, 2, 3, 4)
        ]
        serial = BatchRunner(mode="serial").run(jobs)
        threaded = BatchRunner(mode="thread").run(jobs)
        assert [r.scenario for r in serial] == [r.scenario for r in threaded]
        for left, right in zip(serial, threaded):
            assert [q.results for q in left.queries] == [
                q.results for q in right.queries]

    def test_batch_runner_process_mode(self):
        """Jobs and workers must be picklable end to end."""
        scenario = jitter_sweep_scenario(fractions=(0.0, 0.3))
        jobs = [
            BatchJob(label=f"seed{seed}",
                     config=BusConfiguration(kmatrix=_matrix(seed), bus=_BUS),
                     scenario=scenario)
            for seed in (1, 2)
        ]
        processed = BatchRunner(mode="process").run(jobs)
        serial = BatchRunner(mode="serial").run(jobs)
        for left, right in zip(processed, serial):
            assert [q.results for q in left.queries] == [
                q.results for q in right.queries]

    def test_system_jobs_cover_all_buses(self):
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=2)
        scenario = jitter_sweep_scenario(fractions=(0.0, 0.2))
        results = BatchRunner(mode="serial").run(
            system_jobs(system, scenario))
        assert [r.session for r in results] == list(system.buses)
        for result, segment in zip(results, system.buses.values()):
            expected = _reference(BusConfiguration(
                kmatrix=segment.kmatrix, bus=segment.bus,
                error_model=segment.error_model,
                assumed_jitter_fraction=0.2,
                controllers=dict(system.controllers) or None))
            assert result.queries[-1].results == expected


class TestSessionEvaluator:
    @pytest.mark.parametrize("seed", (0, 4, 9, 13))
    def test_matches_direct_evaluation(self, seed):
        kmatrix = _matrix(seed)
        scenarios = [
            AnalysisScenario(name="lo", bus=_BUS, assumed_jitter_fraction=0.1),
            AnalysisScenario(name="hi", bus=_BUS, assumed_jitter_fraction=0.3),
            AnalysisScenario(
                name="noisy", bus=_BUS,
                error_model=SporadicErrorModel(min_interarrival=40.0),
                assumed_jitter_fraction=0.2,
                deadline_policy="min-rearrival"),
        ]
        evaluator = SessionEvaluator(kmatrix, scenarios)
        order = tuple(m.name for m in kmatrix.sorted_by_priority())
        got, context = evaluator.evaluate(order)
        want, reference_context = evaluate_configuration_with_context(
            kmatrix, scenarios)
        assert got == want
        assert context.priority_order == reference_context.priority_order
        assert context.scenario_results == reference_context.scenario_results
        # A mutated child seeded from the parent stays exact.
        child = order[1:] + order[:1]
        pool = sorted(m.can_id for m in kmatrix)
        child_matrix = kmatrix.with_priorities(dict(zip(child, pool)))
        seeded, _ = evaluator.evaluate(child, warm_start=context)
        cold, _ = evaluate_configuration_with_context(child_matrix, scenarios)
        assert seeded == cold

    def test_repeated_candidates_hit_cache(self):
        kmatrix = _matrix(2)
        scenarios = [
            AnalysisScenario(name="a", bus=_BUS, assumed_jitter_fraction=0.1),
            AnalysisScenario(name="b", bus=_BUS, assumed_jitter_fraction=0.2),
        ]
        evaluator = SessionEvaluator(kmatrix, scenarios)
        order = tuple(m.name for m in kmatrix.sorted_by_priority())
        first, _ = evaluator.evaluate(order)
        second, _ = evaluator.evaluate(order)
        assert first == second
        sessions = list(evaluator._sessions.values())
        assert sessions and all(s.cache_hits > 0 for s in sessions)


class TestScenarioRunReporting:
    def test_rows_and_describe(self):
        session = _session(7)
        scenario = jitter_sweep_scenario(fractions=(0.0, 0.3))
        run = scenario.run(session)
        rows = run.rows()
        assert len(rows) == 2
        assert rows[0][0] == "jitter 0%"
        text = run.describe()
        assert "paper-jitter-sweep" in text
        table = run.to_table()
        assert "reused" in table and "cold" in table

"""Unit tests for robustness metrics and maximum-tolerable-jitter search."""

from __future__ import annotations

import math

import pytest

from repro.analysis.schedulability import analyze_schedulability
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.sensitivity.robustness import (
    max_tolerable_jitter_fraction,
    max_tolerable_jitter_per_message,
    robustness_metrics,
)


class TestGlobalJitterBudget:
    def test_budget_is_boundary_of_feasibility(self, small_kmatrix, small_bus):
        result = max_tolerable_jitter_fraction(small_kmatrix, small_bus,
                                               upper_bound=0.9, tolerance=0.02)
        assert result.max_feasible_fraction >= 0.0
        if math.isfinite(result.first_infeasible_fraction):
            # Just below the boundary the system must be schedulable.
            ok = analyze_schedulability(
                small_kmatrix, small_bus,
                assumed_jitter_fraction=result.max_feasible_fraction)
            assert ok.all_deadlines_met
            # Just above it, it must not be.
            bad = analyze_schedulability(
                small_kmatrix, small_bus,
                assumed_jitter_fraction=result.first_infeasible_fraction)
            assert not bad.all_deadlines_met

    def test_relaxed_system_tolerates_upper_bound(self, small_bus):
        kmatrix = KMatrix(messages=[
            CanMessage(name="A", can_id=0x100, dlc=2, period=100.0, sender="E1"),
            CanMessage(name="B", can_id=0x200, dlc=2, period=100.0, sender="E2"),
        ])
        result = max_tolerable_jitter_fraction(kmatrix, small_bus,
                                               upper_bound=0.5)
        assert result.max_feasible_fraction == pytest.approx(0.5)
        assert math.isinf(result.first_infeasible_fraction)

    def test_infeasible_at_zero(self, small_bus):
        kmatrix = KMatrix(messages=[
            CanMessage(name="Blocker", can_id=0x100, dlc=8, period=1000.0,
                       sender="E1"),
            CanMessage(name="Urgent", can_id=0x200, dlc=8, period=1000.0,
                       deadline=0.3, sender="E2"),
        ])
        result = max_tolerable_jitter_fraction(kmatrix, small_bus,
                                               deadline_policy="explicit")
        assert result.max_feasible_fraction == 0.0
        assert result.first_infeasible_fraction == 0.0

    def test_describe_mentions_percent(self, small_kmatrix, small_bus):
        result = max_tolerable_jitter_fraction(small_kmatrix, small_bus,
                                               upper_bound=0.4, tolerance=0.05)
        assert "%" in result.describe()


class TestPerMessageBudgets:
    def test_budgets_cover_all_messages(self, small_kmatrix, small_bus):
        budgets = max_tolerable_jitter_per_message(
            small_kmatrix, small_bus, upper_bound=1.0, tolerance=0.05)
        assert set(budgets) == {m.name for m in small_kmatrix}
        for result in budgets.values():
            assert result.max_feasible_fraction >= 0.0

    def test_budget_feasibility_witness(self, small_kmatrix, small_bus):
        budgets = max_tolerable_jitter_per_message(
            small_kmatrix, small_bus, upper_bound=1.0, tolerance=0.05)
        # Setting one message's jitter to its budget keeps the bus schedulable.
        name, result = next(iter(budgets.items()))
        if math.isfinite(result.first_infeasible_fraction):
            probe = small_kmatrix.map_messages(
                lambda m: m.with_jitter(result.max_feasible_fraction * m.period)
                if m.name == name else m)
            report = analyze_schedulability(probe, small_bus)
            assert report.all_deadlines_met


class TestRobustnessMetrics:
    def test_metric_keys(self, small_kmatrix, small_bus):
        report = analyze_schedulability(small_kmatrix, small_bus)
        metrics = robustness_metrics(report)
        assert set(metrics) == {"loss_fraction", "total_slack_ms",
                                "worst_normalized_slack"}
        assert metrics["loss_fraction"] == 0.0
        assert metrics["total_slack_ms"] > 0.0

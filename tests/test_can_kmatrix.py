"""Unit tests for the K-Matrix container (validation, queries, CSV)."""

from __future__ import annotations

import pytest

from repro.can.kmatrix import KMatrix, KMatrixValidationError
from repro.can.message import CanMessage


class TestValidation:
    def test_duplicate_ids_rejected(self, small_kmatrix):
        with pytest.raises(KMatrixValidationError):
            small_kmatrix.add(CanMessage(name="New", can_id=0x100, dlc=1,
                                         period=10.0, sender="ECU_A"))
        assert "New" not in small_kmatrix

    def test_duplicate_names_rejected(self, small_kmatrix):
        with pytest.raises(KMatrixValidationError):
            small_kmatrix.add(CanMessage(name="FastA", can_id=0x500, dlc=1,
                                         period=10.0, sender="ECU_A"))

    def test_add_and_remove(self, small_kmatrix):
        small_kmatrix.add(CanMessage(name="New", can_id=0x500, dlc=1,
                                     period=10.0, sender="ECU_A"))
        assert "New" in small_kmatrix
        removed = small_kmatrix.remove("New")
        assert removed.can_id == 0x500
        with pytest.raises(KeyError):
            small_kmatrix.remove("New")


class TestQueries:
    def test_sorted_by_priority(self, small_kmatrix):
        names = [m.name for m in small_kmatrix.sorted_by_priority()]
        assert names == ["FastA", "FastB", "Medium", "Slow", "Background"]

    def test_sent_and_received_by(self, small_kmatrix):
        assert {m.name for m in small_kmatrix.sent_by("ECU_A")} == \
            {"FastA", "Medium", "Background"}
        assert {m.name for m in small_kmatrix.received_by("ECU_A")} == \
            {"FastB", "Slow"}

    def test_ecu_names(self, small_kmatrix):
        assert small_kmatrix.ecu_names() == ["ECU_A", "ECU_B"]

    def test_priority_partitions(self, small_kmatrix):
        medium = small_kmatrix.get("Medium")
        higher = {m.name for m in small_kmatrix.higher_priority_than(medium)}
        lower = {m.name for m in small_kmatrix.lower_priority_than(medium)}
        assert higher == {"FastA", "FastB"}
        assert lower == {"Slow", "Background"}
        assert len(higher) + len(lower) + 1 == len(small_kmatrix)

    def test_by_id_and_get(self, small_kmatrix):
        assert small_kmatrix.by_id(0x300).name == "Slow"
        with pytest.raises(KeyError):
            small_kmatrix.by_id(0x999)
        with pytest.raises(KeyError):
            small_kmatrix.get("DoesNotExist")

    def test_unknown_jitter_listing(self, small_kmatrix):
        unknown = {m.name for m in small_kmatrix.messages_with_unknown_jitter()}
        assert "Medium" not in unknown
        assert "FastA" in unknown

    def test_subset(self, small_kmatrix):
        subset = small_kmatrix.subset(["FastA", "Slow"])
        assert len(subset) == 2


class TestDerivedMatrices:
    def test_with_priorities_swaps_ids(self, small_kmatrix):
        swapped = small_kmatrix.with_priorities({"FastA": 0x300, "Slow": 0x100})
        assert swapped.get("FastA").can_id == 0x300
        assert swapped.get("Slow").can_id == 0x100
        # The original is untouched.
        assert small_kmatrix.get("FastA").can_id == 0x100

    def test_with_priorities_detects_conflicts(self, small_kmatrix):
        with pytest.raises(KMatrixValidationError):
            small_kmatrix.with_priorities({"FastA": 0x110})

    def test_with_assumed_jitters_only_fills_unknown(self, small_kmatrix):
        assumed = small_kmatrix.with_assumed_jitters(0.2)
        assert assumed.get("FastA").jitter == pytest.approx(2.0)
        assert assumed.get("Medium").jitter == pytest.approx(2.0)  # known: kept
        assert assumed.get("Slow").jitter == pytest.approx(20.0)

    def test_with_all_jitters_overrides_everything(self, small_kmatrix):
        assumed = small_kmatrix.with_all_jitters(0.1)
        assert assumed.get("Medium").jitter == pytest.approx(2.0)
        assert assumed.get("FastB").jitter == pytest.approx(1.0)

    def test_negative_fraction_rejected(self, small_kmatrix):
        with pytest.raises(ValueError):
            small_kmatrix.with_assumed_jitters(-0.1)

    def test_map_messages(self, small_kmatrix):
        doubled = small_kmatrix.map_messages(lambda m: m.with_period(m.period * 2))
        assert doubled.get("FastA").period == 20.0


class TestCsvRoundTrip:
    def test_round_trip_preserves_messages(self, small_kmatrix, tmp_path):
        path = tmp_path / "kmatrix.csv"
        small_kmatrix.to_csv(path)
        loaded = KMatrix.from_csv(path)
        assert len(loaded) == len(small_kmatrix)
        for message in small_kmatrix:
            other = loaded.get(message.name)
            assert other.can_id == message.can_id
            assert other.dlc == message.dlc
            assert other.period == pytest.approx(message.period)
            assert (other.jitter is None) == (message.jitter is None)
            assert other.receivers == message.receivers

    def test_round_trip_from_text(self, small_kmatrix):
        text = small_kmatrix.to_csv()
        loaded = KMatrix.from_csv(text)
        assert {m.name for m in loaded} == {m.name for m in small_kmatrix}

    def test_describe_lists_all_messages(self, small_kmatrix):
        text = small_kmatrix.describe()
        for message in small_kmatrix:
            assert message.name in text

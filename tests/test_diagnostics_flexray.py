"""Unit tests for diagnostics/flashing traffic and the FlexRay extension."""

from __future__ import annotations

import pytest

from repro.analysis.load import bus_load
from repro.analysis.schedulability import analyze_schedulability
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.diagnostics.traffic import (
    DiagnosticSession,
    FlashingSession,
    diagnostic_messages,
    flashing_messages,
    kmatrix_with_diagnostics,
)
from repro.flexray.analysis import analyze_static_segment, compare_with_can
from repro.flexray.schedule import FlexRayConfig, SlotAssignment, StaticSchedule, assign_slots


class TestDiagnosticsTraffic:
    def test_diagnostic_messages_structure(self):
        session = DiagnosticSession(ecu="ECU_A", request_id=0x700,
                                    response_id=0x708)
        messages = diagnostic_messages(session)
        assert len(messages) == 2
        request, response = messages
        assert request.sender == "Tester"
        assert response.sender == "ECU_A"
        assert response.event_model().is_bursty

    def test_flashing_messages_structure(self):
        session = FlashingSession(ecu="ECU_A", data_id=0x710, ack_id=0x718)
        data, ack = flashing_messages(session)
        assert data.min_distance > 0
        assert data.event_model().is_bursty
        assert ack.sender == "ECU_A"

    def test_invalid_sessions_rejected(self):
        with pytest.raises(ValueError):
            DiagnosticSession(ecu="E", request_id=1, response_id=2,
                              polling_period=0.0)
        with pytest.raises(ValueError):
            FlashingSession(ecu="E", data_id=1, ack_id=2,
                            block_size_frames=200, separation_time=1.0,
                            block_period=50.0)

    def test_added_traffic_increases_load(self, small_kmatrix, small_bus):
        base_load = bus_load(small_kmatrix, small_bus).utilization
        extended = kmatrix_with_diagnostics(
            small_kmatrix,
            diagnostic_sessions=[DiagnosticSession(ecu="ECU_A",
                                                   request_id=0x700,
                                                   response_id=0x708)],
            flashing_sessions=[FlashingSession(ecu="ECU_B", data_id=0x710,
                                               ack_id=0x718)])
        assert len(extended) == len(small_kmatrix) + 4
        assert bus_load(extended, small_bus).utilization > base_load
        # Production messages keep their identifiers.
        assert extended.get("FastA").can_id == small_kmatrix.get("FastA").can_id

    def test_low_priority_diagnostics_do_not_break_production(self,
                                                              small_kmatrix,
                                                              small_bus):
        extended = kmatrix_with_diagnostics(
            small_kmatrix,
            flashing_sessions=[FlashingSession(ecu="ECU_B", data_id=0x710,
                                               ack_id=0x718)])
        report = analyze_schedulability(extended, small_bus)
        production = [v for v in report.verdicts
                      if v.name in {m.name for m in small_kmatrix}]
        assert all(v.meets_deadline for v in production)


class TestFlexRaySchedule:
    def test_greedy_assignment_places_all_messages(self, small_kmatrix):
        schedule = assign_slots(small_kmatrix)
        assert set(schedule.assignments) == {m.name for m in small_kmatrix}

    def test_effective_period_not_exceeding_message_period(self, small_kmatrix):
        schedule = assign_slots(small_kmatrix)
        for message in small_kmatrix:
            assert schedule.effective_period(message.name) <= message.period + 1e-9

    def test_collision_detection(self):
        schedule = StaticSchedule(config=FlexRayConfig())
        schedule.add(SlotAssignment(message="A", slot=1, base_cycle=0,
                                    cycle_repetition=2))
        with pytest.raises(ValueError):
            schedule.add(SlotAssignment(message="B", slot=1, base_cycle=0,
                                        cycle_repetition=4))
        # The other base cycle is free.
        schedule.add(SlotAssignment(message="C", slot=1, base_cycle=1,
                                    cycle_repetition=2))

    def test_invalid_assignments_rejected(self):
        schedule = StaticSchedule(config=FlexRayConfig(static_slots=4))
        with pytest.raises(ValueError):
            schedule.add(SlotAssignment(message="A", slot=9, base_cycle=0,
                                        cycle_repetition=1))
        with pytest.raises(ValueError):
            schedule.add(SlotAssignment(message="A", slot=1, base_cycle=0,
                                        cycle_repetition=3))

    def test_exhaustion_raises(self):
        config = FlexRayConfig(static_slots=1, cycle_length=5.0,
                               slot_length=0.05, max_cycle_repetition=1)
        messages = KMatrix(messages=[
            CanMessage(name=f"M{i}", can_id=0x100 + i, dlc=8, period=5.0,
                       sender="E1")
            for i in range(3)
        ])
        with pytest.raises(ValueError):
            assign_slots(messages, config)

    def test_utilization(self, small_kmatrix):
        schedule = assign_slots(small_kmatrix)
        assert 0.0 < schedule.utilization() <= 1.0


class TestFlexRayAnalysis:
    def test_latency_bounds(self, small_kmatrix):
        timings = analyze_static_segment(small_kmatrix)
        for message in small_kmatrix:
            timing = timings[message.name]
            assert timing.best_case > 0
            assert timing.worst_case >= timing.effective_period
            assert timing.jitter >= 0

    def test_jitter_increases_worst_case(self, small_kmatrix):
        calm = analyze_static_segment(small_kmatrix,
                                      assumed_jitter_fraction=0.0)
        jittery = analyze_static_segment(small_kmatrix,
                                         assumed_jitter_fraction=0.3)
        for name in calm:
            assert jittery[name].worst_case >= calm[name].worst_case

    def test_comparison_with_can_shows_crossover_tendency(self, small_kmatrix,
                                                          small_bus):
        rows = compare_with_can(small_kmatrix, small_bus)
        assert len(rows) == len(small_kmatrix)
        by_name = {name: (can, flexray) for name, can, flexray in rows}
        # The highest-priority CAN message beats its FlexRay latency ...
        top = small_kmatrix.sorted_by_priority()[0].name
        assert by_name[top][0] < by_name[top][1]

"""Smoke tests for the top-level public API exported by ``repro``."""

from __future__ import annotations

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_quickstart_snippet_from_readme(self):
        kmatrix, bus, controllers = repro.powertrain_system()
        report = repro.analyze_schedulability(kmatrix, bus,
                                              controllers=controllers)
        assert report.all_deadlines_met
        load = repro.bus_load(kmatrix, bus)
        assert 0.0 < load.utilization < 1.0

    def test_loss_fraction_wrapper(self):
        kmatrix, bus, controllers = repro.powertrain_system()
        loss = repro.message_loss_fraction(kmatrix, bus, 0.1,
                                           controllers=controllers)
        assert 0.0 <= loss <= 1.0

    def test_single_message_analysis_wrapper(self):
        kmatrix, bus, _controllers = repro.powertrain_system()
        message = kmatrix.sorted_by_priority()[0]
        result = repro.worst_case_response_time(message, kmatrix, bus)
        assert result.worst_case >= result.transmission_time

    def test_service_and_server_types_are_exported(self):
        for name in ("AnalysisSession", "SessionStats", "BusConfiguration",
                     "EventModelDelta", "AnalysisDaemon", "SessionPool",
                     "InProcessClient", "TcpClient", "DaemonServer",
                     "DaemonError", "start_server"):
            assert name in repro.__all__, f"{name} missing from __all__"
            assert hasattr(repro, name)

    def test_monitor_and_sim_types_are_exported(self):
        for name in ("ConformanceMonitor", "MonitorConfig", "AlertRule",
                     "AlertEngine", "Alert", "ObservedFrame",
                     "ViolationRecord", "IngestReport", "frames_from_trace",
                     "inject_jitter_burst", "Simulator", "CanBusSimulator",
                     "SimulationConfig", "SimulationTrace",
                     "TransmissionRecord", "EmpiricalEventTrace",
                     "fit_periodic_jitter", "MetricsHistory",
                     "UnknownMessageError", "NeverSentError"):
            assert name in repro.__all__, f"{name} missing from __all__"
            assert hasattr(repro, name)
        assert repro.Simulator is repro.CanBusSimulator

    def test_daemon_quickstart_via_public_api(self):
        kmatrix, bus, controllers = repro.powertrain_system()
        daemon = repro.AnalysisDaemon(name="api-smoke")
        daemon.add_config("case-study", repro.BusConfiguration(
            kmatrix=kmatrix, bus=bus, assumed_jitter_fraction=0.15,
            controllers=controllers))
        client = repro.InProcessClient(daemon)
        response = client.query("case-study",
                                (repro.JitterDelta(fraction=0.2),))
        direct = repro.CanBusAnalysis(
            kmatrix, bus, assumed_jitter_fraction=0.2,
            controllers=controllers).analyze_all()
        for name, entry in response["results"].items():
            assert entry["worst_case"] == direct[name].worst_case
        daemon.close()

"""Property-based equivalence: optimised kernel vs retained reference path.

The cached/warm-started analysis kernel of
:mod:`repro.analysis.response_time` must return results **identical** (not
just close) to the naive formulation retained in
:mod:`repro.analysis.reference` -- same float summation order, same fixed
points, bit for bit.  These tests sweep many structurally different
synthetic K-Matrices (:func:`repro.workloads.scaling.synthetic_kmatrix`
seeds, mirroring a hypothesis-style generator with a fixed corpus so CI is
deterministic) and compare full result objects with ``==``.
"""

from __future__ import annotations

import pytest

from repro.analysis.backend import (
    BACKEND_ENV,
    HAVE_NUMPY,
    available_backends,
    resolve_backend,
)
from repro.analysis.reference import ReferenceCanBusAnalysis
from repro.analysis.response_time import CanBusAnalysis
from repro.can.bus import CanBus
from repro.errors.models import BurstErrorModel, SporadicErrorModel
from repro.optimize.genetic import GeneticOptimizerConfig, optimize_priorities
from repro.optimize.objectives import (
    AnalysisScenario,
    evaluate_configuration,
    evaluate_configuration_with_context,
)
from repro.parallel import parallel_map, resolve_mode
from repro.sensitivity.jitter import jitter_sensitivity, jitter_sensitivity_all
from repro.workloads.scaling import scaling_benchmark_case, synthetic_kmatrix

#: Synthetic K-Matrix corpus: >= 20 seeds with varying shape and id policy.
SEEDS = tuple(range(24))

_BUS = CanBus(name="equiv", bit_rate_bps=250_000.0)


def _matrix(seed: int):
    return synthetic_kmatrix(
        n_messages=10 + seed % 7,
        n_ecus=3 + seed % 4,
        seed=seed,
        id_policy=("block", "rate-monotonic", "random")[seed % 3],
        known_jitter_probability=0.3,
    )


def _error_model(seed: int):
    if seed % 3 == 0:
        return None
    if seed % 3 == 1:
        return SporadicErrorModel(min_interarrival=25.0)
    return BurstErrorModel(min_interarrival=60.0, burst_length=3,
                           intra_burst_gap=0.5)


class TestAnalyzeAllEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cold_analysis_identical(self, seed):
        kmatrix = _matrix(seed)
        fraction = (seed % 5) * 0.1
        kwargs = dict(error_model=_error_model(seed),
                      assumed_jitter_fraction=fraction)
        fast = CanBusAnalysis(kmatrix, _BUS, **kwargs).analyze_all()
        slow = ReferenceCanBusAnalysis(kmatrix, _BUS, **kwargs).analyze_all()
        assert fast == slow

    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_start_identical_to_cold(self, seed):
        """Ascending-jitter warm starts converge to the same fixed points."""
        kmatrix = _matrix(seed)
        previous = None
        for fraction in (0.0, 0.1, 0.25, 0.4, 0.6):
            analysis = CanBusAnalysis(
                kmatrix, _BUS, assumed_jitter_fraction=fraction)
            warm = analysis.analyze_all(warm_start=previous)
            cold = CanBusAnalysis(
                kmatrix, _BUS, assumed_jitter_fraction=fraction).analyze_all()
            assert warm == cold
            previous = warm

    def test_scaling_case_identical(self):
        kmatrix, bus = scaling_benchmark_case(100)
        assert (CanBusAnalysis(kmatrix, bus).analyze_all()
                == ReferenceCanBusAnalysis(kmatrix, bus).analyze_all())


class TestBackendEquivalence:
    """The numpy batch kernel vs the scalar loops vs the reference spec."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_backends_bit_identical(self, seed):
        kmatrix = _matrix(seed)
        kwargs = dict(error_model=_error_model(seed),
                      assumed_jitter_fraction=(seed % 5) * 0.1)
        per_backend = {
            backend: CanBusAnalysis(
                kmatrix, _BUS, backend=backend, **kwargs).analyze_all()
            for backend in available_backends()
        }
        reference = ReferenceCanBusAnalysis(
            kmatrix, _BUS, **kwargs).analyze_all()
        for backend, results in per_backend.items():
            assert results == reference, backend

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_warm_start_identical(self, seed):
        """Ascending-jitter seeds through the batched pass stay exact."""
        kmatrix = _matrix(seed)
        previous = None
        for fraction in (0.0, 0.2, 0.45):
            analysis = CanBusAnalysis(
                kmatrix, _BUS, assumed_jitter_fraction=fraction,
                backend="numpy")
            warm = analysis.response_times_batch(
                [(m, previous.get(m.name) if previous is not None else None)
                 for m in kmatrix])
            cold = CanBusAnalysis(
                kmatrix, _BUS, assumed_jitter_fraction=fraction,
                backend="scalar").analyze_all()
            assert warm == cold
            previous = warm

    @pytest.mark.parametrize("seed", (0, 7, 14))
    def test_batch_matches_single_message_calls(self, seed):
        kmatrix = _matrix(seed)
        kwargs = dict(error_model=_error_model(seed + 1),
                      assumed_jitter_fraction=0.2)
        batch_analysis = CanBusAnalysis(
            kmatrix, _BUS, backend="numpy", **kwargs)
        single_analysis = CanBusAnalysis(
            kmatrix, _BUS, backend="scalar", **kwargs)
        singles = {m.name: single_analysis.response_time(m) for m in kmatrix}
        batched = batch_analysis.response_times_batch(
            [(m, None) for m in kmatrix])
        assert batched == singles
        # Seeding every message from its own converged result must
        # reproduce it (the fixed point is already reached).
        reseeded = batch_analysis.response_times_batch(
            [(m, singles[m.name]) for m in kmatrix])
        assert reseeded == singles

    def test_unbounded_results_identical(self):
        """An overloaded bus diverges identically on every backend."""
        kmatrix = _matrix(4)
        slow_bus = CanBus(name="overload", bit_rate_bps=9_600.0)
        outcomes = {
            backend: CanBusAnalysis(
                kmatrix, slow_bus, backend=backend).analyze_all()
            for backend in available_backends()
        }
        reference = ReferenceCanBusAnalysis(kmatrix, slow_bus).analyze_all()
        assert any(not r.bounded for r in reference.values())
        for backend, results in outcomes.items():
            assert results == reference, backend

    def test_subset_batch_preserves_item_order(self):
        kmatrix = _matrix(6)
        subset = list(kmatrix)[::-2]
        analysis = CanBusAnalysis(kmatrix, _BUS)
        results = analysis.response_times_batch(
            [(m, None) for m in subset])
        assert list(results) == [m.name for m in subset]
        full = CanBusAnalysis(kmatrix, _BUS, backend="scalar").analyze_all()
        for message in subset:
            assert results[message.name] == full[message.name]

    def test_resolution_rules(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        expected_auto = "numpy" if HAVE_NUMPY else "scalar"
        assert resolve_backend(None) == expected_auto
        assert resolve_backend("auto") == expected_auto
        assert resolve_backend("scalar") == "scalar"
        monkeypatch.setenv(BACKEND_ENV, "scalar")
        assert resolve_backend(None) == "scalar"
        assert CanBusAnalysis(_matrix(0), _BUS).backend == "scalar"
        with pytest.raises(ValueError):
            resolve_backend("warp")

    def test_env_pinned_backend_still_identical(self, monkeypatch):
        kmatrix = _matrix(9)
        monkeypatch.setenv(BACKEND_ENV, "scalar")
        pinned = CanBusAnalysis(kmatrix, _BUS).analyze_all()
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert pinned == CanBusAnalysis(kmatrix, _BUS).analyze_all()

    def test_session_backend_pinning_identical(self):
        """What-if sessions return the same bits on every backend."""
        from repro.service import AnalysisSession, JitterDelta

        kmatrix = _matrix(11)
        deltas = (JitterDelta(fraction=0.3),)
        outcomes = []
        for backend in available_backends():
            session = AnalysisSession(kmatrix, _BUS, backend=backend)
            base = session.analyze().results
            warm = session.query(deltas).results
            outcomes.append((base, warm))
        assert all(outcome == outcomes[0] for outcome in outcomes)

    @pytest.mark.parametrize("backend", ("numpy", "scalar"))
    def test_ga_backend_seam_identical(self, backend):
        kmatrix = _matrix(13)
        scenarios = _scenarios(13)
        config = dict(population_size=4, archive_size=2, generations=1,
                      seed=13)
        pinned = optimize_priorities(
            kmatrix, scenarios,
            GeneticOptimizerConfig(**config, analysis_backend=backend))
        default = optimize_priorities(kmatrix, scenarios,
                                      GeneticOptimizerConfig(**config))
        assert pinned.best_evaluation == default.best_evaluation
        assert pinned.history == default.history
        assert pinned.evaluations == default.evaluations


class TestSensitivityEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sweep_matches_reference_points(self, seed):
        kmatrix = _matrix(seed)
        fractions = (0.0, 0.15, 0.3, 0.45)
        curves = jitter_sensitivity_all(kmatrix, _BUS,
                                        jitter_fractions=fractions)
        for index, fraction in enumerate(fractions):
            reference = ReferenceCanBusAnalysis(
                kmatrix, _BUS, assumed_jitter_fraction=fraction).analyze_all()
            for message in kmatrix:
                assert (curves[message.name].response_times[index]
                        == reference[message.name].worst_case)

    def test_single_message_delegates_to_shared_sweep(self):
        kmatrix = _matrix(3)
        name = kmatrix.messages[0].name
        single = jitter_sensitivity(name, kmatrix, _BUS)
        shared = jitter_sensitivity_all(kmatrix, _BUS)[name]
        assert single == shared

    def test_unsorted_fractions_keep_caller_order(self):
        kmatrix = _matrix(5)
        fractions = (0.3, 0.0, 0.6, 0.15)
        curves = jitter_sensitivity_all(kmatrix, _BUS,
                                        jitter_fractions=fractions)
        sorted_curves = jitter_sensitivity_all(
            kmatrix, _BUS, jitter_fractions=tuple(sorted(fractions)))
        for name, curve in curves.items():
            assert curve.jitter_fractions == fractions
            lookup = dict(zip(sorted_curves[name].jitter_fractions,
                              sorted_curves[name].response_times))
            assert curve.response_times == tuple(
                lookup[f] for f in fractions)


def _scenarios(seed: int) -> list[AnalysisScenario]:
    return [
        AnalysisScenario(name="lo", bus=_BUS, assumed_jitter_fraction=0.1),
        AnalysisScenario(name="hi", bus=_BUS, assumed_jitter_fraction=0.3),
        AnalysisScenario(
            name="noisy", bus=_BUS,
            error_model=SporadicErrorModel(min_interarrival=40.0),
            assumed_jitter_fraction=0.2, deadline_policy="min-rearrival"),
    ]


class TestOptimizerEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_objective_values_identical(self, seed):
        """Kernel (chained + parent-seeded) == reference objective vector."""
        kmatrix = _matrix(seed)
        scenarios = _scenarios(seed)
        fast, context = evaluate_configuration_with_context(
            kmatrix, scenarios)
        slow, _ = evaluate_configuration_with_context(
            kmatrix, scenarios, backend="reference")
        assert fast == slow
        # Parent seeding from a *different* candidate must stay exact: demote
        # the highest-priority message to the back, seed from the original.
        order = context.priority_order
        child_order = order[1:] + order[:1]
        pool = sorted(m.can_id for m in kmatrix)
        child = kmatrix.with_priorities(
            dict(zip(child_order, pool)))
        seeded, _ = evaluate_configuration_with_context(
            child, scenarios, warm_start=context)
        cold = evaluate_configuration(child, scenarios)
        assert seeded == cold

    @pytest.mark.parametrize("seed", (0, 5, 11, 17, 23))
    def test_ga_runs_identical(self, seed):
        kmatrix = _matrix(seed)
        scenarios = _scenarios(seed)
        config = dict(population_size=6, archive_size=3, generations=2,
                      seed=seed)
        fast = optimize_priorities(kmatrix, scenarios,
                                   GeneticOptimizerConfig(**config))
        slow = optimize_priorities(
            kmatrix, scenarios,
            GeneticOptimizerConfig(**config, analysis_backend="reference"))
        assert fast.best_evaluation == slow.best_evaluation
        assert fast.original_evaluation == slow.original_evaluation
        assert fast.history == slow.history
        assert fast.evaluations == slow.evaluations
        assert ([m.can_id for m in fast.best_kmatrix]
                == [m.can_id for m in slow.best_kmatrix])


class TestParallelHelper:
    def test_serial_and_thread_modes_agree(self):
        items = list(range(20))
        fn = lambda x: x * x  # noqa: E731
        assert (parallel_map(fn, items, mode="serial")
                == parallel_map(fn, items, mode="thread")
                == [x * x for x in items])

    def test_order_preserved_with_uneven_work(self):
        def work(n):
            total = 0
            for i in range((20 - n) * 500):
                total += i
            return n
        assert parallel_map(work, list(range(20)), mode="thread") == list(range(20))

    def test_exceptions_propagate(self):
        def boom(n):
            if n == 3:
                raise ValueError("n=3")
            return n
        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2, 3, 4], mode="thread")

    def test_resolve_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_mode("serial", 10) == "serial"
        assert resolve_mode("thread", 1) == "serial"
        with pytest.raises(ValueError):
            resolve_mode("warp", 4)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "serial")
        assert resolve_mode("thread", 10) == "serial"

    def test_parallel_analysis_matches_serial(self, monkeypatch):
        """Thread-parallel segment analysis returns bit-identical results."""
        kmatrix = _matrix(7)
        jobs = [0.0, 0.1, 0.2, 0.3]

        def analyze(fraction):
            return CanBusAnalysis(
                kmatrix, _BUS, assumed_jitter_fraction=fraction).analyze_all()

        monkeypatch.setenv("REPRO_PARALLEL", "thread")
        threaded = parallel_map(analyze, jobs)
        monkeypatch.setenv("REPRO_PARALLEL", "serial")
        serial = parallel_map(analyze, jobs)
        assert threaded == serial

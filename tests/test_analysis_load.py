"""Unit tests for the bus-load (utilization) analysis."""

from __future__ import annotations

import pytest

from repro.analysis.load import abstract_load_from_rates, bus_load
from repro.can.bus import CanBus
from repro.can.message import CanMessage
from repro.workloads.figure1 import (
    FIGURE1_BANDWIDTH_BPS,
    figure1_network,
    figure1_traffic_rates,
)


class TestAbstractLoad:
    def test_figure1_example_is_36_percent(self):
        report = abstract_load_from_rates(figure1_traffic_rates(),
                                          FIGURE1_BANDWIDTH_BPS)
        assert report.total_bits_per_second == pytest.approx(180_000.0)
        assert report.utilization_percent == pytest.approx(36.0)

    def test_per_ecu_breakdown(self):
        report = abstract_load_from_rates(figure1_traffic_rates(),
                                          FIGURE1_BANDWIDTH_BPS)
        per_ecu = report.per_ecu()
        assert per_ecu["ECU3"] == pytest.approx(100_000.0)
        assert sum(per_ecu.values()) == pytest.approx(180_000.0)

    def test_limit_check(self):
        report = abstract_load_from_rates(figure1_traffic_rates(),
                                          FIGURE1_BANDWIDTH_BPS)
        assert not report.exceeds(0.40)
        assert report.exceeds(0.30)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            abstract_load_from_rates({"E": 1000.0}, 0.0)


class TestKMatrixLoad:
    def test_manual_utilization_matches(self, small_kmatrix, small_bus):
        report = bus_load(small_kmatrix, small_bus)
        expected = sum(
            small_bus.transmission_time(m) / m.period for m in small_kmatrix)
        assert report.utilization == pytest.approx(expected)

    def test_stuffing_override_increases_load(self, small_kmatrix, small_bus):
        plain = bus_load(small_kmatrix, small_bus, include_stuffing=False)
        stuffed = bus_load(small_kmatrix, small_bus, include_stuffing=True)
        assert stuffed.utilization > plain.utilization

    def test_per_message_shares_sum_to_total(self, small_kmatrix, small_bus):
        report = bus_load(small_kmatrix, small_bus)
        assert sum(s.bits_per_second for s in report.per_message) == \
            pytest.approx(report.total_bits_per_second)
        assert sum(s.utilization for s in report.per_message) == \
            pytest.approx(report.utilization)

    def test_headroom_estimate(self, small_kmatrix, small_bus):
        report = bus_load(small_kmatrix, small_bus)
        template = CanMessage(name="Extra", can_id=0x700, dlc=8, period=10.0,
                              sender="ECU_C")
        headroom = report.headroom_messages(template, small_bus,
                                            limit_fraction=0.6)
        assert headroom > 0
        # Adding that many messages must not exceed the limit.
        extra_util = headroom * small_bus.transmission_time(template) / 10.0
        assert report.utilization + extra_util <= 0.6 + 1e-9

    def test_headroom_zero_when_already_over_limit(self, small_kmatrix, small_bus):
        report = bus_load(small_kmatrix, small_bus)
        template = CanMessage(name="Extra", can_id=0x700, dlc=8, period=10.0,
                              sender="ECU_C")
        assert report.headroom_messages(template, small_bus,
                                        limit_fraction=0.001) == 0

    def test_describe_mentions_utilization(self, small_kmatrix, small_bus):
        text = bus_load(small_kmatrix, small_bus).describe()
        assert "%" in text and "ECU_A" in text


class TestFigure1Network:
    def test_concrete_network_load_matches_figure(self):
        kmatrix, bus = figure1_network()
        report = bus_load(kmatrix, bus)
        # The concrete realisation approximates the 36 % of the figure.
        assert report.utilization_percent == pytest.approx(36.0, abs=1.5)

    def test_four_ecus_present(self):
        kmatrix, _bus = figure1_network()
        assert len(kmatrix.senders()) == 4

    def test_load_says_nothing_about_deadlines(self):
        """The paper's point: moderate load does not imply schedulability.

        A single low-priority message with a deadline shorter than one frame
        transmission time misses its deadline even on an almost idle bus.
        """
        from repro.analysis.schedulability import analyze_schedulability
        from repro.can.kmatrix import KMatrix
        messages = KMatrix(messages=[
            CanMessage(name="Blocker", can_id=0x100, dlc=8, period=1000.0,
                       sender="E1"),
            CanMessage(name="Urgent", can_id=0x200, dlc=8, period=1000.0,
                       deadline=0.3, sender="E2"),
        ])
        bus = CanBus(name="idle", bit_rate_bps=500_000.0)
        load = bus_load(messages, bus)
        assert load.utilization < 0.01
        report = analyze_schedulability(messages, bus,
                                        deadline_policy="explicit")
        assert not report.all_deadlines_met

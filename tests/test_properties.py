"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.can.bus import CanBus
from repro.can.frame import (
    CanFrameFormat,
    frame_bits_without_stuffing,
    max_stuff_bits,
    worst_case_frame_bits,
)
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import BurstErrorModel, SporadicErrorModel
from repro.events.model import event_model_from_parameters
from repro.events.operations import add_jitter, is_refinement, output_event_model


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
periods = st.floats(min_value=1.0, max_value=1000.0, allow_nan=False,
                    allow_infinity=False)
jitters = st.floats(min_value=0.0, max_value=500.0, allow_nan=False,
                    allow_infinity=False)
windows = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False,
                    allow_infinity=False)
payloads = st.integers(min_value=0, max_value=8)


@st.composite
def event_models(draw):
    period = draw(periods)
    jitter = draw(jitters)
    min_distance = 0.0
    if jitter > period:
        min_distance = draw(st.floats(min_value=0.01, max_value=period))
    return event_model_from_parameters(period=period, jitter=jitter,
                                       min_distance=min_distance)


@st.composite
def kmatrices(draw):
    count = draw(st.integers(min_value=2, max_value=10))
    period_pool = [5.0, 10.0, 20.0, 50.0, 100.0, 500.0]
    messages = []
    for index in range(count):
        messages.append(CanMessage(
            name=f"M{index}",
            can_id=0x100 + index,
            dlc=draw(payloads),
            period=draw(st.sampled_from(period_pool)),
            jitter=draw(st.one_of(st.none(),
                                  st.floats(min_value=0.0, max_value=4.0))),
            sender=f"E{index % 3}",
        ))
    return KMatrix(messages=messages)


# --------------------------------------------------------------------------- #
# Event-model calculus
# --------------------------------------------------------------------------- #
class TestEventModelProperties:
    @given(model=event_models(), dt=windows)
    def test_eta_bounds_ordered(self, model, dt):
        assert model.eta_minus(dt) <= model.eta_plus(dt)

    @given(model=event_models(), dt1=windows, dt2=windows)
    def test_eta_plus_monotone(self, model, dt1, dt2):
        lo, hi = sorted((dt1, dt2))
        assert model.eta_plus(lo) <= model.eta_plus(hi)

    @given(model=event_models(), dt1=windows, dt2=windows)
    def test_eta_plus_subadditive(self, model, dt1, dt2):
        """eta+(a+b) <= eta+(a) + eta+(b): windows can be split."""
        assert model.eta_plus(dt1 + dt2) <= \
            model.eta_plus(dt1) + model.eta_plus(dt2)

    @given(model=event_models(), n=st.integers(min_value=2, max_value=20))
    def test_delta_ordered_and_pseudo_inverse(self, model, n):
        assert model.delta_minus(n) <= model.delta_plus(n)
        # n events fit in a window slightly larger than delta_minus(n).
        assert model.eta_plus(model.delta_minus(n) + 1e-6) >= n

    @given(model=event_models(), extra=st.floats(min_value=0.0, max_value=100.0))
    def test_add_jitter_only_loosens(self, model, extra):
        loosened = add_jitter(model, extra, min_distance=min(
            model.min_distance or model.period, model.period) if extra else None)
        assert loosened.jitter >= model.jitter
        # The original stream always satisfies the loosened bound.
        for dt in (0.5 * model.period, model.period, 3 * model.period):
            assert loosened.eta_plus(dt) >= model.eta_plus(dt)

    @given(model=event_models(), best=st.floats(min_value=0.0, max_value=10.0),
           width=st.floats(min_value=0.0, max_value=10.0))
    def test_output_model_refines_backwards(self, model, best, width):
        out = output_event_model(model, best, best + width)
        assert out.period == model.period
        assert out.jitter >= model.jitter
        assert is_refinement(model, out) or model.min_distance > 0


# --------------------------------------------------------------------------- #
# CAN frames
# --------------------------------------------------------------------------- #
class TestFrameProperties:
    @given(payload=payloads,
           fmt=st.sampled_from(list(CanFrameFormat)))
    def test_stuffing_bounded_by_quarter(self, payload, fmt):
        base = frame_bits_without_stuffing(payload, fmt)
        stuffed = worst_case_frame_bits(payload, fmt)
        assert base <= stuffed <= base + (base // 4) + 1
        assert max_stuff_bits(payload, fmt) >= 0

    @given(payload=payloads, rate=st.sampled_from([125_000.0, 250_000.0,
                                                   500_000.0, 1_000_000.0]))
    def test_transmission_time_positive_and_bounded(self, payload, rate):
        bus = CanBus(name="b", bit_rate_bps=rate)
        message = CanMessage(name="M", can_id=1, dlc=payload, period=10.0,
                             sender="E")
        wc = bus.transmission_time(message)
        bc = bus.best_case_transmission_time(message)
        assert 0 < bc <= wc
        # A frame is at most 160 bits even with worst-case stuffing.
        assert wc <= 160 / rate * 1000.0


# --------------------------------------------------------------------------- #
# Error models
# --------------------------------------------------------------------------- #
class TestErrorModelProperties:
    @given(interarrival=st.floats(min_value=0.5, max_value=1000.0),
           t1=windows, t2=windows)
    def test_sporadic_monotone_and_subadditive(self, interarrival, t1, t2):
        model = SporadicErrorModel(min_interarrival=interarrival)
        lo, hi = sorted((t1, t2))
        assert model.errors_in(lo) <= model.errors_in(hi)
        assert model.overhead(lo, 0.062, 0.27) <= model.overhead(hi, 0.062, 0.27)

    @given(interarrival=st.floats(min_value=5.0, max_value=1000.0),
           burst=st.integers(min_value=1, max_value=5),
           t=windows)
    def test_burst_at_least_sporadic(self, interarrival, burst, t):
        gap = min(0.5, interarrival / (burst + 1) / 2)
        burst_model = BurstErrorModel(min_interarrival=interarrival,
                                      burst_length=burst, intra_burst_gap=gap)
        sporadic = SporadicErrorModel(min_interarrival=interarrival)
        assert burst_model.errors_in(t) >= sporadic.errors_in(t)


# --------------------------------------------------------------------------- #
# Response-time analysis invariants on random K-Matrices
# --------------------------------------------------------------------------- #
class TestAnalysisProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kmatrix=kmatrices())
    def test_response_times_bounded_below_by_transmission(self, kmatrix):
        from repro.analysis.response_time import CanBusAnalysis
        bus = CanBus(name="b", bit_rate_bps=500_000.0)
        analysis = CanBusAnalysis(kmatrix, bus)
        for message in kmatrix:
            result = analysis.response_time(message)
            assert result.worst_case >= result.transmission_time - 1e-9
            assert result.worst_case >= result.best_case - 1e-9

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kmatrix=kmatrices(),
           fractions=st.tuples(
               st.floats(min_value=0.0, max_value=0.3),
               st.floats(min_value=0.3, max_value=0.8)))
    def test_loss_fraction_monotone_in_jitter(self, kmatrix, fractions):
        from repro.analysis.schedulability import analyze_schedulability
        bus = CanBus(name="b", bit_rate_bps=500_000.0)
        lo, hi = fractions
        low = analyze_schedulability(kmatrix, bus, assumed_jitter_fraction=lo,
                                     deadline_policy="min-rearrival")
        high = analyze_schedulability(kmatrix, bus, assumed_jitter_fraction=hi,
                                      deadline_policy="min-rearrival")
        assert high.loss_fraction >= low.loss_fraction - 1e-9

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kmatrix=kmatrices())
    def test_priority_permutation_preserves_id_pool(self, kmatrix):
        from repro.optimize.assignment import rate_monotonic_assignment
        optimized = rate_monotonic_assignment(kmatrix)
        assert sorted(m.can_id for m in optimized) == \
            sorted(m.can_id for m in kmatrix)
        assert {m.name for m in optimized} == {m.name for m in kmatrix}

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kmatrix=kmatrices())
    def test_csv_round_trip(self, kmatrix):
        loaded = KMatrix.from_csv(kmatrix.to_csv())
        assert {m.name for m in loaded} == {m.name for m in kmatrix}
        for message in kmatrix:
            other = loaded.get(message.name)
            assert other.can_id == message.can_id
            assert abs(other.period - message.period) < 1e-6

"""Unit tests for bus configuration and controller models."""

from __future__ import annotations

import pytest

from repro.can.bus import CanBus
from repro.can.controller import (
    CanControllerType,
    ControllerModel,
    default_controllers,
    mixed_controllers,
)


class TestCanBus:
    def test_transmission_times(self, small_bus, small_kmatrix):
        fast = small_kmatrix.get("FastA")          # 8 bytes
        background = small_kmatrix.get("Background")  # 2 bytes
        assert small_bus.transmission_time(fast) == pytest.approx(0.27)
        assert small_bus.transmission_time(background) < \
            small_bus.transmission_time(fast)
        assert small_bus.best_case_transmission_time(fast) == pytest.approx(0.222)

    def test_bit_time(self, small_bus):
        assert small_bus.bit_time_ms == pytest.approx(0.002)

    def test_with_bit_stuffing_copy(self, small_bus, small_kmatrix):
        plain = small_bus.with_bit_stuffing(False)
        fast = small_kmatrix.get("FastA")
        assert plain.transmission_time(fast) == pytest.approx(0.222)
        assert small_bus.bit_stuffing is True  # original unchanged

    def test_with_bit_rate_copy(self, small_bus):
        slower = small_bus.with_bit_rate(125_000.0)
        assert slower.bit_time_ms == pytest.approx(0.008)

    def test_invalid_bit_rate(self):
        with pytest.raises(ValueError):
            CanBus(name="bad", bit_rate_bps=0.0)

    def test_describe(self, small_bus):
        assert "500" in small_bus.describe()


class TestControllerModel:
    def test_fullcan_adds_no_internal_blocking(self):
        controller = ControllerModel(controller_type=CanControllerType.FULL)
        blocking = controller.internal_blocking("A", {"B": 0.27, "C": 0.13})
        assert blocking == 0.0

    def test_basiccan_adds_one_frame(self):
        controller = ControllerModel(controller_type=CanControllerType.BASIC)
        blocking = controller.internal_blocking("A", {"B": 0.27, "C": 0.13})
        assert blocking == pytest.approx(0.27)

    def test_basiccan_with_abort_behaves_like_fullcan(self):
        controller = ControllerModel(controller_type=CanControllerType.BASIC,
                                     abort_on_higher_priority=True)
        assert controller.internal_blocking("A", {"B": 0.27}) == 0.0
        assert controller.preserves_priority_order

    def test_fifo_queue_adds_multiple_frames(self):
        controller = ControllerModel(controller_type=CanControllerType.QUEUED_FIFO,
                                     tx_buffers=3)
        blocking = controller.internal_blocking(
            "A", {"B": 0.27, "C": 0.25, "D": 0.10})
        assert blocking == pytest.approx(0.52)

    def test_message_itself_is_ignored(self):
        controller = ControllerModel(controller_type=CanControllerType.BASIC)
        assert controller.internal_blocking("A", {"A": 0.27}) == 0.0

    def test_invalid_buffer_count(self):
        with pytest.raises(ValueError):
            ControllerModel(tx_buffers=0)


class TestControllerFactories:
    def test_default_controllers(self):
        controllers = default_controllers(["E1", "E2"])
        assert set(controllers) == {"E1", "E2"}
        assert all(c.controller_type == CanControllerType.FULL
                   for c in controllers.values())

    def test_mixed_controllers(self):
        controllers = mixed_controllers(
            {"GW": CanControllerType.BASIC}, ecu_names=["E1", "GW"])
        assert controllers["GW"].controller_type == CanControllerType.BASIC
        assert controllers["E1"].controller_type == CanControllerType.FULL


class TestControllerEffectOnAnalysis:
    def test_basiccan_increases_response_time(self, small_kmatrix, small_bus):
        from repro.analysis.response_time import CanBusAnalysis
        full = CanBusAnalysis(small_kmatrix, small_bus, controllers={
            "ECU_A": ControllerModel(controller_type=CanControllerType.FULL)})
        basic = CanBusAnalysis(small_kmatrix, small_bus, controllers={
            "ECU_A": ControllerModel(controller_type=CanControllerType.BASIC)})
        message = small_kmatrix.get("FastA")  # ECU_A also sends lower-priority
        assert basic.response_time(message).worst_case >= \
            full.response_time(message).worst_case

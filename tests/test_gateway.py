"""Unit tests for the gateway substrate."""

from __future__ import annotations

import math

import pytest

from repro.events.model import PeriodicWithJitter
from repro.gateway.model import (
    ForwardingPolicy,
    GatewayAnalysis,
    GatewayModel,
    GatewayRoute,
)


def _gateway(policy=ForwardingPolicy.PERIODIC_POLLING, **kwargs) -> GatewayModel:
    return GatewayModel(
        name="Gateway1",
        policy=policy,
        polling_period=kwargs.pop("polling_period", 5.0),
        copy_time=kwargs.pop("copy_time", 0.05),
        routes=[
            GatewayRoute(source_message="BodySpeed", destination_message="PTSpeed",
                         source_bus="Body-CAN", destination_bus="PT-CAN"),
            GatewayRoute(source_message="BodyTemp", destination_message="PTTemp",
                         source_bus="Body-CAN", destination_bus="PT-CAN"),
        ],
        **kwargs,
    )


ARRIVALS = {
    "BodySpeed": PeriodicWithJitter(period=20.0, jitter=2.0),
    "BodyTemp": PeriodicWithJitter(period=100.0, jitter=5.0),
}


class TestGatewayModel:
    def test_duplicate_destination_rejected(self):
        with pytest.raises(ValueError):
            GatewayModel(name="GW", routes=[
                GatewayRoute("A", "X", "b1", "b2"),
                GatewayRoute("B", "X", "b1", "b2"),
            ])

    def test_route_lookup(self):
        gateway = _gateway()
        assert gateway.route_for_destination("PTSpeed").source_message == \
            "BodySpeed"
        with pytest.raises(KeyError):
            gateway.route_for_destination("Nope")

    def test_routes_through_queue(self):
        gateway = _gateway()
        assert len(gateway.routes_through_queue("default")) == 2

    def test_add_route_validates(self):
        gateway = _gateway()
        with pytest.raises(ValueError):
            gateway.add_route(GatewayRoute("Other", "PTSpeed", "b1", "b2"))
        assert len(gateway.routes) == 2


class TestGatewayAnalysis:
    def test_polling_latency_bounds(self):
        gateway = _gateway()
        analysis = GatewayAnalysis(gateway)
        latency = analysis.route_latency(
            gateway.route_for_destination("PTSpeed"), ARRIVALS)
        # Best: one copy; worst: full polling period plus copying both routes.
        assert latency.best_case == pytest.approx(0.05)
        assert latency.worst_case == pytest.approx(5.0 + 2 * 0.05)
        assert latency.added_jitter == pytest.approx(latency.worst_case - 0.05)

    def test_event_driven_is_faster(self):
        polled = GatewayAnalysis(_gateway()).route_latency(
            _gateway().route_for_destination("PTSpeed"), ARRIVALS)
        event = GatewayAnalysis(_gateway(policy=ForwardingPolicy.EVENT_DRIVEN))
        event_latency = event.route_latency(
            _gateway(policy=ForwardingPolicy.EVENT_DRIVEN)
            .route_for_destination("PTSpeed"), ARRIVALS)
        assert event_latency.worst_case < polled.worst_case

    def test_output_models_add_jitter(self):
        gateway = _gateway()
        models = GatewayAnalysis(gateway).output_event_models(ARRIVALS)
        assert set(models) == {"PTSpeed", "PTTemp"}
        out = models["PTSpeed"]
        assert out.period == 20.0
        assert out.jitter > ARRIVALS["BodySpeed"].jitter

    def test_unknown_sources_are_skipped(self):
        gateway = _gateway()
        models = GatewayAnalysis(gateway).output_event_models(
            {"BodySpeed": ARRIVALS["BodySpeed"]})
        assert "PTTemp" not in models

    def test_queue_length_bound(self):
        gateway = _gateway()
        latencies = GatewayAnalysis(gateway).analyze_all(ARRIVALS)
        for latency in latencies.values():
            assert latency.queue_length_bound >= 1

    def test_queue_overflow_reported(self):
        gateway = _gateway(queue_capacities={"default": 0})
        latency = GatewayAnalysis(gateway).route_latency(
            gateway.route_for_destination("PTSpeed"), ARRIVALS)
        assert math.isinf(latency.worst_case)
        # The output model degrades to a very bursty stream instead of lying.
        models = GatewayAnalysis(gateway).output_event_models(ARRIVALS)
        assert models["PTSpeed"].jitter > 10 * ARRIVALS["BodySpeed"].period

    def test_validation_of_parameters(self):
        with pytest.raises(ValueError):
            GatewayModel(name="GW", polling_period=0.0)
        with pytest.raises(ValueError):
            GatewayModel(name="GW", copy_time=-0.1)

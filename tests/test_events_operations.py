"""Unit tests for event-model operations (propagation, refinement, combine)."""

from __future__ import annotations

import pytest

from repro.events.model import (
    PeriodicEventModel,
    PeriodicWithBurst,
    PeriodicWithJitter,
)
from repro.events.operations import (
    add_jitter,
    combine_and,
    combine_or,
    conservative_union,
    is_refinement,
    output_event_model,
    scale_period,
)


class TestAddJitter:
    def test_adds_to_existing_jitter(self):
        model = PeriodicWithJitter(period=10.0, jitter=2.0)
        widened = add_jitter(model, 3.0)
        assert widened.jitter == pytest.approx(5.0)
        assert widened.period == 10.0

    def test_zero_extra_keeps_class(self):
        model = PeriodicEventModel(period=10.0)
        assert add_jitter(model, 0.0).jitter == 0.0

    def test_becomes_burst_model_when_jitter_exceeds_period(self):
        model = PeriodicWithJitter(period=10.0, jitter=2.0)
        widened = add_jitter(model, 15.0, min_distance=0.5)
        assert isinstance(widened, PeriodicWithBurst)
        assert widened.min_distance == 0.5

    def test_negative_extra_rejected(self):
        with pytest.raises(ValueError):
            add_jitter(PeriodicEventModel(period=10.0), -1.0)


class TestOutputEventModel:
    def test_jitter_grows_by_response_interval(self):
        model = PeriodicWithJitter(period=10.0, jitter=1.0)
        out = output_event_model(model, best_case_response=0.5,
                                 worst_case_response=3.0)
        assert out.jitter == pytest.approx(1.0 + 2.5)
        assert out.period == 10.0

    def test_equal_best_and_worst_adds_nothing(self):
        model = PeriodicWithJitter(period=10.0, jitter=1.0)
        out = output_event_model(model, 2.0, 2.0)
        assert out.jitter == pytest.approx(1.0)

    def test_invalid_interval_rejected(self):
        model = PeriodicEventModel(period=10.0)
        with pytest.raises(ValueError):
            output_event_model(model, 3.0, 2.0)


class TestRefinement:
    def test_smaller_jitter_refines_larger(self):
        tight = PeriodicWithJitter(period=10.0, jitter=1.0)
        loose = PeriodicWithJitter(period=10.0, jitter=3.0)
        assert is_refinement(tight, loose)
        assert not is_refinement(loose, tight)

    def test_periodic_refines_jittery(self):
        assert is_refinement(PeriodicEventModel(period=10.0),
                             PeriodicWithJitter(period=10.0, jitter=2.0))

    def test_different_periods_do_not_refine(self):
        assert not is_refinement(PeriodicEventModel(period=5.0),
                                 PeriodicWithJitter(period=10.0, jitter=2.0))

    def test_model_refines_itself(self):
        model = PeriodicWithJitter(period=10.0, jitter=2.0)
        assert is_refinement(model, model)


class TestCombinators:
    def test_conservative_union_takes_extremes(self):
        union = conservative_union([
            PeriodicWithJitter(period=10.0, jitter=1.0),
            PeriodicWithJitter(period=20.0, jitter=4.0),
        ])
        assert union.period == 10.0
        assert union.jitter == 4.0

    def test_conservative_union_rejects_empty(self):
        with pytest.raises(ValueError):
            conservative_union([])

    def test_union_admits_all_inputs(self):
        models = [PeriodicWithJitter(period=10.0, jitter=1.0),
                  PeriodicWithJitter(period=10.0, jitter=4.0)]
        union = conservative_union(models)
        for model in models:
            assert is_refinement(model, union)

    def test_combine_and_uses_slower_rate(self):
        combined = combine_and(PeriodicWithJitter(period=10.0, jitter=1.0),
                               PeriodicWithJitter(period=25.0, jitter=2.0))
        assert combined.period == 25.0
        assert combined.jitter == pytest.approx(3.0)

    def test_combine_or_adds_rates(self):
        combined = combine_or(PeriodicEventModel(period=10.0),
                              PeriodicEventModel(period=10.0))
        assert combined.period == pytest.approx(5.0)

    def test_scale_period(self):
        scaled = scale_period(PeriodicWithJitter(period=10.0, jitter=1.0), 2.0)
        assert scaled.period == 20.0
        with pytest.raises(ValueError):
            scale_period(PeriodicEventModel(period=10.0), 0.0)

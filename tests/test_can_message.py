"""Unit tests for the K-Matrix message abstraction."""

from __future__ import annotations

import pytest

from repro.can.frame import CanFrameFormat
from repro.can.message import CanMessage, SignalSpec
from repro.events.model import PeriodicEventModel, PeriodicWithJitter


def _message(**overrides) -> CanMessage:
    parameters = dict(name="M", can_id=0x123, dlc=8, period=10.0, sender="ECU1")
    parameters.update(overrides)
    return CanMessage(**parameters)


class TestValidation:
    def test_standard_id_range(self):
        with pytest.raises(ValueError):
            _message(can_id=0x800)
        assert _message(can_id=0x7FF).can_id == 0x7FF

    def test_extended_id_range(self):
        message = _message(can_id=0x1FFFFFFF,
                           frame_format=CanFrameFormat.EXTENDED)
        assert message.can_id == 0x1FFFFFFF
        with pytest.raises(ValueError):
            _message(can_id=0x20000000, frame_format=CanFrameFormat.EXTENDED)

    def test_dlc_range(self):
        with pytest.raises(ValueError):
            _message(dlc=9)
        with pytest.raises(ValueError):
            _message(dlc=-1)

    def test_period_positive(self):
        with pytest.raises(ValueError):
            _message(period=0.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            _message(jitter=-1.0)

    def test_signal_bounds(self):
        with pytest.raises(ValueError):
            SignalSpec(name="S", start_bit=60, length_bits=8)
        spec = SignalSpec(name="S", start_bit=0, length_bits=16)
        assert spec.length_bits == 16


class TestDerivedProperties:
    def test_priority_is_identifier(self):
        assert _message(can_id=0x55).priority == 0x55

    def test_jitter_known(self):
        assert not _message().jitter_known
        assert _message(jitter=1.0).jitter_known

    def test_effective_jitter_uses_assumption_when_unknown(self):
        message = _message(period=20.0)
        assert message.effective_jitter(0.25) == pytest.approx(5.0)

    def test_effective_jitter_prefers_known_value(self):
        message = _message(period=20.0, jitter=1.5)
        assert message.effective_jitter(0.25) == pytest.approx(1.5)

    def test_effective_deadline_policies(self):
        message = _message(period=20.0, jitter=4.0, deadline=12.0)
        assert message.effective_deadline("period") == 20.0
        assert message.effective_deadline("explicit") == 12.0
        assert message.effective_deadline("min-rearrival") == pytest.approx(16.0)
        assert message.effective_deadline("min-rearrival", jitter=10.0) == \
            pytest.approx(10.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            _message().effective_deadline("whatever")

    def test_event_model_classes(self):
        assert isinstance(_message().event_model(), PeriodicEventModel)
        assert isinstance(_message(jitter=2.0).event_model(), PeriodicWithJitter)
        assert _message().event_model(0.3).jitter == pytest.approx(3.0)

    def test_payload_bits(self):
        assert _message(dlc=3).payload_bits() == 24

    def test_copies_are_independent(self):
        original = _message()
        changed = original.with_can_id(0x200).with_jitter(2.0).with_period(50.0)
        assert original.can_id == 0x123 and original.jitter is None
        assert changed.can_id == 0x200
        assert changed.jitter == 2.0
        assert changed.period == 50.0

    def test_describe_contains_key_facts(self):
        text = _message(jitter=2.0).describe()
        assert "0x123" in text and "ECU1" in text

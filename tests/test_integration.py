"""Cross-module integration tests reproducing the paper's workflow end to end."""

from __future__ import annotations


from repro.analysis.load import bus_load
from repro.analysis.response_time import CanBusAnalysis
from repro.analysis.schedulability import analyze_schedulability
from repro.core.engine import CompositionalAnalysis
from repro.core.system import BusSegment, SystemModel
from repro.diagnostics.traffic import FlashingSession, kmatrix_with_diagnostics
from repro.experiments import BEST_CASE, WORST_CASE
from repro.optimize import GeneticOptimizerConfig, optimize_priorities, paper_scenarios
from repro.sensitivity.jitter import jitter_sensitivity_all
from repro.sim.simulator import CanBusSimulator, SimulationConfig
from repro.supplychain.workflow import derive_oem_requirements


class TestCaseStudyPipeline:
    """The Section-4 experiments chained together on the case-study network."""

    def test_zero_jitter_then_realistic_jitter_then_errors(self, powertrain):
        kmatrix, bus, controllers = powertrain
        # Experiment 1: zero jitters, no errors -> schedulable.
        first = analyze_schedulability(kmatrix, bus, controllers=controllers)
        assert first.all_deadlines_met
        # Realistic jitters on the unknown messages still fine in the best case.
        second = BEST_CASE.analyze(kmatrix, bus, 0.20, controllers)
        assert second.loss_fraction == 0.0
        # The worst-case interpretation starts losing messages.
        third = WORST_CASE.analyze(kmatrix, bus, 0.25, controllers)
        assert third.loss_fraction > 0.0

    def test_optimization_removes_loss_at_25_percent(self, powertrain):
        """Section 4.3: the optimized configuration loses nothing at 25 %."""
        kmatrix, bus, controllers = powertrain
        assert WORST_CASE.analyze(kmatrix, bus, 0.25,
                                  controllers).loss_fraction > 0.0
        scenarios = paper_scenarios(bus, controllers)
        result = optimize_priorities(
            kmatrix, scenarios,
            GeneticOptimizerConfig(population_size=10, archive_size=5,
                                   generations=3, seed=7))
        optimized = result.best_kmatrix
        assert WORST_CASE.analyze(optimized, bus, 0.25,
                                  controllers).loss_fraction == 0.0
        assert BEST_CASE.analyze(optimized, bus, 0.25,
                                 controllers).loss_fraction == 0.0

    def test_sensitivity_feeds_supplier_requirements(self, small_powertrain):
        """Section 5: sensitivity results become supplier jitter requirements."""
        kmatrix, bus, controllers = small_powertrain
        curves = jitter_sensitivity_all(kmatrix, bus,
                                        jitter_fractions=(0.0, 0.3, 0.6),
                                        controllers=controllers)
        assert set(curves) == {m.name for m in kmatrix}
        supplier = kmatrix.senders()[0]
        specs = derive_oem_requirements(kmatrix, bus, supplier_ecus=[supplier],
                                        controllers=controllers,
                                        background_jitter_fraction=0.1)
        clauses = specs[supplier].clauses
        assert clauses
        # Every requirement clause points at a message the supplier sends.
        sent = {m.name for m in kmatrix.sent_by(supplier)}
        assert {clause.message for clause in clauses} == sent

    def test_flashing_scenario_is_analyzable(self, small_powertrain):
        """Section 2: 'How about diagnosis and ECU flashing?'"""
        kmatrix, bus, controllers = small_powertrain
        extended = kmatrix_with_diagnostics(
            kmatrix,
            flashing_sessions=[FlashingSession(ecu=kmatrix.senders()[0],
                                               data_id=0x7A0, ack_id=0x7A8)])
        base = bus_load(kmatrix, bus).utilization
        loaded = bus_load(extended, bus).utilization
        assert loaded > base
        report = analyze_schedulability(extended, bus, controllers=controllers)
        production_ok = [v.meets_deadline for v in report.verdicts
                         if v.name in {m.name for m in kmatrix}]
        assert all(production_ok)

    def test_simulation_confirms_analysis_on_powertrain_subset(
            self, small_powertrain):
        """Observed responses never exceed the analytic bounds (containment)."""
        kmatrix, bus, controllers = small_powertrain
        analysis = CanBusAnalysis(kmatrix, bus, controllers=controllers,
                                  assumed_jitter_fraction=0.15).analyze_all()
        trace = CanBusSimulator(
            kmatrix, bus, controllers=controllers,
            config=SimulationConfig(duration=3000.0, seed=23,
                                    jitter_fraction=0.15)).run()
        violations = []
        for message in kmatrix:
            observed = trace.max_observed_response(message.name)
            bound = analysis[message.name].worst_case
            if observed > bound + 1e-9:
                violations.append((message.name, observed, bound))
        assert not violations

    def test_whole_system_fixed_point_on_case_study(self, small_powertrain):
        """The compositional engine handles the case-study bus as one segment."""
        kmatrix, bus, controllers = small_powertrain
        system = SystemModel(name="case-study", controllers=dict(controllers))
        system.add_bus(BusSegment(bus=bus, kmatrix=kmatrix,
                                  assumed_jitter_fraction=0.15))
        result = CompositionalAnalysis(system).run()
        assert result.converged
        assert result.total_messages == len(kmatrix)
        # Arrival jitter at the receivers includes the response interval.
        for message in kmatrix:
            assert result.arrival_jitter(message.name) >= \
                result.message_results[message.name].response_interval - 1e-9

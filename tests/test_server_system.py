"""Daemon system endpoints: register, system_query, scenarios, paths.

The wire contract under test: a system registered over the JSON protocol
answers ``system_query`` / ``path_latency`` / ``system_scenario`` requests
with floats that **bit-match** a local from-scratch
``CompositionalAnalysis`` run on the equivalently edited model (the
protocol round-trips every finite double exactly), the ``register``
response carries the shard-name map so clients never re-derive shard
names, and ``python -m repro.server`` starts and shuts down cleanly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.engine import CompositionalAnalysis
from repro.core.paths import path_latency_all
from repro.server import (
    AnalysisDaemon,
    DaemonError,
    InProcessClient,
    TcpClient,
    protocol,
    start_server,
)
from repro.service.deltas import BusConfiguration, JitterDelta
from repro.whatif import (
    BusSpeedDelta,
    GatewayConfigDelta,
    SegmentConfigDelta,
    apply_system_deltas,
)
from repro.workloads.multibus import multibus_paths, multibus_system
from repro.workloads.powertrain import (
    PowertrainConfig,
    powertrain_bus,
    powertrain_controllers,
    powertrain_kmatrix,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _expected_wire_results(system, deltas=()):
    """Worst cases of a from-scratch run, in wire encoding (None = inf)."""
    result = CompositionalAnalysis(
        apply_system_deltas(system, deltas), incremental=False).run()
    return {name: value.worst_case if value.bounded else None
            for name, value in result.message_results.items()}


class TestProtocolSystemCodecs:
    def test_system_roundtrip_preserves_fingerprint(self):
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=21)
        encoded = protocol.encode_line(protocol.system_to_json(system))
        decoded = protocol.system_from_json(protocol.decode_line(encoded))
        assert decoded.fingerprint() == system.fingerprint()
        assert decoded.validate() == []

    def test_ecu_system_roundtrip(self):
        from test_core import _two_bus_system

        system = _two_bus_system()
        decoded = protocol.system_from_json(protocol.system_to_json(system))
        assert decoded.fingerprint() == system.fingerprint()

    def test_config_roundtrip(self):
        config = BusConfiguration(
            kmatrix=powertrain_kmatrix(PowertrainConfig(n_messages=16)),
            bus=powertrain_bus(PowertrainConfig(n_messages=16)),
            assumed_jitter_fraction=0.15,
            controllers=powertrain_controllers(
                PowertrainConfig(n_messages=16)))
        decoded = protocol.config_from_json(protocol.config_to_json(config))
        assert decoded.analysis_key() == config.analysis_key()

    def test_system_delta_roundtrips(self):
        system = multibus_system(n_buses=2, messages_per_bus=6, seed=1)
        route = system.gateways["GW0"].routes[0]
        from repro.whatif import (
            AddGatewayRouteDelta,
            EcuTaskDelta,
            MoveMessageDelta,
            RemoveGatewayRouteDelta,
        )
        deltas = (
            MoveMessageDelta("B1_Msg002_ECU0", "CAN-0", new_can_id=0x300),
            BusSpeedDelta("CAN-1", 125_000.0),
            AddGatewayRouteDelta("GWX", route, polling_period=4.0),
            RemoveGatewayRouteDelta("GW0", route.destination_message),
            GatewayConfigDelta("GW0", polling_period=8.0, copy_time=0.1),
            EcuTaskDelta("ECU1", "T1", wcet=0.5, bcet=0.1),
            SegmentConfigDelta("CAN-0", (JitterDelta(fraction=0.2),)),
        )
        encoded = protocol.system_deltas_to_json(deltas)
        assert protocol.system_deltas_from_json(encoded) == deltas

    def test_unknown_system_delta_tag_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="unknown system"):
            protocol.system_delta_from_json({"sysdelta": "teleport"})

    def test_path_roundtrip(self):
        paths = multibus_paths(
            multibus_system(n_buses=3, messages_per_bus=6, seed=2))
        assert protocol.paths_from_json(
            protocol.paths_to_json(paths)) == paths


class TestSystemEndpointsInProcess:
    @pytest.fixture()
    def served(self):
        daemon = AnalysisDaemon(name="sys-test")
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=23)
        client = InProcessClient(daemon)
        registration = client.register_system("plant", system)
        yield daemon, client, system, registration
        daemon.close()

    def test_register_returns_shard_map_and_scenarios(self, served):
        _, _, _, registration = served
        assert registration["shards"] == {
            "CAN-0": "plant/CAN-0", "CAN-1": "plant/CAN-1",
            "CAN-2": "plant/CAN-2"}
        assert "gateway-failover" in registration["scenarios"]

    def test_reregistration_returns_fresh_shard_map(self, served):
        _, client, _, _ = served
        replacement = multibus_system(n_buses=2, messages_per_bus=6, seed=3)
        registration = client.register_system("plant", replacement)
        assert sorted(registration["shards"].values()) == [
            "plant/CAN-0", "plant/CAN-1"]
        response = client.analyze_system("plant")
        assert set(response["shards"]) == {"CAN-0", "CAN-1"}
        assert response["messages"] == {
            name: protocol.result_to_json(value) for name, value in
            CompositionalAnalysis(replacement, incremental=False)
            .run().message_results.items()}

    def test_system_query_bit_matches_fresh_run(self, served):
        _, client, system, _ = served
        deltas = (BusSpeedDelta("CAN-1", 250_000.0),)
        response = client.system_query("plant", deltas, label="degrade")
        expected = _expected_wire_results(system, deltas)
        got = {name: entry["worst_case"]
               for name, entry in response["messages"].items()}
        assert got == expected
        assert response["stats"]["invalidated"] == ["CAN-1", "CAN-2"]
        assert response["label"] == "degrade"

    def test_system_query_accepts_shard_map(self, served):
        _, client, _, registration = served
        response = client.system_query(
            "plant", (), shards=registration["shards"])
        assert sorted(response["bus_reports"]) == [
            "plant/CAN-0", "plant/CAN-1", "plant/CAN-2"]
        with pytest.raises(DaemonError, match="unknown buses"):
            client.system_query("plant", (), shards={"CAN-9": "x"})

    def test_system_query_with_paths(self, served):
        _, client, system, _ = served
        paths = multibus_paths(system)
        deltas = (GatewayConfigDelta("GW0", polling_period=7.5),)
        response = client.system_query("plant", deltas, paths=paths)
        edited = apply_system_deltas(system, deltas)
        expected = path_latency_all(
            paths, edited,
            CompositionalAnalysis(edited, incremental=False).run())
        got = {entry["path"]: entry["worst_case"]
               for entry in response["paths"]}
        assert got == {latency.path.name: latency.worst_case
                       for latency in expected}

    def test_path_latency_endpoint(self, served):
        _, client, system, _ = served
        paths = multibus_paths(system)
        response = client.path_latency("plant", paths)
        expected = path_latency_all(
            paths, system,
            CompositionalAnalysis(system, incremental=False).run())
        assert [entry["worst_case"] for entry in response["paths"]] == [
            latency.worst_case for latency in expected]
        assert "end-to-end path latency" in response["table"]

    def test_system_scenario_endpoint(self, served):
        _, client, system, _ = served
        response = client.system_scenario("plant", "bus-speed-degradation")
        assert response["scenario"] == "bus-speed-degradation"
        assert len(response["queries"]) >= 2
        assert "converged" in response["table"]
        with pytest.raises(DaemonError, match="unknown system scenario"):
            client.system_scenario("plant", "no-such-scenario")

    def test_repeated_system_queries_hit_the_cache(self, served):
        _, client, _, _ = served
        deltas = (BusSpeedDelta("CAN-2", 125_000.0),)
        first = client.system_query("plant", deltas)
        second = client.system_query("plant", deltas)
        assert not first["stats"]["cache_hit"]
        assert second["stats"]["cache_hit"]
        assert first["messages"] == second["messages"]

    def test_analyze_system_detects_inplace_gateway_edit(self, served):
        """The satellite-fix contract at the wire level: an in-place route
        edit of a *registered* system (object identity unchanged) must
        invalidate the daemon's memoized system results by fingerprint."""
        daemon, client, _, _ = served
        before = client.analyze_system("plant")
        # ``register`` decoded a server-side copy; edit *that* model in
        # place, exactly as server-side code holding the registered object
        # would (object identity unchanged, fingerprint changed).
        registered, _ = daemon.pool.system("plant")
        registered.gateways["GW0"].polling_period = 12.0
        after = client.analyze_system("plant")
        expected = _expected_wire_results(registered)
        got = {name: entry["worst_case"]
               for name, entry in after["messages"].items()}
        assert got == expected
        assert after["fingerprint"] != before["fingerprint"]

    def test_register_config_over_the_wire(self, served):
        _, client, _, _ = served
        config = BusConfiguration(
            kmatrix=powertrain_kmatrix(PowertrainConfig(n_messages=16)),
            bus=powertrain_bus(PowertrainConfig(n_messages=16)),
            assumed_jitter_fraction=0.15)
        registration = client.register_config("pt16", config)
        assert registration == {"target": "pt16"}
        response = client.query("pt16", (JitterDelta(fraction=0.3),))
        from repro.service.session import AnalysisSession
        session = AnalysisSession.from_config(config)
        local = session.query((JitterDelta(fraction=0.3),))
        assert {name: entry["worst_case"]
                for name, entry in response["results"].items()} == {
            name: value.worst_case if value.bounded else None
            for name, value in local.results.items()}

    def test_register_without_payload_is_an_error(self, served):
        _, client, _, _ = served
        with pytest.raises(DaemonError, match="register needs"):
            client.request("register", name="x")


class TestSystemEndpointsOverTcp:
    def test_full_system_workflow_over_a_socket(self):
        daemon = AnalysisDaemon(name="tcp-sys")
        system = multibus_system(n_buses=3, messages_per_bus=6, seed=29)
        server = start_server(daemon, port=0)
        try:
            host, port = server.address
            with TcpClient(host, port) as client:
                registration = client.register_system("plant", system)
                assert registration["shards"]["CAN-0"] == "plant/CAN-0"
                deltas = (BusSpeedDelta("CAN-1", 250_000.0),)
                response = client.system_query(
                    "plant", deltas, paths=multibus_paths(system))
                expected = _expected_wire_results(system, deltas)
                got = {name: entry["worst_case"]
                       for name, entry in response["messages"].items()}
                assert got == expected
                health = client.health()
                assert health["protocol"] == protocol.PROTOCOL_VERSION
                assert "plant" in health["systems"]
        finally:
            server.stop()


class TestServerCliSmoke:
    def test_module_starts_serves_and_shuts_down(self):
        """``python -m repro.server`` must come up, answer, and exit 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--port", "0",
             "--messages", "16", "--buses", "2", "--messages-per-bus", "5"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            banner: list[str] = []

            def read_banner():
                banner.append(process.stdout.readline())

            reader = threading.Thread(target=read_banner, daemon=True)
            reader.start()
            reader.join(timeout=60.0)
            assert banner and "serving on" in banner[0], banner
            address = banner[0].split("serving on ", 1)[1].split()[0]
            host, port_text = address.rsplit(":", 1)
            with TcpClient(host, int(port_text)) as client:
                assert client.ping()["pong"] is True
                health = client.health()
                assert "powertrain" in health["targets"]
                assert "multibus" in health["systems"]
                client.shutdown_daemon()
            stdout, stderr = process.communicate(timeout=30.0)
            assert process.returncode == 0, stderr
            assert "requests served" in stdout
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

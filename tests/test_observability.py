"""Tests of the observability layer: metrics, traces, slow-query log.

Two properties anchor the suite.  First, exactness: counters are plain
integers under a lock, so after any workload they must reconcile exactly
with the requests sent -- including under concurrent increments and
under every ``REPRO_PARALLEL`` mode.  Second, faithfulness: a request's
span tree must cover all six stages (decode -> admission -> queue_wait
-> session_plan -> solve -> encode) and its durations must fit inside
the round trip the client observed.
"""

from __future__ import annotations

import logging
import threading
import time

import pytest

from repro.obs import (
    ITERATION_BUCKETS,
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    TraceRing,
)
from repro.server import (
    AnalysisDaemon,
    DaemonError,
    InProcessClient,
    TcpClient,
    start_server,
)
from repro.service.deltas import BusConfiguration, JitterDelta
from repro.workloads.powertrain import (
    PowertrainConfig,
    powertrain_bus,
    powertrain_controllers,
    powertrain_kmatrix,
)

#: The stages every traced work request must cover, in order.
WORK_STAGES = ["decode", "admission", "queue_wait",
               "session_plan", "solve", "encode"]


def _powertrain_config(n_messages: int = 20) -> BusConfiguration:
    config = PowertrainConfig(n_messages=n_messages)
    return BusConfiguration(
        kmatrix=powertrain_kmatrix(config),
        bus=powertrain_bus(config),
        assumed_jitter_fraction=0.15,
        controllers=powertrain_controllers(config))


def _daemon(**kwargs) -> AnalysisDaemon:
    daemon = AnalysisDaemon(name="obs-test", mode="serial", **kwargs)
    daemon.add_config("powertrain", _powertrain_config())
    return daemon


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.value("requests_total") == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.reset()
        assert counter.value == 0

    def test_counter_identity_and_labels(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        a = registry.counter("x", op="query")
        b = registry.counter("x", op="ping")
        assert a is not b
        a.inc(2)
        b.inc(3)
        assert registry.value("x", op="query") == 2
        assert registry.value("x", op="ping") == 3
        snapshot = registry.snapshot()
        assert snapshot["counters"]['x{op="ping"}'] == 3
        assert snapshot["counters"]['x{op="query"}'] == 2

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 5
        assert registry.snapshot()["gauges"]["depth"] == 5

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 5000.0):
            hist.observe(value)
        snap = registry.snapshot()["histograms"]["lat"]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(5056.5)
        # Inclusive upper bounds: 1.0 falls in the first bucket.
        assert snap["buckets"] == [
            [1.0, 2], [10.0, 1], [100.0, 1], ["+Inf", 1]]

    def test_histogram_re_registration_conflicts(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        # Same buckets: same instrument.
        assert registry.histogram("h", buckets=(1.0, 2.0)) is \
            registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(5.0,))
        with pytest.raises(ValueError):
            registry.counter("h")

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        hist = registry.histogram("obs", buckets=(10.0,))
        n_threads, n_incs = 8, 2000

        def work():
            for _ in range(n_incs):
                counter.inc()
                hist.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == n_threads * n_incs
        snap = registry.snapshot()["histograms"]["obs"]
        assert snap["count"] == n_threads * n_incs
        assert snap["sum"] == pytest.approx(n_threads * n_incs)

    def test_snapshot_and_reset_race_safety(self):
        """Snapshots taken mid-increment never raise and reset zeroes."""
        registry = MetricsRegistry()
        counter = registry.counter("racy")
        stop = threading.Event()

        def work():
            while not stop.is_set():
                counter.inc()

        thread = threading.Thread(target=work)
        thread.start()
        try:
            for _ in range(50):
                snapshot = registry.snapshot()
                assert snapshot["counters"]["racy"] >= 0
        finally:
            stop.set()
            thread.join()
        registry.reset()
        assert counter.value == 0

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("req_total", op="query").inc(3)
        registry.gauge("depth").set(2)
        hist = registry.histogram("lat_ms", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{op="query"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        # Cumulative buckets with an +Inf terminator, plus count and sum.
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 2' in text
        assert "lat_ms_count 2" in text
        assert "lat_ms_sum 5.5" in text


# --------------------------------------------------------------------------- #
# Traces, ring, slow-query log (unit level)
# --------------------------------------------------------------------------- #
class TestTrace:
    def test_span_tree_shape(self):
        trace = Trace(op="query", target="powertrain")
        outer = trace.begin("solve")
        inner = trace.begin("inner", parent=outer)
        trace.end(inner)
        trace.end(outer)
        trace.record("encode", 1.5)
        total = trace.finish()
        data = trace.to_json()
        assert data["op"] == "query"
        assert data["target"] == "powertrain"
        assert len(data["trace_id"]) == 16
        assert [span["name"] for span in data["spans"]] == [
            "solve", "encode"]
        assert data["spans"][0]["children"][0]["name"] == "inner"
        assert data["duration_ms"] == pytest.approx(total)

    def test_extend_grows_span_and_total(self):
        trace = Trace(op="ping")
        trace.record("encode", 1.0)
        total = trace.finish()
        trace.extend("encode", 2.0)
        assert trace.stage_ms("encode") == pytest.approx(3.0)
        assert trace.duration_ms == pytest.approx(total + 2.0)
        # A stage the trace never opened is created on the spot.
        trace.extend("flush", 0.5)
        assert trace.stage_ms("flush") == pytest.approx(0.5)


class TestTraceRing:
    @staticmethod
    def _finished_trace(duration_ms: float) -> Trace:
        trace = Trace(op="query")
        trace.finish()
        trace.duration_ms = duration_ms
        return trace

    def test_keeps_slowest_n(self):
        ring = TraceRing(capacity=3)
        for duration in (5.0, 1.0, 9.0, 3.0, 7.0, 2.0):
            ring.add(self._finished_trace(duration))
        assert len(ring) == 3
        assert ring.seen == 6
        assert ring.evicted == 3
        durations = [t["duration_ms"] for t in ring.snapshot()]
        assert durations == [9.0, 7.0, 5.0]

    def test_limit_and_reset(self):
        ring = TraceRing(capacity=4)
        for duration in (1.0, 2.0, 3.0):
            ring.add(self._finished_trace(duration))
        assert [t["duration_ms"] for t in ring.snapshot(limit=2)] == \
            [3.0, 2.0]
        ring.reset()
        assert len(ring) == 0
        assert ring.seen == 0

    def test_zero_capacity_is_a_noop(self):
        ring = TraceRing(capacity=0)
        ring.add(self._finished_trace(1.0))
        assert len(ring) == 0
        assert ring.snapshot() == []


class TestSlowQueryLog:
    @staticmethod
    def _trace(duration_ms: float) -> Trace:
        trace = Trace(op="query", target="powertrain")
        trace.record("solve", duration_ms)
        trace.finish()
        trace.duration_ms = duration_ms
        return trace

    def test_disabled_by_default(self, caplog):
        log = SlowQueryLog()
        with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
            assert not log.maybe_log(self._trace(10_000.0))
        assert not caplog.records

    def test_logs_structured_line(self, caplog):
        log = SlowQueryLog(threshold_ms=1.0, min_interval_s=0.0)
        with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
            assert log.maybe_log(self._trace(5.0), fingerprint="abc123")
        assert log.emitted == 1
        message = caplog.records[0].getMessage()
        assert "op=query" in message
        assert "target=powertrain" in message
        assert "fingerprint=abc123" in message
        assert "solve=5.000" in message
        assert "duration_ms=5.000" in message

    def test_below_threshold_not_logged(self, caplog):
        log = SlowQueryLog(threshold_ms=100.0, min_interval_s=0.0)
        with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
            assert not log.maybe_log(self._trace(5.0))
        assert log.emitted == 0

    def test_rate_limit_counts_suppressed(self, caplog):
        log = SlowQueryLog(threshold_ms=1.0, min_interval_s=3600.0)
        with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
            assert log.maybe_log(self._trace(5.0))
            assert not log.maybe_log(self._trace(6.0))
            assert not log.maybe_log(self._trace(7.0))
        assert log.emitted == 1
        # The suppressed count surfaces on the next emitted line.
        log._last_emit = 0.0
        with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
            assert log.maybe_log(self._trace(8.0))
        assert "suppressed=2" in caplog.records[-1].getMessage()


# --------------------------------------------------------------------------- #
# Daemon integration: tracing
# --------------------------------------------------------------------------- #
class TestDaemonTracing:
    def test_query_span_tree_covers_all_stages(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            start = time.perf_counter()
            result = client.query(
                "powertrain", [JitterDelta(fraction=0.2)],
                trace=True)
            round_trip_ms = (time.perf_counter() - start) * 1000.0
            trace = result["trace"]
            names = [span["name"] for span in trace["spans"]]
            assert names == WORK_STAGES
            stage_sum = sum(span["duration_ms"] for span in trace["spans"])
            assert 0.0 < stage_sum <= round_trip_ms
            # The root total covers every stage and fits the round trip.
            assert stage_sum <= trace["duration_ms"] <= round_trip_ms

    def test_cache_hit_trace_has_zero_solve(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            client.query("powertrain")
            result = client.query("powertrain", trace=True)
            trace = result["trace"]
            assert [s["name"] for s in trace["spans"]] == WORK_STAGES
            solve = next(s for s in trace["spans"] if s["name"] == "solve")
            assert solve["duration_ms"] == 0.0

    def test_untraced_response_has_no_trace_keys(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            result = client.query("powertrain")
            assert "trace" not in result
            assert "trace_id" not in result

    def test_client_supplied_trace_id_is_propagated(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            result = client.request("query", target="powertrain",
                                    trace_id="deadbeef01")
            assert result["trace_id"] == "deadbeef01"
            # And it names the retained trace in the ring.
            ids = [t["trace_id"]
                   for t in client.traces()["traces"]]
            assert "deadbeef01" in ids

    def test_traces_op_returns_slowest_first(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            client.query("powertrain")
            client.ping()
            listing = client.traces()
            durations = [t["duration_ms"] for t in listing["traces"]]
            assert durations == sorted(durations, reverse=True)
            assert listing["retained"] == len(listing["traces"])
            assert listing["seen"] >= len(listing["traces"])
            assert listing["slow_query_ms"] is None

    def test_trace_ring_capacity_evicts(self):
        with _daemon(trace_ring=2) as daemon:
            client = InProcessClient(daemon)
            for _ in range(6):
                client.ping()
            listing = client.traces()
            assert listing["capacity"] == 2
            assert listing["retained"] == 2
            assert listing["seen"] >= 6
            assert daemon.traces.evicted > 0

    def test_traces_limit_validation(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            with pytest.raises(DaemonError) as excinfo:
                client.traces(limit=0)
            assert excinfo.value.code == "protocol"

    def test_rejected_request_is_traced(self):
        with _daemon(max_inflight=1) as daemon:
            client = InProcessClient(daemon)
            # Fill the only in-flight slot from another thread, then the
            # next work request is rejected -- but still traced.
            daemon._inflight = 1
            try:
                response = daemon.handle(
                    {"op": "query", "target": "powertrain", "trace": True})
            finally:
                daemon._inflight = 0
            assert response["ok"] is False
            assert response["code"] == "overloaded"
            names = [s["name"] for s in response["trace"]["spans"]]
            assert "admission" in names
            assert daemon.metrics.value(
                "daemon_admission_total",
                decision="rejected_overload") == 1

    def test_tcp_trace_roundtrip(self):
        daemon = _daemon()
        server = start_server(daemon, port=0)
        try:
            host, port = server.address
            with TcpClient(host, port) as client:
                start = time.perf_counter()
                result = client.query("powertrain", trace=True,
                                      trace_id="feedface42")
                round_trip_ms = (time.perf_counter() - start) * 1000.0
                assert result["trace_id"] == "feedface42"
                trace = result["trace"]
                assert trace["trace_id"] == "feedface42"
                names = [s["name"] for s in trace["spans"]]
                assert names == WORK_STAGES
                stage_sum = sum(
                    s["duration_ms"] for s in trace["spans"])
                assert 0.0 < stage_sum <= round_trip_ms
                assert stage_sum <= trace["duration_ms"] <= round_trip_ms
        finally:
            server.stop()


# --------------------------------------------------------------------------- #
# Daemon integration: metrics
# --------------------------------------------------------------------------- #
class TestDaemonMetrics:
    def test_counters_reconcile_with_requests(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            client.query("powertrain")                      # cold miss
            client.query("powertrain")                      # cache hit
            client.query("powertrain",
                         [JitterDelta(fraction=0.3)])  # warm miss
            metrics = client.metrics()["metrics"]
            counters = metrics["counters"]
            assert counters['daemon_requests_total{op="query"}'] == 3
            assert counters["session_queries_total"] == 3
            assert counters["session_cache_hits_total"] == 1
            assert counters["session_cache_misses_total"] == 2
            plan_total = sum(
                counters.get(
                    f'session_plan_messages_total{{action="{a}"}}', 0)
                for a in ("reuse", "warm", "cold"))
            n_messages = len(_powertrain_config().kmatrix)
            assert plan_total == 2 * n_messages  # both misses, all messages
            # Per-op latency histogram: one observation per query request.
            hists = metrics["histograms"]
            assert hists['daemon_op_ms{op="query"}']["count"] == 3
            assert hists["solver_iterations"]["count"] == 2
            assert hists["solver_iterations"]["sum"] > 0

    def test_admission_and_inflight_metrics(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            client.query("powertrain")
            registry = daemon.metrics
            assert registry.value("daemon_admission_total",
                                  decision="accepted") == 1
            assert registry.snapshot()["gauges"]["daemon_inflight"] == 0

    def test_error_counter(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            with pytest.raises(DaemonError):
                client.query("nonexistent-target")
            assert daemon.metrics.value(
                "daemon_errors_total", code="unknown_target") == 1

    def test_metrics_op_formats(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            client.ping()
            plain = client.metrics()
            assert "text" not in plain
            assert "metric" in plain["table"]
            rendered = client.metrics(format="prometheus")
            assert "# TYPE daemon_requests_total counter" in \
                rendered["text"]
            with pytest.raises(DaemonError) as excinfo:
                client.metrics(format="xml")
            assert excinfo.value.code == "protocol"

    def test_solver_iteration_buckets_are_iteration_shaped(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            client.query("powertrain")
            hist = daemon.metrics.histogram(
                "solver_iterations", buckets=ITERATION_BUCKETS)
            snap = hist.snapshot()
            assert snap["count"] == 1
            assert snap["sum"] >= 1

    def test_pool_and_jobs_metrics_registered(self):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            client.batch("powertrain", [
                {"deltas": [], "label": "a"},
                {"deltas": [JitterDelta(fraction=0.25)],
                 "label": "b"},
            ])
            snapshot = daemon.metrics.snapshot()
            assert snapshot["gauges"]["pool_sessions"] >= 1
            assert snapshot["counters"]["jobs_submitted_total"] == 2
            assert snapshot["gauges"]["jobs_depth"] == 0
            assert snapshot["histograms"]["jobs_wait_ms"]["count"] == 2


# --------------------------------------------------------------------------- #
# Health signals
# --------------------------------------------------------------------------- #
class TestHealthSignals:
    def test_ok_health_has_signals_and_no_causes(self):
        with _daemon() as daemon:
            health = InProcessClient(daemon).health()
            assert health["status"] == "ok"
            assert health["causes"] == []
            signals = health["signals"]
            assert signals["queue_depth"] == 0
            assert signals["inflight"] == 0
            assert signals["straggler_count"] == 0
            assert signals["rejected_overload"] == 0
            assert signals["timeouts"] == 0

    def test_draining_health_names_the_cause(self):
        daemon = _daemon()
        daemon.close(grace=0.0)
        health = daemon.handle({"op": "health"})["result"]
        assert health["status"] == "draining"
        assert "daemon is draining" in health["causes"]

    def test_rejections_show_up_in_signals(self):
        with _daemon(max_inflight=1) as daemon:
            daemon._inflight = 1
            try:
                daemon.handle({"op": "query", "target": "powertrain"})
            finally:
                daemon._inflight = 0
            health = InProcessClient(daemon).health()
            assert health["signals"]["rejected_overload"] == 1


# --------------------------------------------------------------------------- #
# Slow-query log through the daemon
# --------------------------------------------------------------------------- #
class TestDaemonSlowLog:
    def test_slow_query_logged_with_fingerprint(self, caplog):
        with _daemon(slow_query_ms=0.0) as daemon:
            daemon.slowlog.min_interval_s = 0.0
            client = InProcessClient(daemon)
            with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
                client.query("powertrain")
            assert daemon.slowlog.emitted >= 1
            message = caplog.records[0].getMessage()
            assert "op=query" in message
            assert "target=powertrain" in message
            assert "fingerprint=" in message
            assert "solve=" in message
            listing = client.traces()
            assert listing["slow_query_ms"] == 0.0
            assert listing["slow_queries_logged"] >= 1

    def test_disabled_slowlog_stays_silent(self, caplog):
        with _daemon() as daemon:
            client = InProcessClient(daemon)
            with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
                client.query("powertrain")
            assert not caplog.records


# --------------------------------------------------------------------------- #
# Determinism across parallel modes
# --------------------------------------------------------------------------- #
class TestParallelModeDeterminism:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_counters_exact_under_mode(self, mode, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", mode)
        daemon = AnalysisDaemon(name=f"obs-{mode}")
        daemon.add_config("powertrain", _powertrain_config())
        try:
            client = InProcessClient(daemon)
            steps = [{"deltas": [JitterDelta(fraction=0.1 * k)],
                      "label": f"step-{k}"} for k in range(1, 6)]
            result = client.batch("powertrain", steps)
            assert len(result["results"]) == 5
            assert all("error" not in entry
                       for entry in result["results"])
            counters = daemon.metrics.snapshot()["counters"]
            # Exactly one session query per batch step, however the
            # steps were scheduled.
            assert counters["session_queries_total"] == 5
            assert counters["jobs_submitted_total"] == 5
            hits = counters.get("session_cache_hits_total", 0)
            misses = counters.get("session_cache_misses_total", 0)
            assert hits + misses == 5
        finally:
            daemon.close()

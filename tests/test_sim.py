"""Unit tests for the discrete-event CAN simulator."""

from __future__ import annotations

import pytest

from repro.analysis.response_time import CanBusAnalysis
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import BurstErrorModel, SporadicErrorModel
from repro.can.bus import CanBus
from repro.sim.simulator import CanBusSimulator, SimulationConfig
from repro.sim.trace import (
    NeverSentError,
    SimulationTrace,
    UnknownMessageError,
)
from repro.workloads.scaling import synthetic_kmatrix


class TestSimulatorBasics:
    def test_all_messages_get_transmitted(self, small_kmatrix, small_bus):
        simulator = CanBusSimulator(small_kmatrix, small_bus,
                                    config=SimulationConfig(duration=500.0,
                                                            seed=7))
        trace = simulator.run()
        for message in small_kmatrix:
            expected = int(500.0 / message.period)
            completed = len(trace.completed(message.name))
            assert completed >= expected - 2

    def test_no_overlapping_transmissions(self, small_kmatrix, small_bus):
        trace = CanBusSimulator(small_kmatrix, small_bus,
                                config=SimulationConfig(duration=300.0,
                                                        seed=3)).run()
        ordered = sorted(trace.transmissions, key=lambda t: t.started_at)
        for first, second in zip(ordered, ordered[1:]):
            assert second.started_at >= first.finished_at - 1e-9

    def test_deterministic_for_fixed_seed(self, small_kmatrix, small_bus):
        config = SimulationConfig(duration=200.0, seed=11)
        first = CanBusSimulator(small_kmatrix, small_bus, config=config).run()
        second = CanBusSimulator(small_kmatrix, small_bus, config=config).run()
        assert [t.started_at for t in first.transmissions] == \
            [t.started_at for t in second.transmissions]

    def test_different_seeds_differ(self, small_kmatrix, small_bus):
        first = CanBusSimulator(small_kmatrix, small_bus,
                                config=SimulationConfig(duration=200.0,
                                                        seed=1)).run()
        second = CanBusSimulator(small_kmatrix, small_bus,
                                 config=SimulationConfig(duration=200.0,
                                                         seed=2)).run()
        assert [t.started_at for t in first.transmissions] != \
            [t.started_at for t in second.transmissions]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(jitter_fraction=-0.1)
        with pytest.raises(ValueError):
            SimulationConfig(start_offsets="sometimes")


class TestArbitration:
    def test_higher_priority_wins_when_both_pending(self, small_bus):
        kmatrix = KMatrix(messages=[
            CanMessage(name="High", can_id=0x100, dlc=8, period=10.0,
                       sender="E1"),
            CanMessage(name="Low", can_id=0x200, dlc=8, period=10.0,
                       sender="E2"),
        ])
        trace = CanBusSimulator(
            kmatrix, small_bus,
            config=SimulationConfig(duration=200.0, seed=5,
                                    start_offsets="zero",
                                    random_stuffing=False)).run()
        # Whenever both are queued simultaneously (same release grid), the
        # high-priority frame is served first.
        highs = [t for t in trace.completed("High")]
        lows = [t for t in trace.completed("Low")]
        assert highs and lows
        assert max(t.response_time for t in highs) <= \
            max(t.response_time for t in lows) + 1e-9

    def test_errors_cause_retransmissions(self, small_kmatrix, small_bus):
        noisy = CanBusSimulator(
            small_kmatrix, small_bus,
            error_model=SporadicErrorModel(min_interarrival=5.0),
            config=SimulationConfig(duration=500.0, seed=5)).run()
        failed = [t for t in noisy.transmissions if not t.success]
        assert failed, "expected at least one corrupted transmission"
        # Retransmission: the same instance appears again later and succeeds.
        example = failed[0]
        later = [t for t in noisy.completed(example.message)
                 if t.queued_at == example.queued_at]
        assert later, "corrupted frame was never retransmitted"

    def test_overload_causes_buffer_overwrites(self, small_bus):
        kmatrix = KMatrix(messages=[
            CanMessage(name=f"M{i}", can_id=0x100 + i, dlc=8, period=0.5,
                       sender="E1")
            for i in range(4)
        ])
        trace = CanBusSimulator(kmatrix, small_bus,
                                config=SimulationConfig(duration=100.0,
                                                        seed=1)).run()
        assert trace.losses, "an overloaded bus must overwrite send buffers"
        assert trace.loss_ratio("M3") > 0.0


class TestTraceStatistics:
    def test_observed_utilization_close_to_load(self, small_kmatrix, small_bus):
        from repro.analysis.load import bus_load
        plain_bus = small_bus.with_bit_stuffing(False)
        trace = CanBusSimulator(small_kmatrix, plain_bus,
                                config=SimulationConfig(duration=2000.0, seed=9,
                                                        random_stuffing=False)
                                ).run()
        load = bus_load(small_kmatrix, plain_bus)
        assert trace.observed_utilization() == pytest.approx(load.utilization,
                                                             rel=0.15)

    def test_gantt_rendering(self, small_kmatrix, small_bus):
        trace = CanBusSimulator(small_kmatrix, small_bus,
                                config=SimulationConfig(duration=50.0,
                                                        seed=2)).run()
        art = trace.render_gantt(window=(0.0, 20.0))
        assert "#" in art
        assert "bus trace" in art

    def test_arrival_trace_extraction(self, small_kmatrix, small_bus):
        trace = CanBusSimulator(small_kmatrix, small_bus,
                                config=SimulationConfig(duration=500.0,
                                                        seed=2)).run()
        arrivals = trace.arrival_trace("FastA")
        assert len(arrivals) >= 45  # ~50 instances in 500 ms

    def test_empty_trace_statistics(self):
        trace = SimulationTrace(duration=100.0)
        assert trace.observed_utilization() == 0.0
        with pytest.raises(UnknownMessageError):
            trace.max_observed_response("X")
        with pytest.raises(UnknownMessageError):
            trace.loss_ratio("X")

    def test_known_but_never_sent_message_raises_typed_error(self):
        trace = SimulationTrace(duration=100.0, messages=("A", "B"))
        with pytest.raises(NeverSentError):
            trace.max_observed_response("A")
        with pytest.raises(NeverSentError):
            trace.loss_ratio("B")

    def test_unknown_message_error_matches_daemon_taxonomy(self):
        trace = SimulationTrace(duration=50.0, messages=("A", "B"))
        with pytest.raises(UnknownMessageError) as excinfo:
            trace.max_observed_response("C")
        # Mirrors UnknownTargetError: KeyError subclass, carries the
        # offending name and the sorted known set.
        assert isinstance(excinfo.value, KeyError)
        assert excinfo.value.name == "C"
        assert excinfo.value.known == ["A", "B"]
        assert "unknown message 'C'" in str(excinfo.value)

    def test_simulator_populates_known_messages(self, small_kmatrix,
                                                small_bus):
        trace = CanBusSimulator(small_kmatrix, small_bus,
                                config=SimulationConfig(duration=50.0,
                                                        seed=1)).run()
        assert set(trace.messages) == {m.name for m in small_kmatrix}


class TestAnalysisContainment:
    """Observed behaviour must stay within the analytic worst-case bounds."""

    def test_observed_responses_below_bounds_zero_jitter(self, small_kmatrix,
                                                         small_bus):
        analysis = CanBusAnalysis(small_kmatrix, small_bus).analyze_all()
        trace = CanBusSimulator(small_kmatrix, small_bus,
                                config=SimulationConfig(duration=2000.0,
                                                        seed=13)).run()
        for message in small_kmatrix:
            observed = trace.max_observed_response(message.name)
            assert observed <= analysis[message.name].worst_case + 1e-9

    def test_observed_responses_below_bounds_with_jitter_and_errors(
            self, small_kmatrix, small_bus, small_controllers):
        error_model = BurstErrorModel(min_interarrival=30.0, burst_length=2,
                                      intra_burst_gap=0.5)
        analysis = CanBusAnalysis(small_kmatrix, small_bus,
                                  error_model=error_model,
                                  assumed_jitter_fraction=0.3,
                                  controllers=small_controllers).analyze_all()
        trace = CanBusSimulator(small_kmatrix, small_bus,
                                controllers=small_controllers,
                                error_model=error_model,
                                config=SimulationConfig(duration=3000.0,
                                                        seed=17,
                                                        jitter_fraction=0.3)
                                ).run()
        for message in small_kmatrix:
            observed = trace.max_observed_response(message.name)
            assert observed <= analysis[message.name].worst_case + 1e-9


class TestConformanceCoverage:
    """Satellite coverage for the conformance-monitor PR: determinism,
    conservative bounds across many synthetic workloads, and the empirical
    arrival-curve properties the envelope-escape test relies on."""

    def test_fixed_seed_reproduces_the_full_trace(self, small_kmatrix,
                                                  small_bus):
        error_model = BurstErrorModel(min_interarrival=40.0, burst_length=2,
                                      intra_burst_gap=0.5)
        config = SimulationConfig(duration=600.0, seed=29,
                                  jitter_fraction=0.25)
        first = CanBusSimulator(small_kmatrix, small_bus,
                                error_model=error_model, config=config).run()
        second = CanBusSimulator(small_kmatrix, small_bus,
                                 error_model=error_model, config=config).run()
        # Record-for-record identity, not just start times: the monitor's
        # replay determinism rests on the whole trace being reproducible.
        assert first.transmissions == second.transmissions
        assert first.errors == second.errors
        assert first.losses == second.losses
        assert first.messages == second.messages

    @pytest.mark.parametrize("seed", range(24))
    def test_observed_within_analytic_bound_synthetic(self, seed):
        kmatrix = synthetic_kmatrix(10, seed=seed)
        bus = CanBus(f"Syn-{seed}", bit_rate_bps=500000.0)
        analysis = CanBusAnalysis(kmatrix, bus).analyze_all()
        trace = CanBusSimulator(
            kmatrix, bus,
            config=SimulationConfig(duration=1200.0, seed=seed)).run()
        for message in kmatrix:
            try:
                observed = trace.max_observed_response(message.name)
            except NeverSentError:
                continue
            result = analysis[message.name]
            if result.bounded:
                assert observed <= result.worst_case + 1e-9

    def test_empirical_eta_minus_matches_periodic_windowing(self):
        from repro.events.curves import EmpiricalEventTrace
        trace = EmpiricalEventTrace(
            timestamps=[10.0 * i for i in range(20)])
        # For a strictly periodic trace the minimum count over any fully
        # covered window of length dt is floor(dt / T).
        for dt in (5.0, 10.0, 25.0, 40.0, 95.0):
            assert trace.empirical_eta_minus(dt) == int(dt // 10.0)

    def test_empirical_eta_minus_monotone_in_dt(self, small_kmatrix,
                                                small_bus):
        trace = CanBusSimulator(
            small_kmatrix, small_bus,
            config=SimulationConfig(duration=1000.0, seed=5,
                                    jitter_fraction=0.3)).run()
        arrivals = trace.arrival_trace("FastA")
        times = arrivals.timestamps
        span = times[-1] - times[0]
        grid = [span * k / 40.0 for k in range(1, 40)]
        values = [arrivals.empirical_eta_minus(dt) for dt in grid]
        assert all(a <= b for a, b in zip(values, values[1:]))
        # The lower curve can never exceed the upper one.
        for dt, value in zip(grid, values):
            assert value <= arrivals.empirical_eta_plus(dt)

    def test_eta_minus_escape_is_fitted_jitter_growth(self):
        from repro.events.curves import EmpiricalEventTrace, \
            fit_periodic_jitter
        from repro.events.model import event_model_from_parameters
        period = 10.0
        registered = event_model_from_parameters(period, jitter=0.0)
        clean = EmpiricalEventTrace(
            timestamps=[period * i for i in range(32)])
        assert fit_periodic_jitter(clean, period).jitter == 0.0
        # Pull one arrival early: the empirical lower curve dips below the
        # registered eta_minus on some horizon, and (dually) the minimal
        # conservative fitted jitter exceeds the registered one.
        shifted = [period * i for i in range(32)]
        shifted[10] -= 6.0
        escaped = EmpiricalEventTrace(timestamps=shifted)
        fitted = fit_periodic_jitter(escaped, period)
        assert fitted.jitter > registered.jitter
        dips = any(
            escaped.empirical_eta_minus(dt) < registered.eta_minus(dt)
            for dt in [period * k / 4.0 for k in range(1, 64)])
        assert dips

    def test_fitted_model_dominates_observed_upper_curve(self, small_kmatrix,
                                                         small_bus):
        from repro.events.curves import fit_periodic_jitter
        trace = CanBusSimulator(
            small_kmatrix, small_bus,
            config=SimulationConfig(duration=1500.0, seed=23,
                                    jitter_fraction=0.4)).run()
        for message in small_kmatrix:
            arrivals = trace.arrival_trace(message.name)
            fitted = fit_periodic_jitter(arrivals, message.period)
            span = arrivals.timestamps[-1] - arrivals.timestamps[0]
            for k in range(1, 30):
                dt = span * k / 30.0
                assert fitted.eta_plus(dt) >= \
                    arrivals.empirical_eta_plus(dt)

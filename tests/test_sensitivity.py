"""Unit tests for jitter/error sensitivity analysis (Figure 4)."""

from __future__ import annotations

import pytest

from repro.sensitivity.error import error_sensitivity
from repro.sensitivity.jitter import (
    SensitivityClass,
    classify_all,
    classify_curve,
    jitter_sensitivity,
    jitter_sensitivity_all,
)


FRACTIONS = (0.0, 0.2, 0.4, 0.6)


class TestJitterSensitivity:
    def test_single_message_curve(self, small_kmatrix, small_bus):
        curve = jitter_sensitivity("Slow", small_kmatrix, small_bus,
                                   jitter_fractions=FRACTIONS)
        assert curve.name == "Slow"
        assert len(curve.response_times) == len(FRACTIONS)
        assert curve.baseline <= curve.final
        assert curve.period == 100.0

    def test_all_curves_cover_kmatrix(self, small_kmatrix, small_bus):
        curves = jitter_sensitivity_all(small_kmatrix, small_bus,
                                        jitter_fractions=FRACTIONS)
        assert set(curves) == {m.name for m in small_kmatrix}

    def test_batch_matches_single(self, small_kmatrix, small_bus):
        batch = jitter_sensitivity_all(small_kmatrix, small_bus,
                                       jitter_fractions=FRACTIONS)
        single = jitter_sensitivity("FastB", small_kmatrix, small_bus,
                                    jitter_fractions=FRACTIONS)
        assert batch["FastB"].response_times == pytest.approx(
            single.response_times)

    def test_curves_are_nondecreasing(self, small_kmatrix, small_bus):
        curves = jitter_sensitivity_all(small_kmatrix, small_bus,
                                        jitter_fractions=FRACTIONS)
        for curve in curves.values():
            values = list(curve.response_times)
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_first_violation_detection(self, small_kmatrix, small_bus):
        curves = jitter_sensitivity_all(small_kmatrix, small_bus,
                                        jitter_fractions=FRACTIONS)
        for curve in curves.values():
            violation = curve.first_violation_fraction()
            if violation is not None:
                assert violation in FRACTIONS

    def test_rows_export(self, small_kmatrix, small_bus):
        curve = jitter_sensitivity("FastA", small_kmatrix, small_bus,
                                   jitter_fractions=FRACTIONS)
        rows = curve.as_rows()
        assert rows[0][0] == 0.0
        assert len(rows) == len(FRACTIONS)


class TestClassification:
    def test_classification_thresholds(self, small_kmatrix, small_bus):
        curves = jitter_sensitivity_all(small_kmatrix, small_bus,
                                        jitter_fractions=FRACTIONS)
        for curve in curves.values():
            assert isinstance(curve.classification(), SensitivityClass)

    def test_classify_all_partitions_messages(self, small_kmatrix, small_bus):
        curves = jitter_sensitivity_all(small_kmatrix, small_bus,
                                        jitter_fractions=FRACTIONS)
        groups = classify_all(curves)
        names = [name for group in groups.values() for name in group]
        assert sorted(names) == sorted(curves)

    def test_flat_curve_is_robust(self):
        from repro.sensitivity.jitter import JitterSensitivityCurve
        curve = JitterSensitivityCurve(
            name="flat", jitter_fractions=(0.0, 0.3, 0.6),
            response_times=(1.0, 1.01, 1.02), period=10.0, deadline=10.0)
        assert classify_curve(curve) == SensitivityClass.ROBUST

    def test_steep_curve_is_very_sensitive(self):
        from repro.sensitivity.jitter import JitterSensitivityCurve
        curve = JitterSensitivityCurve(
            name="steep", jitter_fractions=(0.0, 0.3, 0.6),
            response_times=(1.0, 8.0, 20.0), period=10.0, deadline=10.0)
        assert classify_curve(curve) == SensitivityClass.VERY_SENSITIVE

    def test_case_study_has_both_robust_and_sensitive_messages(
            self, small_powertrain):
        """Section 4.1: some messages are sensitive, others robust."""
        kmatrix, bus, controllers = small_powertrain
        curves = jitter_sensitivity_all(kmatrix, bus,
                                        jitter_fractions=(0.0, 0.3, 0.6),
                                        controllers=controllers)
        groups = classify_all(curves)
        robust = groups[SensitivityClass.ROBUST]
        not_robust = (groups[SensitivityClass.MEDIUM]
                      + groups[SensitivityClass.SENSITIVE]
                      + groups[SensitivityClass.VERY_SENSITIVE])
        assert robust, "expected at least one robust message"
        assert not_robust, "expected at least one non-robust message"


class TestErrorSensitivity:
    def test_curves_grow_with_error_rate(self, small_kmatrix, small_bus):
        curves = error_sensitivity(["Slow", "FastA"], small_kmatrix, small_bus,
                                   error_interarrivals=(100.0, 20.0, 5.0))
        for curve in curves.values():
            values = list(curve.response_times)
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
            assert curve.absolute_increase >= 0

    def test_burst_model_hurts_more_than_sporadic(self, small_kmatrix, small_bus):
        sporadic = error_sensitivity(["Slow"], small_kmatrix, small_bus,
                                     error_interarrivals=(20.0,),
                                     model_kind="sporadic")["Slow"]
        burst = error_sensitivity(["Slow"], small_kmatrix, small_bus,
                                  error_interarrivals=(20.0,),
                                  model_kind="burst")["Slow"]
        assert burst.response_times[0] >= sporadic.response_times[0]

    def test_none_analyses_all_messages(self, small_kmatrix, small_bus):
        curves = error_sensitivity(None, small_kmatrix, small_bus,
                                   error_interarrivals=(50.0, 10.0))
        assert set(curves) == {m.name for m in small_kmatrix}

    def test_unknown_model_kind_rejected(self, small_kmatrix, small_bus):
        with pytest.raises(ValueError):
            error_sensitivity(["Slow"], small_kmatrix, small_bus,
                              model_kind="cosmic-rays")

"""Unit tests for CAN frame timing (lengths, stuffing, overheads)."""

from __future__ import annotations

import pytest

from repro.can.frame import (
    CanFrameFormat,
    best_case_transmission_time,
    error_frame_bits,
    error_recovery_overhead,
    frame_bits_without_stuffing,
    max_stuff_bits,
    worst_case_frame_bits,
    worst_case_transmission_time,
)


class TestFrameBits:
    def test_standard_8_byte_frame_without_stuffing(self):
        # 34 overhead + 64 data + 13 trailer = 111 bits.
        assert frame_bits_without_stuffing(8, CanFrameFormat.STANDARD) == 111

    def test_extended_8_byte_frame_without_stuffing(self):
        assert frame_bits_without_stuffing(8, CanFrameFormat.EXTENDED) == 131

    def test_zero_payload(self):
        assert frame_bits_without_stuffing(0) == 47

    def test_worst_case_stuffing_standard_8_bytes(self):
        # (34 + 64 - 1) // 4 = 24 stuff bits -> 135 bits total.
        assert max_stuff_bits(8, CanFrameFormat.STANDARD) == 24
        assert worst_case_frame_bits(8, CanFrameFormat.STANDARD) == 135

    def test_stuffing_can_be_disabled(self):
        assert worst_case_frame_bits(8, bit_stuffing=False) == 111

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            frame_bits_without_stuffing(9)
        with pytest.raises(ValueError):
            frame_bits_without_stuffing(-1)

    @pytest.mark.parametrize("payload", range(9))
    def test_extended_always_longer_than_standard(self, payload):
        assert (worst_case_frame_bits(payload, CanFrameFormat.EXTENDED)
                > worst_case_frame_bits(payload, CanFrameFormat.STANDARD))

    @pytest.mark.parametrize("payload", range(1, 9))
    def test_bits_increase_with_payload(self, payload):
        assert (worst_case_frame_bits(payload)
                > worst_case_frame_bits(payload - 1))


class TestTransmissionTimes:
    def test_500kbit_8_byte_worst_case(self):
        # 135 bits at 500 kbit/s = 0.27 ms.
        assert worst_case_transmission_time(8, 500_000.0) == pytest.approx(0.27)

    def test_best_case_is_shorter(self):
        assert (best_case_transmission_time(8, 500_000.0)
                < worst_case_transmission_time(8, 500_000.0))

    def test_scales_inversely_with_bit_rate(self):
        slow = worst_case_transmission_time(8, 125_000.0)
        fast = worst_case_transmission_time(8, 500_000.0)
        assert slow == pytest.approx(4 * fast)

    def test_invalid_bit_rate_rejected(self):
        with pytest.raises(ValueError):
            worst_case_transmission_time(8, 0.0)
        with pytest.raises(ValueError):
            best_case_transmission_time(8, -1.0)


class TestErrorOverhead:
    def test_error_frame_is_31_bits(self):
        assert error_frame_bits() == 31

    def test_error_recovery_at_500kbit(self):
        assert error_recovery_overhead(500_000.0) == pytest.approx(0.062)

    def test_error_recovery_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            error_recovery_overhead(0.0)

"""Shared fixtures: small deterministic networks that keep the suite fast."""

from __future__ import annotations

import pytest

from repro.can.bus import CanBus
from repro.can.controller import CanControllerType, ControllerModel
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.workloads.powertrain import (
    PowertrainConfig,
    powertrain_bus,
    powertrain_controllers,
    powertrain_kmatrix,
)


@pytest.fixture()
def small_bus() -> CanBus:
    """A 500 kbit/s bus with worst-case stuffing, as in the case study."""
    return CanBus(name="TestBus", bit_rate_bps=500_000.0, bit_stuffing=True)


@pytest.fixture()
def small_kmatrix() -> KMatrix:
    """Five messages on two ECUs with hand-checkable parameters."""
    return KMatrix(messages=[
        CanMessage(name="FastA", can_id=0x100, dlc=8, period=10.0,
                   sender="ECU_A", receivers=("ECU_B",)),
        CanMessage(name="FastB", can_id=0x110, dlc=8, period=10.0,
                   sender="ECU_B", receivers=("ECU_A",)),
        CanMessage(name="Medium", can_id=0x200, dlc=4, period=20.0,
                   jitter=2.0, sender="ECU_A", receivers=("ECU_B",)),
        CanMessage(name="Slow", can_id=0x300, dlc=8, period=100.0,
                   sender="ECU_B", receivers=("ECU_A",)),
        CanMessage(name="Background", can_id=0x400, dlc=2, period=500.0,
                   sender="ECU_A", receivers=("ECU_B",)),
    ])


@pytest.fixture()
def small_controllers() -> dict[str, ControllerModel]:
    """FullCAN on ECU_A, basicCAN on ECU_B."""
    return {
        "ECU_A": ControllerModel(controller_type=CanControllerType.FULL),
        "ECU_B": ControllerModel(controller_type=CanControllerType.BASIC,
                                 tx_buffers=2),
    }


@pytest.fixture(scope="session")
def powertrain_config() -> PowertrainConfig:
    """The canonical case-study configuration (shared, immutable)."""
    return PowertrainConfig()


@pytest.fixture(scope="session")
def powertrain(powertrain_config):
    """The canonical case-study network: (kmatrix, bus, controllers)."""
    return (
        powertrain_kmatrix(powertrain_config),
        powertrain_bus(powertrain_config),
        powertrain_controllers(powertrain_config),
    )


@pytest.fixture(scope="session")
def small_powertrain():
    """A reduced case-study network for the slower what-if sweeps."""
    config = PowertrainConfig(n_messages=24, n_ecus=4, n_gateways=1, seed=5)
    return (
        powertrain_kmatrix(config),
        powertrain_bus(config),
        powertrain_controllers(config),
    )

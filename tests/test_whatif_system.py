"""System-level what-if layer: bit-identity, invalidation, catalogs.

Every :class:`SystemDelta` query answered by a :class:`SystemSession` must
be **bit-identical** to a from-scratch ``CompositionalAnalysis(...,
incremental=False).run()`` on an *independently hand-edited*
:class:`SystemModel` -- the expected topologies here are built by mutating
fresh systems directly, never through ``delta.apply``, so the delta
semantics themselves are under test.  The suite also covers the
fingerprint-based invalidation of in-place gateway/ECU edits (mutable
containers, stable identities) and the ``REPRO_PARALLEL`` modes.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.can.kmatrix import KMatrix
from repro.core.engine import CompositionalAnalysis
from repro.core.paths import path_latency_all
from repro.core.system import SystemModel
from repro.errors.models import SporadicErrorModel
from repro.gateway.model import GatewayRoute
from repro.service.deltas import (
    ErrorModelDelta,
    EventModelDelta,
    JitterDelta,
    PriorityDelta,
)
from repro.whatif import (
    AddGatewayRouteDelta,
    BusSpeedDelta,
    EcuTaskDelta,
    GatewayConfigDelta,
    MoveMessageDelta,
    RemoveGatewayRouteDelta,
    SegmentConfigDelta,
    SystemSession,
    apply_system_deltas,
    builtin_system_catalog,
    influence_edges,
)
from repro.workloads.multibus import multibus_paths, multibus_system


def _assert_identical(first, second) -> None:
    assert first.converged == second.converged
    assert first.iterations == second.iterations
    assert first.message_results == second.message_results
    assert first.send_models == second.send_models
    assert first.arrival_models == second.arrival_models
    assert first.task_results == second.task_results
    assert first.bus_reports == second.bus_reports


def _fresh_run(system: SystemModel):
    return CompositionalAnalysis(system, incremental=False).run()


def _check(session: SystemSession, deltas, expected_system: SystemModel,
           paths=()) -> None:
    """One query vs the from-scratch run on the hand-edited system."""
    outcome = session.query(deltas)
    expected = _fresh_run(expected_system)
    _assert_identical(outcome.result, expected)
    if paths:
        got = session.path_latency(paths, deltas)
        want = path_latency_all(paths, expected_system, expected)
        assert got == want


PARAMS = [
    dict(n_buses=2, messages_per_bus=6, seed=0),
    dict(n_buses=3, messages_per_bus=10, seed=1),
    dict(n_buses=4, messages_per_bus=8, seed=2),
]


class TestSystemDeltaBitIdentity:
    @pytest.mark.parametrize("params", PARAMS)
    def test_bus_speed_delta(self, params):
        base = multibus_system(**params)
        session = SystemSession(base)
        edited = multibus_system(**params)
        segment = edited.buses["CAN-1"]
        segment.bus = segment.bus.with_bit_rate(250_000.0)
        _check(session, BusSpeedDelta("CAN-1", 250_000.0), edited,
               paths=multibus_paths(base))

    @pytest.mark.parametrize("params", PARAMS)
    def test_move_message_delta(self, params):
        base = multibus_system(**params)
        session = SystemSession(base)
        last_bus = f"CAN-{params['n_buses'] - 1}"
        victim = base.buses[last_bus].kmatrix.sorted_by_priority()[-1]
        free_id = max(m.can_id for m in base.buses["CAN-0"].kmatrix) + 7
        edited = multibus_system(**params)
        moved = edited.buses[last_bus].kmatrix.remove(victim.name)
        edited.buses["CAN-0"].kmatrix.add(moved.with_can_id(free_id))
        _check(session,
               MoveMessageDelta(victim.name, "CAN-0", new_can_id=free_id),
               edited)

    @pytest.mark.parametrize("params", PARAMS)
    def test_move_message_rewrites_routes(self, params):
        """Moving a route endpoint drags its gateway routes along."""
        base = multibus_system(**params)
        session = SystemSession(base)
        gateway = base.gateways["GW0"]
        route = gateway.routes[0]
        victim = route.destination_message  # lives on CAN-1
        home = base.bus_of_message(victim).name
        target = "CAN-0"
        free_id = max(m.can_id for m in base.buses[target].kmatrix) + 9
        edited = multibus_system(**params)
        moved = edited.buses[home].kmatrix.remove(victim)
        edited.buses[target].kmatrix.add(moved.with_can_id(free_id))
        for gw_edit in edited.gateways.values():
            gw_edit.routes = [
                replace(r,
                        source_bus=(target if r.source_message == victim
                                    else r.source_bus),
                        destination_bus=(target
                                         if r.destination_message == victim
                                         else r.destination_bus))
                for r in gw_edit.routes]
        assert edited.validate() == []
        _check(session,
               MoveMessageDelta(victim, target, new_can_id=free_id), edited)

    @pytest.mark.parametrize("params", PARAMS)
    def test_gateway_config_delta(self, params):
        base = multibus_system(**params)
        session = SystemSession(base)
        edited = multibus_system(**params)
        edited.gateways["GW0"].polling_period = 9.5
        _check(session, GatewayConfigDelta("GW0", polling_period=9.5),
               edited, paths=multibus_paths(base))

    @pytest.mark.parametrize("params", PARAMS)
    def test_remove_gateway_route_delta(self, params):
        base = multibus_system(**params)
        session = SystemSession(base)
        destination = base.gateways["GW0"].routes[0].destination_message
        edited = multibus_system(**params)
        gw_edit = edited.gateways["GW0"]
        gw_edit.routes = [r for r in gw_edit.routes
                          if r.destination_message != destination]
        _check(session, RemoveGatewayRouteDelta("GW0", destination), edited)

    @pytest.mark.parametrize("params", PARAMS)
    def test_add_gateway_route_failover(self, params):
        """Remove a route from the primary, re-add it on a backup."""
        base = multibus_system(**params)
        session = SystemSession(base)
        route = base.gateways["GW0"].routes[0]
        deltas = (
            RemoveGatewayRouteDelta("GW0", route.destination_message),
            AddGatewayRouteDelta("GW0-backup", route, polling_period=5.0),
        )
        edited = multibus_system(**params)
        gw_edit = edited.gateways["GW0"]
        gw_edit.routes = [r for r in gw_edit.routes
                          if r.destination_message
                          != route.destination_message]
        from repro.gateway.model import GatewayModel
        edited.add_gateway(GatewayModel(
            name="GW0-backup", routes=[route], polling_period=5.0))
        _check(session, deltas, edited)

    @pytest.mark.parametrize("params", PARAMS)
    def test_segment_config_delta_wraps_bus_deltas(self, params):
        base = multibus_system(**params)
        session = SystemSession(base)
        victim = base.buses["CAN-0"].kmatrix.sorted_by_priority()[0]
        deltas = SegmentConfigDelta("CAN-0", (
            JitterDelta(message_name=victim.name, jitter=0.8),
            ErrorModelDelta(SporadicErrorModel(min_interarrival=50.0)),
        ))
        edited = multibus_system(**params)
        segment = edited.buses["CAN-0"]
        segment.kmatrix = KMatrix(messages=[
            m.with_jitter(0.8) if m.name == victim.name else m
            for m in segment.kmatrix.messages])
        segment.error_model = SporadicErrorModel(min_interarrival=50.0)
        _check(session, deltas, edited)

    @pytest.mark.parametrize("params", PARAMS)
    def test_segment_priority_swap(self, params):
        base = multibus_system(**params)
        session = SystemSession(base)
        ordered = base.buses["CAN-0"].kmatrix.sorted_by_priority()
        first, second = ordered[0], ordered[1]
        deltas = SegmentConfigDelta(
            "CAN-0", (PriorityDelta(swap=(first.name, second.name)),))
        edited = multibus_system(**params)
        segment = edited.buses["CAN-0"]
        segment.kmatrix = segment.kmatrix.with_priorities(
            {first.name: second.can_id, second.name: first.can_id})
        _check(session, deltas, edited)

    def test_ecu_task_delta(self):
        from test_core import _two_bus_system

        base = _two_bus_system()
        session = SystemSession(base)
        ecu_name = sorted(base.ecus)[0]
        task = base.ecus[ecu_name].tasks[0]
        edited = _two_bus_system()
        ecu_edit = edited.ecus[ecu_name]
        edited.ecus[ecu_name] = replace(ecu_edit, tasks=[
            replace(t, wcet=t.wcet * 1.8) if t.name == task.name else t
            for t in ecu_edit.tasks])
        _check(session,
               EcuTaskDelta(ecu_name, task.name, wcet=task.wcet * 1.8),
               edited)

    def test_delta_sequences_compose(self):
        params = dict(n_buses=3, messages_per_bus=8, seed=4)
        base = multibus_system(**params)
        session = SystemSession(base)
        deltas = (
            BusSpeedDelta("CAN-2", 250_000.0),
            GatewayConfigDelta("GW1", polling_period=6.0),
            SegmentConfigDelta("CAN-0", (JitterDelta(fraction=0.3),)),
        )
        edited = multibus_system(**params)
        segment = edited.buses["CAN-2"]
        segment.bus = segment.bus.with_bit_rate(250_000.0)
        edited.gateways["GW1"].polling_period = 6.0
        edited.buses["CAN-0"].assumed_jitter_fraction = 0.3
        _check(session, deltas, edited, paths=multibus_paths(base))


class TestSystemSessionBehaviour:
    def test_chained_sweep_is_incremental_and_exact(self):
        params = dict(n_buses=3, messages_per_bus=10, seed=6)
        base = multibus_system(**params)
        session = SystemSession(base)
        for rate in (500_000.0, 400_000.0, 250_000.0, 125_000.0):
            edited = multibus_system(**params)
            segment = edited.buses["CAN-1"]
            segment.bus = segment.bus.with_bit_rate(rate)
            _check(session, BusSpeedDelta("CAN-1", rate), edited)
        # Revisiting an already-analysed topology is a pure cache hit.
        before = session.stats()
        again = session.query(BusSpeedDelta("CAN-1", 250_000.0))
        assert again.stats.cache_hit
        assert session.stats().cache_hits == before.cache_hits + 1

    def test_base_query_and_repeat(self):
        base = multibus_system(n_buses=2, messages_per_bus=6, seed=3)
        session = SystemSession(base)
        first = session.analyze()
        _assert_identical(first.result, _fresh_run(base))
        assert session.query(()).stats.cache_hit

    def test_unchanged_segments_hit_their_session_caches(self):
        base = multibus_system(n_buses=4, messages_per_bus=8, seed=8)
        session = SystemSession(base)
        session.analyze()
        session.query(BusSpeedDelta("CAN-3", 250_000.0))
        # The last bus has no downstream: CAN-0..2 answered from cache.
        stats = {s.name: s for s in session.session_stats()}
        untouched = [s for name, s in stats.items()
                     if name.endswith(("CAN-0", "CAN-1", "CAN-2"))]
        assert untouched and all(s.cache_hits > 0 for s in untouched)

    def test_invalidation_closes_over_gateway_reachability(self):
        base = multibus_system(n_buses=4, messages_per_bus=6, seed=9)
        session = SystemSession(base)
        # An upstream edit invalidates every downstream segment...
        assert session.invalidated_by(
            BusSpeedDelta("CAN-0", 250_000.0)) == frozenset(
            {"CAN-0", "CAN-1", "CAN-2", "CAN-3"})
        # ...a leaf edit only itself.
        assert session.invalidated_by(
            BusSpeedDelta("CAN-3", 250_000.0)) == frozenset({"CAN-3"})

    def test_invalidation_covers_actual_changes(self):
        params = dict(n_buses=3, messages_per_bus=8, seed=10)
        base = multibus_system(**params)
        session = SystemSession(base)
        baseline = session.analyze().result
        delta = SegmentConfigDelta("CAN-0", (JitterDelta(fraction=0.5),))
        outcome = session.query(delta)
        changed_buses = {
            base.bus_of_message(name).name
            for name, result in outcome.result.message_results.items()
            if result != baseline.message_results[name]}
        assert changed_buses <= set(outcome.stats.invalidated)

    def test_rejects_bare_service_deltas(self):
        base = multibus_system(n_buses=2, messages_per_bus=6, seed=0)
        session = SystemSession(base)
        with pytest.raises(ValueError, match="SegmentConfigDelta"):
            session.query((JitterDelta(fraction=0.2),))

    def test_segment_config_rejects_event_model_delta(self):
        with pytest.raises(ValueError, match="EventModelDelta"):
            SegmentConfigDelta("CAN-0", (EventModelDelta(),))

    def test_unknown_references_fail_loudly(self):
        base = multibus_system(n_buses=2, messages_per_bus=6, seed=0)
        session = SystemSession(base)
        with pytest.raises(KeyError, match="unknown bus"):
            session.query(BusSpeedDelta("CAN-9", 250_000.0))
        with pytest.raises(KeyError, match="unknown gateway"):
            session.query(GatewayConfigDelta("GW9", polling_period=1.0))
        with pytest.raises(KeyError):
            session.query(MoveMessageDelta("NoSuchMessage", "CAN-0"))


class TestParallelModes:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_modes_bit_identical(self, mode, monkeypatch):
        params = dict(n_buses=3, messages_per_bus=6, seed=12)
        base = multibus_system(**params)
        deltas = (BusSpeedDelta("CAN-1", 250_000.0),
                  GatewayConfigDelta("GW0", polling_period=7.0))
        monkeypatch.setenv("REPRO_PARALLEL", "serial")
        reference = SystemSession(multibus_system(**params)).query(deltas)
        monkeypatch.setenv("REPRO_PARALLEL", mode)
        outcome = SystemSession(base).query(deltas)
        _assert_identical(outcome.result, reference.result)
        expected = _fresh_run(apply_system_deltas(base, deltas))
        _assert_identical(outcome.result, expected)


class TestFingerprintInvalidation:
    """Mutable gateway/ECU containers must invalidate by fingerprint."""

    def test_persistent_engine_survives_inplace_gateway_edits(self):
        """The engine's retained sweep memo is fingerprint-guarded: an
        in-place route edit (same object identities everywhere) between
        runs must produce exactly the from-scratch fixed point."""
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=13)
        engine = CompositionalAnalysis(system)
        engine.run()
        gateway = system.gateways["GW0"]
        gateway.polling_period = 11.0
        _assert_identical(_fresh_run(system), engine.run())
        gateway.routes.pop()
        _assert_identical(_fresh_run(system), engine.run())

    def test_persistent_rebuild_engine_discards_stale_seeds(self):
        """The rebuild path's retained seeds are keyed on the segment's
        full configuration: in-place edits that leave every *event model*
        unchanged (bit rate, priority swap, error model) must not warm
        the next run from the old -- possibly overshooting -- results."""
        params = dict(n_buses=3, messages_per_bus=8, seed=13)
        edits = [
            lambda seg: setattr(
                seg, "bus", seg.bus.with_bit_rate(
                    seg.bus.bit_rate_bps * 2.0)),
            lambda seg: setattr(
                seg, "kmatrix", seg.kmatrix.with_priorities({
                    seg.kmatrix.sorted_by_priority()[0].name:
                        seg.kmatrix.sorted_by_priority()[1].can_id,
                    seg.kmatrix.sorted_by_priority()[1].name:
                        seg.kmatrix.sorted_by_priority()[0].can_id})),
            lambda seg: setattr(seg, "error_model",
                                SporadicErrorModel(min_interarrival=500.0)),
        ]
        for edit in edits:
            system = multibus_system(**params)
            engine = CompositionalAnalysis(system, incremental=False)
            engine.run()
            edit(system.buses["CAN-0"])
            _assert_identical(
                CompositionalAnalysis(system, incremental=False).run(),
                engine.run())

    def test_session_detects_inplace_gateway_edit(self):
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=14)
        session = SystemSession(system)
        session.analyze()
        fingerprint = session.base_fingerprint
        system.gateways["GW0"].polling_period = 12.5
        outcome = session.analyze()
        assert not outcome.stats.cache_hit
        assert session.base_fingerprint != fingerprint
        assert session.stats().base_invalidations == 1
        _assert_identical(outcome.result, _fresh_run(system))

    def test_session_detects_inplace_route_addition(self):
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=15)
        session = SystemSession(system)
        session.analyze()
        source = system.buses["CAN-1"].kmatrix.sorted_by_priority()[1]
        destination = system.buses["CAN-2"].kmatrix.sorted_by_priority()[-1]
        system.gateways["GW1"].add_route(GatewayRoute(
            source_message=source.name,
            destination_message=destination.name,
            source_bus="CAN-1", destination_bus="CAN-2"))
        outcome = session.analyze()
        assert not outcome.stats.cache_hit
        _assert_identical(outcome.result, _fresh_run(system))

    def test_session_detects_inplace_ecu_edit(self):
        from test_core import _two_bus_system

        system = _two_bus_system()
        session = SystemSession(system)
        session.analyze()
        ecu_name = sorted(system.ecus)[0]
        ecu = system.ecus[ecu_name]
        system.ecus[ecu_name] = replace(ecu, tasks=[
            replace(task, wcet=task.wcet * 2.0) for task in ecu.tasks])
        outcome = session.analyze()
        assert not outcome.stats.cache_hit
        _assert_identical(outcome.result, _fresh_run(system))

    def test_gateway_analysis_key_tracks_route_edits(self):
        system = multibus_system(n_buses=2, messages_per_bus=6, seed=1)
        gateway = system.gateways["GW0"]
        key = gateway.analysis_key()
        assert key == gateway.analysis_key()
        gateway.polling_period *= 2.0
        assert key != gateway.analysis_key()
        restored = key[:3] + (gateway.polling_period,) + key[4:]
        assert restored == gateway.analysis_key()


class TestSystemScenarioCatalog:
    def test_builtin_catalog_families_run(self):
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=16)
        catalog = builtin_system_catalog(system)
        assert set(catalog.names()) == {
            "bus-speed-degradation", "gateway-failover",
            "message-remap-sweep"}
        session = SystemSession(system)
        for name in catalog.names():
            run = catalog.run(name, session)
            assert len(run.queries) >= 2
            table = run.to_table()
            assert name in table or run.scenario in table
            for query in run.queries:
                expected = _fresh_run(
                    apply_system_deltas(system, query.deltas))
                _assert_identical(query.result, expected)

    def test_failover_final_step_empties_the_primary(self):
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=17)
        catalog = builtin_system_catalog(system)
        scenario = catalog.get("gateway-failover")
        final = apply_system_deltas(system, scenario.queries[-1].deltas)
        assert final.gateways["GW0"].routes == []
        assert len(final.gateways["GW0-backup"].routes) == \
            len(system.gateways["GW0"].routes)

    def test_remap_sweep_respects_the_identifier_range(self):
        """A target bus already using the top standard id must get a free
        in-range identifier, never 0x7FF + 1 (reproduces the review
        finding: the scenario used max-used + 1 and crashed at run time)."""
        from repro.whatif import message_remap_sweep_scenario

        system = multibus_system(n_buses=2, messages_per_bus=6, seed=20)
        segment = system.buses["CAN-1"]
        top = segment.kmatrix.sorted_by_priority()[-1]
        segment.kmatrix = KMatrix(messages=[
            replace(m, can_id=0x7FF) if m.name == top.name else m
            for m in segment.kmatrix.messages])
        victim = system.buses["CAN-0"].kmatrix.sorted_by_priority()[0]
        scenario = message_remap_sweep_scenario(system, victim.name)
        run = scenario.run(SystemSession(system))
        assert len(run.queries) == 2  # base + CAN-1
        assert run.queries[-1].result.converged

    def test_scenarios_are_deterministic(self):
        system = multibus_system(n_buses=3, messages_per_bus=8, seed=18)
        first = builtin_system_catalog(system)
        second = builtin_system_catalog(system)
        for name in first.names():
            assert first.get(name) == second.get(name)


class TestInfluenceGraph:
    def test_chain_edges(self):
        system = multibus_system(n_buses=3, messages_per_bus=6, seed=19)
        edges = influence_edges(system)
        assert ("CAN-0", "CAN-1") in edges
        assert ("CAN-1", "CAN-2") in edges
        assert ("CAN-2", "CAN-1") not in edges

"""Canonical experiment configurations of the case study (Section 4).

The paper evaluates the power-train bus under a small set of named
interpretations that the figures refer back to:

* the **best case**: no bus errors, no worst-case bit stuffing, deadlines
  equal to the message periods;
* the **worst case**: burst bus errors, worst-case bit stuffing, and the
  minimum re-arrival time used as deadline;
* intermediate interpretations with sporadic errors used in the sensitivity
  discussion.

Centralising them here keeps tests, examples and the per-figure benchmarks
consistent: every curve of Figure 5 is one of these interpretations swept
over the jitter axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.schedulability import SchedulabilityReport, analyze_schedulability
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.errors.models import BurstErrorModel, ErrorModel, NoErrors, SporadicErrorModel


#: Jitter sweep of Figures 4 and 5: 0 % to 60 % of the period in 5 % steps.
JITTER_SWEEP_FRACTIONS: tuple[float, ...] = tuple(
    round(0.05 * i, 2) for i in range(13))

#: Burst error model of the worst-case interpretation: EMI bursts of three
#: corrupted frames at least every 50 ms (Punnekkat-style parameters).
WORST_CASE_ERRORS = BurstErrorModel(
    min_interarrival=50.0, burst_length=3, intra_burst_gap=0.5)

#: Sporadic error model used by the intermediate experiments (MTBF-style).
SPORADIC_ERRORS = SporadicErrorModel(min_interarrival=100.0)


@dataclass(frozen=True)
class ExperimentInterpretation:
    """One named interpretation of the case-study analysis."""

    name: str
    bit_stuffing: bool
    error_model: ErrorModel
    deadline_policy: str
    description: str = ""

    def analyze(
        self,
        kmatrix: KMatrix,
        bus: CanBus,
        jitter_fraction: float,
        controllers: Mapping[str, ControllerModel] | None = None,
    ) -> SchedulabilityReport:
        """Run the schedulability analysis under this interpretation."""
        return analyze_schedulability(
            kmatrix=kmatrix,
            bus=bus.with_bit_stuffing(self.bit_stuffing),
            error_model=self.error_model,
            assumed_jitter_fraction=jitter_fraction,
            deadline_policy=self.deadline_policy,
            controllers=controllers,
        )

    def loss_curve(
        self,
        kmatrix: KMatrix,
        bus: CanBus,
        jitter_fractions: Sequence[float] = JITTER_SWEEP_FRACTIONS,
        controllers: Mapping[str, ControllerModel] | None = None,
    ) -> list[tuple[float, float]]:
        """(jitter fraction, loss fraction) points -- one Figure-5 curve."""
        curve = []
        for fraction in jitter_fractions:
            report = self.analyze(kmatrix, bus, fraction, controllers)
            curve.append((fraction, report.loss_fraction))
        return curve


#: The benign interpretation: "When ignoring bus errors (best-case line) ..."
BEST_CASE = ExperimentInterpretation(
    name="best case",
    bit_stuffing=False,
    error_model=NoErrors(),
    deadline_policy="period",
    description="no bus errors, nominal frame lengths, period deadlines",
)

#: The strict interpretation: "In the worst case experiment we considered
#: burst bus errors, bit stuffing, and the minimum re-arrival time as a
#: deadline."
WORST_CASE = ExperimentInterpretation(
    name="worst case",
    bit_stuffing=True,
    error_model=WORST_CASE_ERRORS,
    deadline_policy="min-rearrival",
    description=("burst bus errors, worst-case bit stuffing, minimum "
                 "re-arrival time as deadline"),
)

#: Intermediate interpretation used by the sensitivity experiments.
SPORADIC_ERROR_CASE = ExperimentInterpretation(
    name="sporadic errors",
    bit_stuffing=True,
    error_model=SPORADIC_ERRORS,
    deadline_policy="period",
    description="sporadic (MTBF-style) errors, bit stuffing, period deadlines",
)

#: Experiment 1 of Section 4: zero jitters, no errors.
ZERO_JITTER_CASE = ExperimentInterpretation(
    name="experiment 1 (zero jitter)",
    bit_stuffing=True,
    error_model=NoErrors(),
    deadline_policy="period",
    description="all unknown jitters assumed zero, no errors",
)

ALL_INTERPRETATIONS: tuple[ExperimentInterpretation, ...] = (
    BEST_CASE, WORST_CASE, SPORADIC_ERROR_CASE, ZERO_JITTER_CASE)

"""What-if analysis service: cached-kernel sessions, deltas, scenarios.

The service layer turns the fast analysis kernel into a query engine for the
paper's core use case -- interactive what-if exploration against one shared
K-Matrix:

* :mod:`repro.service.deltas` -- typed what-if deltas and the immutable
  :class:`BusConfiguration` they transform;
* :mod:`repro.service.session` -- :class:`AnalysisSession`, which caches
  frozen kernels plus converged fixed points per configuration fingerprint
  and re-analyses only what a delta actually changed;
* :mod:`repro.service.catalog` -- named, reproducible scenario definitions
  and the :class:`ScenarioCatalog` registry;
* :mod:`repro.service.batch` -- deterministic (optionally multi-process)
  execution of scenario batches;
* :mod:`repro.service.evaluation` -- session-backed candidate evaluation
  for the genetic priority optimizer.
"""

from repro.service.batch import (
    BatchJob,
    BatchRunner,
    run_batch_job,
    scaling_jobs,
    system_jobs,
)
from repro.service.catalog import (
    ScenarioCatalog,
    ScenarioQuery,
    ScenarioRunResult,
    WhatIfScenario,
    builtin_catalog,
    error_sweep_scenario,
    jitter_sweep_scenario,
    message_jitter_sweep_scenario,
    paper_operating_points_scenario,
    priority_swap_scenario,
)
from repro.service.deltas import (
    AddMessageDelta,
    BusConfiguration,
    BusDelta,
    DeadlinePolicyDelta,
    Delta,
    ErrorModelDelta,
    EventModelDelta,
    JitterDelta,
    PriorityDelta,
    RemoveMessageDelta,
    apply_deltas,
)
from repro.service.evaluation import SessionEvaluator
from repro.service.session import (
    AnalysisSession,
    QueryResult,
    QueryStats,
    SessionStats,
)

__all__ = [
    "AddMessageDelta",
    "AnalysisSession",
    "BatchJob",
    "BatchRunner",
    "BusConfiguration",
    "BusDelta",
    "DeadlinePolicyDelta",
    "Delta",
    "ErrorModelDelta",
    "EventModelDelta",
    "JitterDelta",
    "PriorityDelta",
    "QueryResult",
    "QueryStats",
    "RemoveMessageDelta",
    "SessionStats",
    "ScenarioCatalog",
    "ScenarioQuery",
    "ScenarioRunResult",
    "SessionEvaluator",
    "WhatIfScenario",
    "apply_deltas",
    "builtin_catalog",
    "error_sweep_scenario",
    "jitter_sweep_scenario",
    "message_jitter_sweep_scenario",
    "paper_operating_points_scenario",
    "priority_swap_scenario",
    "run_batch_job",
    "scaling_jobs",
    "system_jobs",
]

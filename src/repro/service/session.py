"""Cached-kernel what-if sessions with delta-based incremental re-analysis.

An :class:`AnalysisSession` turns the fast analysis kernel into a query
engine for interactive exploration: it holds one base
:class:`~repro.service.deltas.BusConfiguration`, fingerprints every
configuration it analyses, and caches the frozen
:class:`~repro.analysis.response_time.CanBusAnalysis` kernel **and** the
last converged fixed point per fingerprint.  A query is a sequence of typed
deltas; the session applies them to a copy-on-write view and then plans, per
message, the cheapest *exact* way to obtain the new result:

``reuse``
    Every input of the message's analysis (own event model and transmission
    time, the full ordered higher-priority interference sequence, blocking,
    error model, divergence horizon) is bit-identical to a cached
    configuration -- the cached :class:`MessageResponseTime` *is* the result
    and no fixed point is solved at all.
``warm``
    The inputs changed, but only monotonically (jitters grew, the error
    model hardened, the higher-priority set gained members, blocking did not
    shrink) -- the cached solution is a valid lower bound under the PR 2
    warm-start contract of :mod:`repro.analysis.response_time`, so the fixed
    point is re-converged from it in a handful of iterations.
``cold``
    Anything else (jitter shrank, a message got a better priority, a
    higher-priority message disappeared): the message is analysed from
    scratch, because a stale seed could overshoot the new least fixed point.

All three paths return results bit-identical to a from-scratch
``analyze_all`` on the mutated K-Matrix; the plan only decides how much work
that takes.  Divergent (unbounded) results are always re-derived cold before
caching so that every cached value is the canonical cold-start value.

Sessions are thread-safe: the cache is guarded by a lock, analyses run
outside it, and a concurrent duplicate computation is harmless because every
path is deterministic.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.analysis.backend import resolve_backend
from repro.analysis.response_time import (
    _MAX_BUSY_PERIOD_FACTOR,
    CanBusAnalysis,
    MessageResponseTime,
)
from repro.analysis.schedulability import (
    SchedulabilityReport,
    report_from_results,
)
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.obs.metrics import ITERATION_BUCKETS, SIZE_BUCKETS
from repro.cancel import CancelToken
from repro.errors.models import (
    BurstErrorModel,
    CompositeErrorModel,
    ErrorModel,
    NoErrors,
    SporadicErrorModel,
)
from repro.events.model import EventModel, _ceil_div
from repro.events.model import _EPSILON as _SNAP_EPS
from repro.service.deltas import BusConfiguration, Delta, apply_deltas
from repro.store.codec import bus_payload_from_json, bus_payload_to_json

_BASE_ETA_PLUS = EventModel.eta_plus

_REUSE = "reuse"
_WARM = "warm"
_COLD = "cold"


# --------------------------------------------------------------------------- #
# Monotonicity predicates (the warm-start contract, machine-checked)
# --------------------------------------------------------------------------- #
def _models_identical(old: EventModel, new: EventModel) -> bool:
    """Bit-identical event models (same class, same parameters)."""
    return type(old) is type(new) and old == new


def _model_dominates(old: EventModel, new: EventModel) -> bool:
    """Whether ``new.eta_plus >= old.eta_plus`` pointwise.

    Sharper than the segment-level guard of :mod:`repro.core.engine`:
    periods must be equal, jitter must not shrink, and a burst-limiting
    minimum distance may tighten, be dropped -- or **appear**, provided the
    cap curve ``ceil(dt/d) + 1`` never dips below the old jitter curve
    ``ceil((dt + J_old) / T)``.  Writing ``x_k = (k-1)*T - J_old`` for the
    infimum window at which the old curve reaches ``k`` events, the cap
    right after ``x_k`` is ``floor(x_k/d) + 2``, so dominance needs
    ``floor(x_k/d) >= k - 2`` for every ``k >= 3``; the deficit shrinks by
    at least ``T/d - 1`` per step, so with ``d <= T`` the ``k = 3`` check
    ``2*T - J_old >= d`` settles all of them (and implies ``J_old < 2*T``,
    which covers ``k <= 2``).  This is exactly the compositional engine's
    iteration-2 shape: a gateway output model gains a transmission-time
    minimum distance far below the period, which caps bursts without ever
    lowering the curve.  Models with a custom ``eta_plus`` are only
    accepted when literally unchanged.
    """
    if (type(old).eta_plus is not _BASE_ETA_PLUS
            or type(new).eta_plus is not _BASE_ETA_PLUS):
        return _models_identical(old, new)
    if new.period != old.period or new.jitter < old.jitter:
        return False
    if new.min_distance != old.min_distance:
        if new.min_distance == 0.0:
            pass  # dropping the cap only raises eta_plus
        elif 0.0 < old.min_distance and \
                new.min_distance <= old.min_distance:
            pass  # tightening the cap only raises eta_plus
        elif old.min_distance == 0.0 and (
                new.min_distance <= old.period
                and 2.0 * old.period - old.jitter >= new.min_distance):
            pass  # a cap appeared, entirely above the old jitter curve
        else:
            return False
    return True


def _flat_activations(dt: float, period: float, jitter: float,
                      min_distance: float) -> int:
    """Activation count of one flat model entry at window ``dt``.

    Replicates the inlined arithmetic of
    :meth:`CanBusAnalysis._interference_of` operation for operation, so a
    count compared equal here guarantees the interference *sum* is
    bit-identical (same values, same summation order).
    """
    if dt <= 0:
        return 0
    value = (dt + jitter) / period
    nearest = round(value)
    if abs(value - nearest) <= _SNAP_EPS * (
            nearest if nearest > 1.0 else 1.0):
        activations = nearest
    else:
        activations = math.ceil(value)
    if min_distance > 0.0:
        capped = _ceil_div(dt, min_distance) + 1
        if capped < activations:
            activations = capped
    return activations


def _seed_unaffected(changed_hp: Sequence[tuple], own_id: int,
                     seed: MessageResponseTime, bit_time: float) -> bool:
    """Whether a converged seed is *provably still the exact fixed point*.

    ``changed_hp`` lists ``(can_id, old_params, new_params)`` for every
    re-modelled message (params are ``(period, jitter, min_distance)``).
    The seed's busy period and per-instance queuing delays are exact fixed
    points of the old right-hand side (the kernel iterates to exact float
    equality); the new right-hand side differs only in the changed entries'
    activation counts.  If every changed higher-priority count is unchanged
    at every seed window, the new RHS reproduces the seed bit-for-bit, and
    a reproduced seed is a fixed point that the dominance precondition
    (seed <= new least fixed point) pins to *the* least fixed point -- so
    the cached result can be returned without touching the other
    ``|hp| - |changed|`` interference terms at all.

    Only sound for messages whose **own** model is unchanged (jitter and
    arrival offsets enter the response assembly directly) under a plan
    whose basis shares structure, blocking, error model and horizon -- the
    caller guarantees all of that.
    """
    for can_id, old_params, new_params in changed_hp:
        if can_id >= own_id:
            continue
        dt = seed.busy_period + bit_time
        if _flat_activations(dt, *old_params) != _flat_activations(
                dt, *new_params):
            return False
        for window in seed.queuing_delays:
            dt = window + bit_time
            if _flat_activations(dt, *old_params) != _flat_activations(
                    dt, *new_params):
                return False
    return True


def _error_model_dominates(old: ErrorModel, new: ErrorModel) -> bool:
    """Whether ``new.overhead >= old.overhead`` pointwise (conservative).

    Unknown combinations return ``False`` and force a cold start, never a
    wrong warm start.
    """
    if old == new:
        return True
    if isinstance(old, NoErrors) or type(old) is ErrorModel:
        return True
    if isinstance(old, SporadicErrorModel) and isinstance(
            new, SporadicErrorModel):
        return new.min_interarrival <= old.min_interarrival
    if isinstance(old, BurstErrorModel) and isinstance(new, BurstErrorModel):
        return (new.min_interarrival <= old.min_interarrival
                and new.burst_length >= old.burst_length
                and new.intra_burst_gap <= old.intra_burst_gap)
    if isinstance(old, CompositeErrorModel) and isinstance(
            new, CompositeErrorModel):
        if len(old.components) != len(new.components):
            return False
        return all(_error_model_dominates(o, n) for o, n in
                   zip(old.components, new.components))
    return False


# --------------------------------------------------------------------------- #
# Per-configuration profile (what the planner compares)
# --------------------------------------------------------------------------- #
class _Profile:
    """Analysis-relevant facts of one configuration, indexed for planning."""

    __slots__ = ("names", "ids", "senders", "tx", "best_tx", "models",
                 "order", "pos", "horizon", "message_set", "bus",
                 "controllers", "error_model")

    def __init__(self, config: BusConfiguration,
                 analysis: CanBusAnalysis) -> None:
        kmatrix = config.kmatrix
        self.names: tuple[str, ...] = tuple(m.name for m in kmatrix)
        self.ids: dict[str, int] = {m.name: m.can_id for m in kmatrix}
        self.senders: dict[str, str] = {m.name: m.sender for m in kmatrix}
        # The analysis froze these maps at construction; referencing them
        # keeps profile building O(1) in the per-message dimensions.
        self.tx: Mapping[str, float] = analysis._transmission_times
        self.best_tx: Mapping[str, float] = analysis._best_case_times
        self.models: Mapping[str, EventModel] = analysis._models
        order = sorted(self.names, key=lambda n: self.ids[n])
        self.order: tuple[str, ...] = tuple(order)
        self.pos: dict[str, int] = {n: i for i, n in enumerate(order)}
        self.horizon: float = _MAX_BUSY_PERIOD_FACTOR * max(
            (m.period for m in kmatrix), default=1.0)
        self.message_set: frozenset[str] = frozenset(self.names)
        self.bus = config.bus
        self.controllers = dict(config.controllers or {})
        self.error_model = config.error_model


class _Key:
    """Analysis-key wrapper caching its (expensive, per-message) hash.

    One query performs several cache operations on the same key; hashing the
    80-message tuple once instead of per operation keeps fingerprinting off
    the hot path.  The display ``digest`` is a *deterministic* sha1 over the
    key's repr (process hashes are ``PYTHONHASHSEED``-randomised, and query
    reports must stay byte-identical across runs and parallel modes); it is
    computed lazily so pure sweeps never pay for it.
    """

    __slots__ = ("value", "_hash", "_digest")

    def __init__(self, value: tuple) -> None:
        self.value = value
        self._hash = hash(value)
        self._digest: str | None = None

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, _Key):
            return NotImplemented
        return self._hash == other._hash and self.value == other.value

    def __repr__(self) -> str:
        return f"cfg:{self.digest}"

    @property
    def digest(self) -> str:
        if self._digest is None:
            self._digest = hashlib.sha1(
                repr(self.value).encode()).hexdigest()[:12]
        return self._digest


class _CacheEntry:
    """One analysed configuration: kernel, fixed point, planning profile."""

    __slots__ = ("key", "config", "analysis", "profile", "results")

    def __init__(self, key: _Key, config: BusConfiguration,
                 analysis: CanBusAnalysis, profile: _Profile) -> None:
        self.key = key
        self.config = config
        self.analysis = analysis
        self.profile = profile
        self.results: dict[str, MessageResponseTime] = {}

    @property
    def digest(self) -> str:
        return self.key.digest

    def blocking_of(self, name: str) -> float:
        """Blocking term of one message (cached inside the kernel)."""
        return self.analysis.blocking(self.config.kmatrix.get(name))


# --------------------------------------------------------------------------- #
# Query result objects
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SessionStats:
    """Lifetime counters of one :class:`AnalysisSession`.

    ``cache_hits`` counts queries answered entirely from a cached
    fingerprint; ``cache_misses`` is the remainder.  The plan counters
    (``reused`` / ``warm_started`` / ``cold``) aggregate the per-message
    actions of every *computed* query (cache-hit queries never plan), so
    they describe how much incremental structure the session exploited.
    """

    name: str
    cached_configs: int
    queries: int
    cache_hits: int
    evictions: int
    reused: int
    warm_started: int
    cold: int

    @property
    def cache_misses(self) -> int:
        """Queries that required at least a plan (not a pure cache hit)."""
        return self.queries - self.cache_hits

    def as_row(self) -> list[object]:
        """Row for :func:`repro.reporting.tables.format_session_stats`."""
        return [self.name, self.cached_configs, self.queries,
                self.cache_hits, self.cache_misses, self.evictions,
                self.reused, self.warm_started, self.cold]

    def describe(self) -> str:
        return (f"{self.name}: {self.cached_configs} cached configs, "
                f"{self.queries} queries ({self.cache_hits} hits), "
                f"{self.evictions} evictions; plans: {self.reused} reused, "
                f"{self.warm_started} warm, {self.cold} cold")


@dataclass(frozen=True)
class QueryStats:
    """How the session obtained one query's results.

    ``basis`` is the cache key of the configuration the incremental plan
    started from (its deterministic digest renders lazily -- fingerprints
    are only materialised when someone reads them).
    """

    total: int
    reused: int
    warm_started: int
    cold: int
    cache_hit: bool = False
    basis: Optional[object] = None

    @property
    def basis_fingerprint(self) -> Optional[str]:
        """Digest of the basis configuration (``None`` for cold plans)."""
        if self.basis is None:
            return None
        return self.basis.digest if isinstance(self.basis, _Key) \
            else str(self.basis)

    def describe(self) -> str:
        if self.cache_hit:
            return f"cache hit ({self.total} messages)"
        basis = self.basis_fingerprint
        return (f"{self.reused} reused, {self.warm_started} warm-started, "
                f"{self.cold} cold of {self.total} messages"
                + (f" (basis {basis})" if basis else ""))


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one what-if query against a session.

    ``fingerprint`` identifies the analysed configuration (a deterministic
    digest, stable across processes and parallel modes); passing the whole
    result back as ``warm_from=`` of a later query declares it the
    preferred incremental basis (sweeps chain their points this way).
    """

    label: Optional[str]
    deltas: tuple[Delta, ...]
    results: Mapping[str, MessageResponseTime]
    report: Optional[SchedulabilityReport]
    stats: QueryStats
    key: object = field(repr=False, compare=False, default=None)

    @property
    def fingerprint(self) -> str:
        """Digest of the analysed configuration (rendered lazily)."""
        return self.key.digest if isinstance(self.key, _Key) else ""

    def worst_case(self, name: str) -> float:
        """Worst-case response time of one message (ms)."""
        return self.results[name].worst_case

    def describe(self) -> str:
        """One-line summary used by examples and reports."""
        label = self.label or ", ".join(
            d.describe() for d in self.deltas) or "base"
        summary = self.stats.describe()
        if self.report is not None:
            summary += (f"; {len(self.report.missed)}/"
                        f"{len(self.report.verdicts)} deadline misses")
        return f"{label}: {summary}"


# --------------------------------------------------------------------------- #
# The session
# --------------------------------------------------------------------------- #
class AnalysisSession:
    """What-if query engine over one base bus configuration.

    Parameters mirror :class:`~repro.analysis.response_time.CanBusAnalysis`
    plus ``deadline_policy`` (for the reports) and ``max_cached_configs``
    (LRU bound on cached kernels; the base configuration is never evicted).
    """

    def __init__(
        self,
        kmatrix: KMatrix,
        bus: CanBus,
        error_model: ErrorModel | None = None,
        assumed_jitter_fraction: float = 0.0,
        controllers: Mapping[str, ControllerModel] | None = None,
        event_models: Mapping[str, EventModel] | None = None,
        deadline_policy: str = "period",
        max_cached_configs: int = 128,
        name: str | None = None,
        backend: str | None = None,
        metrics=None,
        store=None,
    ) -> None:
        if max_cached_configs < 2:
            raise ValueError("max_cached_configs must be at least 2")
        self.name = name or f"session:{bus.name}"
        # Resolved once so every kernel this session builds uses the same
        # fixed-point backend (results are backend-independent bit for bit).
        self.backend = resolve_backend(backend)
        self._base = BusConfiguration(
            kmatrix=kmatrix,
            bus=bus,
            error_model=error_model if error_model is not None else NoErrors(),
            assumed_jitter_fraction=assumed_jitter_fraction,
            controllers=dict(controllers) if controllers else None,
            event_models=dict(event_models) if event_models else None,
            deadline_policy=deadline_policy,
        )
        self._base_key = _Key(self._base.analysis_key())
        self._max_cached = max_cached_configs
        self._cache: OrderedDict[_Key, _CacheEntry] = OrderedDict()
        # Applying a delta sequence rebuilds the K-Matrix; repeated
        # sequences (a sweep's points, a GA parent looked up per child)
        # resolve through this memo instead.
        self._delta_memo: OrderedDict[
            tuple, tuple[BusConfiguration, _Key]] = OrderedDict()
        self._lock = threading.Lock()
        self._last_key: _Key | None = None
        self.queries = 0
        self.cache_hits = 0
        self.evictions = 0
        self.plan_reused = 0
        self.plan_warm = 0
        self.plan_cold = 0
        # Optional repro.store.ResultStore.  Consulted when the in-memory
        # cache cannot serve a query; converged full fixed points are
        # published back so a restarted daemon warm-starts from disk.
        # Every cached value is the canonical cold-start value (module
        # docstring invariant), so store round-trips stay bit-identical.
        self.store = store
        self.store_hits = 0
        self._published: set[str] = set()
        # Optional repro.obs.MetricsRegistry.  Instruments are bound once
        # here so the per-query publication below is plain `inc` calls --
        # the disabled path pays exactly one `is not None` compare.
        self.metrics = metrics
        if metrics is not None:
            self._m_queries = metrics.counter("session_queries_total")
            self._m_hits = metrics.counter("session_cache_hits_total")
            self._m_misses = metrics.counter("session_cache_misses_total")
            self._m_plan = {
                "reuse": metrics.counter(
                    "session_plan_messages_total", action="reuse"),
                "warm": metrics.counter(
                    "session_plan_messages_total", action="warm"),
                "cold": metrics.counter(
                    "session_plan_messages_total", action="cold"),
            }
            self._m_evictions = metrics.counter("session_evictions_total")
            self._m_iterations = metrics.histogram(
                "solver_iterations", buckets=ITERATION_BUCKETS)
            self._m_batch = metrics.histogram(
                "solver_batch_size", buckets=SIZE_BUCKETS)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(cls, config: BusConfiguration,
                    **kwargs) -> "AnalysisSession":
        """Session over an explicit :class:`BusConfiguration`."""
        return cls(
            kmatrix=config.kmatrix, bus=config.bus,
            error_model=config.error_model,
            assumed_jitter_fraction=config.assumed_jitter_fraction,
            controllers=config.controllers, event_models=config.event_models,
            deadline_policy=config.deadline_policy, **kwargs)

    @classmethod
    def from_segment(cls, segment, controllers=None,
                     **kwargs) -> "AnalysisSession":
        """Session over one :class:`~repro.core.system.BusSegment`."""
        return cls(
            kmatrix=segment.kmatrix, bus=segment.bus,
            error_model=segment.error_model,
            assumed_jitter_fraction=segment.assumed_jitter_fraction,
            controllers=controllers, deadline_policy=segment.deadline_policy,
            **kwargs)

    @classmethod
    def from_system(cls, system, bus_name: str, **kwargs) -> "AnalysisSession":
        """Session over one bus of a :class:`~repro.core.system.SystemModel`."""
        segment = system.buses[bus_name]
        return cls.from_segment(
            segment, controllers=system.controllers or None, **kwargs)

    # ------------------------------------------------------------------ #
    # Public queries
    # ------------------------------------------------------------------ #
    @property
    def base_config(self) -> BusConfiguration:
        """The session's base configuration (deltas apply on top of it)."""
        return self._base

    def key_for(self, deltas: Sequence[Delta] = ()) -> "_Key":
        """Opaque cache key of the configuration a delta sequence yields.

        Useful to name a warm-start basis without keeping the whole
        :class:`QueryResult` around (the GA's parent seeding does this).
        """
        return self._resolve(tuple(deltas))[1]

    def _resolve(self, deltas: tuple) -> tuple[BusConfiguration, "_Key"]:
        """Delta sequence -> (configuration, cache key), memoised."""
        if not deltas:
            return self._base, self._base_key
        entry = self._delta_memo.get(deltas)
        if entry is None:
            config = apply_deltas(self._base, deltas)
            entry = (config, _Key(config.analysis_key()))
            with self._lock:
                self._delta_memo[deltas] = entry
                while len(self._delta_memo) > 4 * self._max_cached:
                    self._delta_memo.popitem(last=False)
        return entry

    def analyze(self) -> QueryResult:
        """Analyse (or fetch) the base configuration."""
        return self.query(())

    def query(
        self,
        deltas: Sequence[Delta] = (),
        *,
        warm_from: "QueryResult | tuple | Iterable | None" = None,
        message_names: Sequence[str] | None = None,
        deadline_policy: str | None = None,
        label: str | None = None,
        with_report: bool = True,
        cancel: "CancelToken | None" = None,
        trace=None,
    ) -> QueryResult:
        """Run one what-if query.

        Parameters
        ----------
        deltas:
            Typed deltas applied (left to right) to the base configuration.
        warm_from:
            Preferred incremental bases: previous :class:`QueryResult`
            objects or ``key_for`` keys.  The session additionally considers
            the previous query and the base configuration and picks the
            basis whose plan does the least work; an unusable basis only
            costs speed, never exactness.
        message_names:
            Restrict the query to these messages (their results depend only
            on higher-priority *models*, so a subset query returns exactly
            the full query's values for those names).
        deadline_policy:
            Deadline interpretation for the report (default: the
            configuration's).
        label:
            Optional human-readable name carried into the result.
        with_report:
            Skip the schedulability report when ``False`` (pure sweeps that
            only consume response times save the verdict construction).
        cancel:
            Optional :class:`repro.cancel.CancelToken` checked between
            fixed-point iterations; a fired token raises
            :class:`repro.cancel.Cancelled` before any cache state is
            updated, so a cancelled query leaves the session exactly as it
            was (already-cached answers keep being served).
        trace:
            Optional :class:`repro.obs.Trace`; when present the session
            records ``session_plan`` (delta resolution, cache lookup,
            plan choice) and ``solve`` (fixed-point execution) spans.
        """
        plan_span = None if trace is None else trace.begin("session_plan")
        config, key = self._resolve(tuple(deltas))
        needed = None if message_names is None else [
            str(n) for n in message_names]
        if needed is not None:
            for n in needed:
                if n not in config.kmatrix:
                    raise KeyError(n)
        policy = deadline_policy or config.deadline_policy

        # Only cache bookkeeping runs under the lock; analyses and report
        # construction (both pure) happen outside so concurrent queries on
        # one session genuinely overlap.
        hit_stats = None
        with self._lock:
            self.queries += 1
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                covered = set(entry.results)
                wanted = set(needed) if needed is not None else set(
                    entry.profile.names)
                if wanted <= covered:
                    self.cache_hits += 1
                    self._last_key = key
                    hit_stats = QueryStats(
                        total=len(wanted), reused=len(wanted),
                        warm_started=0, cold=0, cache_hit=True,
                        basis=entry.key)
            if hit_stats is None:
                bases = self._basis_candidates(warm_from, key)
        if hit_stats is not None:
            if trace is not None:
                trace.end(plan_span)
                trace.record("solve", 0.0)
            if self.metrics is not None:
                self._m_queries.inc()
                self._m_hits.inc()
            return self._finish(entry, config, tuple(deltas), needed, policy,
                                label, hit_stats, with_report=with_report)

        analysis = entry.analysis if entry is not None \
            else config.build_analysis(backend=self.backend)
        profile = entry.profile if entry is not None \
            else _Profile(config, analysis)

        # Persistent-store lookup: the in-memory cache cannot serve this
        # query, but a prior process may have persisted the converged fixed
        # point for exactly this fingerprint.
        if self.store is not None:
            stored = self._store_lookup(key, profile, trace)
            if stored is not None:
                with self._lock:
                    entry = self._cache.get(key)
                    if entry is None:
                        entry = _CacheEntry(key, config, analysis, profile)
                        self._cache[key] = entry
                        self._evict_locked(protect=key)
                    for msg_name, value in stored.items():
                        entry.results.setdefault(msg_name, value)
                    self._cache.move_to_end(key)
                    self._last_key = key
                    self.cache_hits += 1
                    self.store_hits += 1
                wanted = set(needed) if needed is not None \
                    else set(profile.names)
                hit_stats = QueryStats(
                    total=len(wanted), reused=len(wanted),
                    warm_started=0, cold=0, cache_hit=True, basis=entry.key)
                if trace is not None:
                    trace.end(plan_span)
                    trace.record("solve", 0.0)
                if self.metrics is not None:
                    self._m_queries.inc()
                    self._m_hits.inc()
                return self._finish(
                    entry, config, tuple(deltas), needed, policy, label,
                    hit_stats, with_report=with_report)

        plan, basis, adopt_changed, fast_ok = self._choose_plan(
            profile, analysis, config, bases, needed)
        if trace is not None:
            trace.end(plan_span)
            solve_span = trace.begin("solve")
        iterations_before = analysis.profile_iterations
        stats, results = self._execute(
            config, analysis, profile, plan, basis, needed,
            existing=entry.results if entry is not None else None,
            adopt_changed=adopt_changed, fast_ok=fast_ok, cancel=cancel)
        if trace is not None:
            trace.end(solve_span)
        if self.metrics is not None:
            self._m_queries.inc()
            self._m_misses.inc()
            self._m_plan["reuse"].inc(stats.reused)
            self._m_plan["warm"].inc(stats.warm_started)
            self._m_plan["cold"].inc(stats.cold)
            self._m_iterations.observe(
                analysis.profile_iterations - iterations_before)
            self._m_batch.observe(stats.warm_started + stats.cold)

        with self._lock:
            entry = self._cache.get(key)
            if entry is None:
                entry = _CacheEntry(key, config, analysis, profile)
                self._cache[key] = entry
                self._evict_locked(protect=key)
            entry.results.update(results)
            self._cache.move_to_end(key)
            self._last_key = key
            self.plan_reused += stats.reused
            self.plan_warm += stats.warm_started
            self.plan_cold += stats.cold
            publish = None
            if self.store is not None \
                    and len(entry.results) == len(profile.names) \
                    and key.digest not in self._published:
                publish = dict(entry.results)
        if publish is not None:
            self._store_publish(key, publish)
        stats = QueryStats(
            total=stats.total, reused=stats.reused,
            warm_started=stats.warm_started, cold=stats.cold,
            basis=basis.key if basis is not None else None)
        return self._finish(entry, config, tuple(deltas), needed, policy,
                            label, stats, with_report=with_report)

    def describe(self) -> str:
        """One-line session summary (cache occupancy and hit statistics)."""
        return (f"{self.name}: {len(self._cache)} cached configurations, "
                f"{self.queries} queries, {self.cache_hits} cache hits")

    def stats(self) -> SessionStats:
        """Snapshot of the session's lifetime counters (thread-safe)."""
        with self._lock:
            return SessionStats(
                name=self.name,
                cached_configs=len(self._cache),
                queries=self.queries,
                cache_hits=self.cache_hits,
                evictions=self.evictions,
                reused=self.plan_reused,
                warm_started=self.plan_warm,
                cold=self.plan_cold,
            )

    def input_models(self, deltas: Sequence[Delta] = (),
                     ) -> dict[str, EventModel]:
        """Per-message activation models of the configuration ``deltas`` yield.

        Exactly the models a fresh
        :class:`~repro.analysis.response_time.CanBusAnalysis` of that
        configuration would report via ``event_model`` -- the compositional
        engine derives output (arrival) event models from them.  Served from
        the cached kernel when the configuration was already analysed.
        """
        config, key = self._resolve(tuple(deltas))
        with self._lock:
            entry = self._cache.get(key)
        if entry is not None:
            return dict(entry.profile.models)
        overrides = dict(config.event_models or {})
        models: dict[str, EventModel] = {}
        for message in config.kmatrix:
            model = overrides.get(message.name)
            if model is None:
                model = message.event_model(config.assumed_jitter_fraction)
            models[message.name] = model
        return models

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _finish(self, entry: _CacheEntry, config: BusConfiguration,
                deltas: tuple, needed: list[str] | None, policy: str,
                label: str | None, stats: QueryStats,
                with_report: bool = True) -> QueryResult:
        report = None
        if needed is None:
            results = {m.name: entry.results[m.name]
                       for m in config.kmatrix}
            if with_report:
                report = report_from_results(
                    config.kmatrix, entry.analysis, results, policy)
        else:
            results = {n: entry.results[n] for n in needed}
        return QueryResult(
            label=label, deltas=deltas,
            results=results, report=report, stats=stats, key=entry.key)

    def _store_lookup(self, key: "_Key", profile: _Profile,
                      trace=None) -> dict[str, MessageResponseTime] | None:
        """Fetch this fingerprint's persisted fixed points, or ``None``.

        A payload only counts when it decodes cleanly *and* covers exactly
        the configuration's message set; anything else is treated as a miss
        (the store already counted the corruption) and the query cold-solves.
        """
        started = time.perf_counter()
        try:
            payload = self.store.get("bus", key.digest)
            if payload is None:
                return None
            try:
                results = bus_payload_from_json(payload)
            except Exception:
                return None
            if set(results) != set(profile.names):
                return None
            return results
        finally:
            if trace is not None:
                trace.record(
                    "store_lookup", (time.perf_counter() - started) * 1000.0)

    def _store_publish(self, key: "_Key",
                       results: dict[str, MessageResponseTime]) -> None:
        """Persist a complete converged fixed-point set (best-effort)."""
        digest = key.digest
        if self.store.contains("bus", digest):
            self._published.add(digest)
            return
        try:
            payload = bus_payload_to_json(results)
        except Exception:
            return
        if self.store.put("bus", digest, payload):
            self._published.add(digest)

    def _evict_locked(self, protect: "_Key | None" = None) -> None:
        """Drop LRU entries beyond the bound.

        ``protect`` names the entry being inserted right now: without it,
        a full cache would evict the newcomer itself (base and last are
        already immune) and the subsequent bookkeeping would KeyError.
        """
        while len(self._cache) > self._max_cached:
            for key in self._cache:
                if key != self._base_key and key != self._last_key \
                        and key != protect:
                    del self._cache[key]
                    self.evictions += 1
                    if self.metrics is not None:
                        self._m_evictions.inc()
                    break
            else:
                break

    def _basis_candidates(self, warm_from, new_key: "_Key",
                          ) -> list[_CacheEntry]:
        """Cached entries to consider as incremental bases (caller-preferred
        first, then the previous query, then the base configuration)."""
        keys: list[_Key] = []
        if warm_from is not None:
            if isinstance(warm_from, (QueryResult, _Key)):
                items = [warm_from]
            elif isinstance(warm_from, tuple) and not any(
                    isinstance(item, (QueryResult, _Key))
                    for item in warm_from):
                # A bare tuple of neither results nor keys is a raw
                # analysis-key tuple, not a collection of bases.
                items = [warm_from]
            else:
                items = warm_from
            for item in items:
                key = item.key if isinstance(item, QueryResult) else item
                if isinstance(key, tuple):
                    key = _Key(key)
                keys.append(key)
        if self._last_key is not None:
            keys.append(self._last_key)
        keys.append(self._base_key)
        entries: list[_CacheEntry] = []
        seen: set[int] = set()
        for key in keys:
            if key == new_key:
                continue
            entry = self._cache.get(key)
            if entry is not None and id(entry) not in seen:
                seen.add(id(entry))
                entries.append(entry)
        return entries

    def _choose_plan(self, profile: _Profile, analysis: CanBusAnalysis,
                     config: BusConfiguration,
                     bases: Sequence[_CacheEntry],
                     needed: Sequence[str] | None,
                     ) -> tuple[dict[str, str], _CacheEntry | None,
                                set[str] | None, bool]:
        """Plan against each candidate basis; keep the cheapest.

        The third element names the changed event models when the winning
        basis satisfies the kernel-adoption precondition of
        :meth:`CanBusAnalysis.adopt_kernels` (``None`` otherwise); the
        fourth flags whether warm seeds may additionally go through the
        :func:`_seed_unaffected` re-verification shortcut (structure,
        blocking, error model and horizon all carried over).
        """
        wanted = list(needed) if needed is not None else list(profile.names)
        best_plan = {name: _COLD for name in wanted}
        best_basis = None
        best_changed: set[str] | None = None
        best_fast = False
        best_cost = len(wanted) * 10
        for basis in bases:
            outcome = self._plan(profile, analysis, config, basis, wanted)
            if outcome is None:
                continue
            plan, adopt_changed, fast_ok = outcome
            colds = sum(1 for a in plan.values() if a == _COLD)
            warms = sum(1 for a in plan.values() if a == _WARM)
            cost = 10 * colds + warms
            if cost < best_cost:
                best_plan, best_basis, best_cost = plan, basis, cost
                best_changed = adopt_changed
                best_fast = fast_ok
            if colds == 0:
                # Nothing left to gain from another basis: a different one
                # could at best turn warm starts into reuses, which a later
                # exact-fingerprint hit handles anyway.
                break
        return best_plan, best_basis, best_changed, best_fast

    def _plan(self, new: _Profile, analysis: CanBusAnalysis,
              config: BusConfiguration, basis: _CacheEntry,
              wanted: Sequence[str],
              ) -> tuple[dict[str, str], set[str] | None, bool] | None:
        """Per-message action plan against one basis, or ``None``.

        ``None`` means the basis is structurally unusable (different bus
        timing, controllers or senders): every comparison below assumes
        transmission times and blocking groupings carry over.
        """
        old = basis.profile
        if new.bus != old.bus or new.controllers != old.controllers:
            return None
        common = new.message_set & old.message_set
        for name in common:
            if new.senders[name] != old.senders[name] \
                    or new.tx[name] != old.tx[name] \
                    or new.best_tx[name] != old.best_tx[name]:
                return None
        # Deltas preserve the relative K-Matrix order of surviving messages;
        # interference sums run in that order, so reuse requires it.
        if [n for n in old.names if n in common] != [
                n for n in new.names if n in common]:
            return None

        error_same = new.error_model == old.error_model
        error_dom = error_same or _error_model_dominates(
            old.error_model, new.error_model)
        horizon_same = new.horizon == old.horizon
        changed = {name for name in common
                   if not _models_identical(old.models[name],
                                            new.models[name])}
        all_dominate = error_dom and all(
            _model_dominates(old.models[name], new.models[name])
            for name in changed)

        if new.names == old.names and new.ids == old.ids:
            # Same structure: kernels can be adopted from the basis with
            # only the changed model entries patched, and warm seeds may be
            # re-verified through the O(|changed|) count check (sound only
            # when the error model and the divergence horizon also carried
            # over -- _seed_unaffected assumes both).
            return (self._plan_same_priorities(
                new, wanted, changed, error_same, all_dominate, horizon_same),
                changed, error_same and horizon_same)
        return (self._plan_new_priorities(
            new, analysis, config, basis, wanted, common, changed, error_same,
            all_dominate, horizon_same), None, False)

    def _plan_same_priorities(self, new: _Profile, wanted, changed,
                              error_same, all_dominate, horizon_same,
                              ) -> dict[str, str]:
        """Fast path: identical message set and identifiers.

        Only event models and the error model can differ, so a message is
        untouched exactly when nothing at or above its priority changed;
        blocking and interference membership are structurally preserved.
        """
        min_changed = min((new.ids[n] for n in changed), default=None)
        plan: dict[str, str] = {}
        for name in wanted:
            affected = (not error_same or name in changed
                        or (min_changed is not None
                            and min_changed < new.ids[name]))
            if not affected:
                plan[name] = _REUSE if horizon_same else _WARM
            elif all_dominate:
                plan[name] = _WARM
            else:
                plan[name] = _COLD
        return plan

    def _plan_new_priorities(self, new: _Profile, analysis: CanBusAnalysis,
                             config: BusConfiguration, basis: _CacheEntry,
                             wanted, common, changed, error_same,
                             all_dominate, horizon_same) -> dict[str, str]:
        """Slow path: priorities or matrix membership changed.

        Per message the higher-priority *name set* decides everything:

        * unchanged set (and nothing in it re-modelled, same blocking) --
          the interference sequence is bit-identical, so the cached result
          is reused;
        * the old set is a subset of the new one and every shared model only
          grew -- the old solution lower-bounds the new fixed point, so it
          warm-starts the iteration (the ``_parent_seeds`` criterion of the
          optimizer, generalised);
        * anything else is analysed cold.

        The subset test runs in O(n) overall via a running maximum over the
        basis priority order mapped into new positions.
        """
        old = basis.profile
        same_set = new.message_set == old.message_set
        # prefix_changed[k]: any of the k highest-priority basis messages
        # has a different event model (or left the matrix).
        prefix_changed = [False] * (len(old.order) + 1)
        # prefix_max[k]: largest new position among those k messages
        # (infinite when one of them no longer exists).
        prefix_max = [-1] * (len(old.order) + 1)
        infinity = len(new.order) + 1
        for k, name in enumerate(old.order):
            position = new.pos.get(name, infinity)
            prefix_max[k + 1] = max(prefix_max[k], position)
            prefix_changed[k + 1] = prefix_changed[k] or (
                name in changed or name not in common)

        plan: dict[str, str] = {}
        for name in wanted:
            if name not in common:
                plan[name] = _COLD
                continue
            k_new = new.pos[name]
            k_old = old.pos[name]
            subset_ok = prefix_max[k_old] < k_new
            sets_equal = subset_ok and k_old == k_new
            blocking_old = None
            blocking_new = None
            if not same_set or not sets_equal:
                # Membership around the message moved: compare the actual
                # blocking terms (max lower-priority frame + controller).
                blocking_old = basis.blocking_of(name)
                blocking_new = analysis.blocking(config.kmatrix.get(name))
            if (sets_equal and error_same and not prefix_changed[k_old]
                    and name not in changed
                    and (same_set or blocking_new == blocking_old)):
                plan[name] = _REUSE if horizon_same else _WARM
            elif (subset_ok and all_dominate
                  and (blocking_new is None
                       or blocking_new >= blocking_old)):
                plan[name] = _WARM
            else:
                plan[name] = _COLD
        return plan

    def _execute(self, config: BusConfiguration, analysis: CanBusAnalysis,
                 profile: _Profile, plan: Mapping[str, str],
                 basis: _CacheEntry | None,
                 needed: Sequence[str] | None,
                 existing: Mapping[str, MessageResponseTime] | None,
                 adopt_changed: set[str] | None = None,
                 fast_ok: bool = False,
                 cancel: "CancelToken | None" = None,
                 ) -> tuple[QueryStats, dict[str, MessageResponseTime]]:
        """Run the plan; every fall-back lands on an exact cold start."""
        reused = warm = cold = 0
        results: dict[str, MessageResponseTime] = {}
        wanted = None if needed is None else set(needed)
        horizon = profile.horizon
        changed_hp: list[tuple] | None = None
        bit_time = 0.0
        if basis is not None and adopt_changed is not None:
            # Structure-preserving basis: patch its frozen interference
            # tables instead of rebuilding them (see adopt_kernels).
            to_solve = [name for name, action in plan.items()
                        if action != _REUSE
                        and (existing is None or name not in existing)]
            analysis.adopt_kernels(
                basis.analysis,
                {name: profile.models[name] for name in adopt_changed},
                names=to_solve)
            if fast_ok and adopt_changed:
                # Warm seeds of messages whose own model is untouched can
                # be re-verified in O(|changed|) per seed window instead of
                # re-solved (see _seed_unaffected); all changed models are
                # flat-parameter ones here (all_dominate vetted them).
                old_models = basis.profile.models
                changed_hp = sorted(
                    (profile.ids[name],
                     (old_models[name].period, old_models[name].jitter,
                      old_models[name].min_distance),
                     (profile.models[name].period, profile.models[name].jitter,
                      profile.models[name].min_distance))
                    for name in adopt_changed)
                bit_time = profile.bus.bit_time_ms
        # First pass: settle every reuse decision and collect the messages
        # that actually need a fixed point, with their warm seeds.  The
        # solves then run as ONE batched pass (`response_times_batch`): under
        # the numpy backend the whole what-if query becomes a couple of
        # vectorized RHS evaluations across all messages instead of O(n)
        # scalar fixed-point loops.
        solve: list = []
        warm_seeded: set[str] = set()
        for message in config.kmatrix:
            name = message.name
            if wanted is not None and name not in wanted:
                continue
            if existing is not None and name in existing:
                results[name] = existing[name]
                reused += 1
                continue
            action = plan.get(name, _COLD)
            seed = basis.results.get(name) if basis is not None else None
            if (action == _WARM and changed_hp is not None
                    and seed is not None and seed.bounded
                    and name not in adopt_changed
                    and _seed_unaffected(changed_hp, profile.ids[name],
                                         seed, bit_time)):
                results[name] = seed
                reused += 1
                continue
            if action == _REUSE and seed is not None:
                fits = seed.bounded and seed.busy_period <= horizon and all(
                    w <= horizon for w in seed.queuing_delays)
                if fits or (not seed.bounded
                            and basis.profile.horizon == horizon):
                    results[name] = seed
                    reused += 1
                    continue
                action = _WARM if seed.bounded else _COLD
            results[name] = None  # placeholder keeps K-Matrix order
            if action == _WARM and seed is not None and seed.bounded:
                solve.append((message, seed))
                warm_seeded.add(name)
                warm += 1
            else:
                solve.append((message, None))
                cold += 1
        if solve:
            solved = analysis.response_times_batch(solve, cancel=cancel)
            # Keep cached divergent values canonical (cold-start): re-run
            # warm-seeded messages that diverged, again as one batch.
            retry = [message for message, _ in solve
                     if message.name in warm_seeded
                     and not solved[message.name].bounded]
            if retry:
                solved.update(analysis.response_times_batch(
                    [(message, None) for message in retry], cancel=cancel))
            for message, _ in solve:
                results[message.name] = solved[message.name]
        total = reused + warm + cold
        return QueryStats(total=total, reused=reused, warm_started=warm,
                          cold=cold), results

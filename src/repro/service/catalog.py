"""Named what-if scenarios and the catalog that registers them.

A :class:`WhatIfScenario` is a reproducible, picklable description of one
exploration: an ordered sequence of :class:`ScenarioQuery` steps, each a
delta list applied to a session's base configuration.  Steps marked
``chain=True`` declare the previous step as their preferred incremental
basis, which is how the paper's ascending jitter sweep and the
benign-to-harsh error sweep re-use fixed points.

The :class:`ScenarioCatalog` maps scenario names to definitions -- the
pattern of oq-engine's registered, parameterised calculation runs: a batch
runner or a CLI can execute "paper-jitter-sweep" against any session and get
the same tracked inputs and report shape every time.  :func:`builtin_catalog`
registers the paper's families plus the multi-bus and scaling families that
the ROADMAP's scale-out work uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors.models import (
    BurstErrorModel,
    NoErrors,
    SporadicErrorModel,
)
from repro.service.deltas import (
    BusDelta,
    DeadlinePolicyDelta,
    Delta,
    ErrorModelDelta,
    JitterDelta,
    PriorityDelta,
)
from repro.service.session import AnalysisSession, QueryResult

#: The paper's Figure-4/5 jitter axis (0..60 % in 5 % steps).
PAPER_JITTER_FRACTIONS: tuple[float, ...] = tuple(
    round(0.05 * i, 2) for i in range(13))

#: Error inter-arrival sweep, benign to harsh (matches sensitivity.error).
PAPER_ERROR_INTERARRIVALS_MS: tuple[float, ...] = (
    1000.0, 500.0, 200.0, 100.0, 50.0, 20.0, 10.0, 5.0)


@dataclass(frozen=True)
class ScenarioQuery:
    """One step of a scenario: a labelled delta list.

    ``chain`` marks the previous step's configuration as the preferred
    warm-start basis (exactness never depends on it -- see the session).
    """

    label: str
    deltas: tuple[Delta, ...] = ()
    chain: bool = True


@dataclass(frozen=True)
class ScenarioRunResult:
    """Deterministically ordered results of one scenario run."""

    scenario: str
    session: str
    queries: tuple[QueryResult, ...]

    def rows(self) -> list[list[object]]:
        """(query, loss fraction, worst slack, reused, warm, cold) rows."""
        rows: list[list[object]] = []
        for query in self.queries:
            report = query.report
            loss = report.loss_fraction if report is not None else float("nan")
            slack = (report.worst_normalized_slack
                     if report is not None else float("nan"))
            rows.append([query.label or query.fingerprint, loss, slack,
                        query.stats.reused, query.stats.warm_started,
                        query.stats.cold])
        return rows

    def to_table(self, title: Optional[str] = None) -> str:
        """Render via :func:`repro.reporting.tables.format_whatif_table`."""
        from repro.reporting.tables import format_whatif_table
        return format_whatif_table(
            self.rows(), title=title or f"What-if scenario {self.scenario!r} "
                                        f"on {self.session}")

    def describe(self) -> str:
        """Multi-line summary, one line per query."""
        lines = [f"Scenario {self.scenario!r} on {self.session}:"]
        lines.extend("  " + q.describe() for q in self.queries)
        return "\n".join(lines)


@dataclass(frozen=True)
class WhatIfScenario:
    """A named, reproducible sequence of what-if queries."""

    name: str
    queries: tuple[ScenarioQuery, ...]
    description: str = ""

    def run(self, session: AnalysisSession,
            cancel=None) -> ScenarioRunResult:
        """Execute every query against ``session`` in definition order.

        ``cancel`` (a :class:`repro.cancel.CancelToken`) bounds the whole
        run: it is threaded into every step's fixed-point loops.
        """
        previous: QueryResult | None = None
        out: list[QueryResult] = []
        for query in self.queries:
            result = session.query(
                query.deltas,
                warm_from=previous if query.chain else None,
                label=query.label,
                cancel=cancel)
            out.append(result)
            previous = result
        return ScenarioRunResult(scenario=self.name, session=session.name,
                                 queries=tuple(out))

    def describe(self) -> str:
        return (f"{self.name}: {len(self.queries)} queries"
                + (f" -- {self.description}" if self.description else ""))


class ScenarioCatalog:
    """Registry of named what-if scenarios."""

    def __init__(self) -> None:
        self._scenarios: dict[str, WhatIfScenario] = {}

    def register(self, scenario: WhatIfScenario,
                 overwrite: bool = False) -> WhatIfScenario:
        """Register a scenario under its name; returns it for chaining."""
        if not overwrite and scenario.name in self._scenarios:
            raise ValueError(f"scenario {scenario.name!r} already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> WhatIfScenario:
        """Look up a scenario by name."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; registered: "
                f"{', '.join(sorted(self._scenarios)) or 'none'}") from None

    def names(self) -> list[str]:
        """All registered scenario names, sorted."""
        return sorted(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __iter__(self) -> Iterator[WhatIfScenario]:
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)

    def run(self, name: str, session: AnalysisSession,
            cancel=None) -> ScenarioRunResult:
        """Execute a registered scenario against a session."""
        return self.get(name).run(session, cancel=cancel)

    def describe(self) -> str:
        """Multi-line inventory of the catalog."""
        lines = [f"Scenario catalog ({len(self)} scenarios):"]
        lines.extend("  " + self._scenarios[name].describe()
                     for name in self.names())
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Scenario families
# --------------------------------------------------------------------------- #
def jitter_sweep_scenario(
    fractions: Sequence[float] = PAPER_JITTER_FRACTIONS,
    name: str = "paper-jitter-sweep",
) -> WhatIfScenario:
    """The paper's global jitter sweep as a chained what-if scenario."""
    ordered = sorted(fractions)
    queries = tuple(
        ScenarioQuery(label=f"jitter {fraction:.0%}",
                      deltas=(JitterDelta(fraction=fraction),))
        for fraction in ordered)
    return WhatIfScenario(
        name=name, queries=queries,
        description="assumed jitter fraction swept over all unknown jitters")


def message_jitter_sweep_scenario(
    message_name: str,
    jitters_ms: Sequence[float],
    name: str | None = None,
) -> WhatIfScenario:
    """Sweep one message's send jitter -- "what if this sender degrades"."""
    ordered = sorted(jitters_ms)
    queries = tuple(
        ScenarioQuery(label=f"J({message_name})={jitter:g}ms",
                      deltas=(JitterDelta(message_name=message_name,
                                          jitter=jitter),))
        for jitter in ordered)
    return WhatIfScenario(
        name=name or f"jitter-whatif-{message_name}", queries=queries,
        description=f"send jitter of {message_name} swept upwards")


def error_sweep_scenario(
    interarrivals_ms: Sequence[float] = PAPER_ERROR_INTERARRIVALS_MS,
    kind: str = "sporadic",
    name: str | None = None,
) -> WhatIfScenario:
    """Benign-to-harsh error-rate sweep (chained warm starts stay valid)."""
    if kind not in ("sporadic", "burst"):
        raise ValueError(f"unknown error model kind {kind!r}")
    ordered = sorted(interarrivals_ms, reverse=True)
    queries = []
    for interarrival in ordered:
        if kind == "sporadic":
            model = SporadicErrorModel(min_interarrival=interarrival)
        else:
            model = BurstErrorModel(
                min_interarrival=interarrival, burst_length=3,
                intra_burst_gap=min(0.5, interarrival / 10.0))
        queries.append(ScenarioQuery(
            label=f"errors >= {interarrival:g}ms",
            deltas=(ErrorModelDelta(model),)))
    return WhatIfScenario(
        name=name or f"paper-error-sweep-{kind}", queries=tuple(queries),
        description=f"{kind} error inter-arrival swept benign to harsh")


def paper_operating_points_scenario(
    jitter_fractions: Sequence[float] = (0.15, 0.25),
    name: str = "paper-operating-points",
) -> WhatIfScenario:
    """The Figure-5 optimisation operating points as what-if queries.

    Mirrors :func:`repro.optimize.objectives.paper_scenarios`: per jitter
    fraction a benign interpretation (no stuffing, no errors, period
    deadlines) and a worst-case one (stuffing, burst errors, min-rearrival
    deadlines).  Bus parameters differ between steps, so no chaining.
    """
    from repro.experiments import WORST_CASE_ERRORS
    burst = WORST_CASE_ERRORS
    queries = []
    for fraction in jitter_fractions:
        queries.append(ScenarioQuery(
            label=f"best-case@{fraction:.0%}",
            deltas=(BusDelta(bit_stuffing=False),
                    ErrorModelDelta(NoErrors()),
                    JitterDelta(fraction=fraction),
                    DeadlinePolicyDelta("period")),
            chain=False))
        queries.append(ScenarioQuery(
            label=f"worst-case@{fraction:.0%}",
            deltas=(BusDelta(bit_stuffing=True),
                    ErrorModelDelta(burst),
                    JitterDelta(fraction=fraction),
                    DeadlinePolicyDelta("min-rearrival")),
            chain=False))
    return WhatIfScenario(
        name=name, queries=tuple(queries),
        description="the four operating points of the Figure-5 GA run")


def priority_swap_scenario(
    pairs: Sequence[tuple[str, str]],
    name: str = "priority-swaps",
) -> WhatIfScenario:
    """One query per identifier swap -- "what if we traded these two ids"."""
    queries = tuple(
        ScenarioQuery(label=f"swap {a}<->{b}",
                      deltas=(PriorityDelta(swap=(a, b)),), chain=False)
        for a, b in pairs)
    return WhatIfScenario(
        name=name, queries=queries,
        description="pairwise identifier swaps against the base assignment")


def builtin_catalog() -> ScenarioCatalog:
    """Catalog preloaded with the paper's scenario families."""
    catalog = ScenarioCatalog()
    catalog.register(jitter_sweep_scenario())
    catalog.register(jitter_sweep_scenario(
        fractions=tuple(round(0.02 * i, 2) for i in range(31)),
        name="jitter-sweep-fine"))
    catalog.register(error_sweep_scenario(kind="sporadic"))
    catalog.register(error_sweep_scenario(kind="burst"))
    catalog.register(paper_operating_points_scenario())
    return catalog

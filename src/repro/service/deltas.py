"""Typed what-if deltas and the configuration they mutate.

A what-if query never edits the OEM's K-Matrix in place: it describes the
hypothetical change as a small, typed *delta* -- "this message's jitter
grows", "the bus gets noisier", "these two priorities are swapped" -- and the
:class:`~repro.service.session.AnalysisSession` applies the delta to a
copy-on-write view of the base configuration.  Deltas are frozen dataclasses,
so a scenario (a named sequence of deltas) is itself a hashable, picklable
value that can be registered in a catalog, shipped to a worker process, and
reproduced exactly.

:class:`BusConfiguration` is the unit a delta transforms: one bus's K-Matrix
plus everything else :class:`~repro.analysis.response_time.CanBusAnalysis`
consumes.  ``apply`` returns a new configuration sharing every untouched
:class:`~repro.can.message.CanMessage` with its parent (messages are frozen,
so structural sharing is safe), which keeps a 100-query sweep from copying
the matrix 100 times over.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence

from repro.analysis.response_time import CanBusAnalysis
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import ErrorModel, NoErrors
from repro.events.model import EventModel


@dataclass(frozen=True)
class BusConfiguration:
    """Everything one bus analysis depends on, as a single immutable value.

    ``deadline_policy`` influences only the schedulability verdicts, never
    the response times; the session therefore excludes it from the analysis
    cache key and applies it when rendering a report.
    """

    kmatrix: KMatrix
    bus: CanBus
    error_model: ErrorModel = field(default_factory=NoErrors)
    assumed_jitter_fraction: float = 0.0
    controllers: Optional[Mapping[str, ControllerModel]] = None
    event_models: Optional[Mapping[str, EventModel]] = None
    deadline_policy: str = "period"

    @classmethod
    def from_segment(cls, segment,
                     controllers: Optional[Mapping[str, ControllerModel]]
                     = None) -> "BusConfiguration":
        """Configuration of one :class:`~repro.core.system.BusSegment`.

        (Duck-typed to avoid a ``service -> core`` import cycle; anything
        with the segment attributes works.)  The session pool and the
        system-level what-if layer both shard systems through this.
        """
        return cls(
            kmatrix=segment.kmatrix,
            bus=segment.bus,
            error_model=segment.error_model,
            assumed_jitter_fraction=segment.assumed_jitter_fraction,
            controllers=dict(controllers) if controllers else None,
            deadline_policy=segment.deadline_policy,
        )

    def build_analysis(self, backend: str | None = None) -> CanBusAnalysis:
        """Fresh analysis kernel for this configuration.

        ``backend`` selects the fixed-point execution backend (see
        :mod:`repro.analysis.backend`); it does not enter
        :meth:`analysis_key` because both backends are bit-identical.
        """
        return CanBusAnalysis(
            kmatrix=self.kmatrix,
            bus=self.bus,
            error_model=self.error_model,
            assumed_jitter_fraction=self.assumed_jitter_fraction,
            controllers=self.controllers,
            event_models=self.event_models,
            backend=backend,
        )

    def effective_event_model(self, name: str) -> EventModel:
        """The activation model the analysis assumes for one message.

        Resolved exactly as the kernel resolves it: an explicit
        ``event_models`` override wins, otherwise the K-Matrix row's own
        model under the configuration's assumed jitter fraction.  The
        conformance monitor compares observed arrival envelopes against
        this model to decide when a re-derivation is due.
        """
        override = (self.event_models or {}).get(name)
        if override is not None:
            return override
        return self.kmatrix.get(name).event_model(self.assumed_jitter_fraction)

    def analysis_key(self) -> tuple:
        """Hashable fingerprint of every analysis-relevant input.

        Two configurations with equal keys produce bit-identical
        ``analyze_all`` results; the deadline policy is deliberately left
        out (see the class docstring).
        """
        controllers = tuple(sorted((self.controllers or {}).items()))
        event_models = tuple(sorted((self.event_models or {}).items()))
        return (
            tuple(self.kmatrix.messages),
            self.bus,
            self.error_model,
            self.assumed_jitter_fraction,
            controllers,
            event_models,
        )


class Delta:
    """Base class of all what-if deltas (see the module docstring)."""

    def apply(self, config: BusConfiguration) -> BusConfiguration:
        """Return a new configuration with this delta applied."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner used in reports and query labels."""
        return type(self).__name__


def _replace_message(kmatrix: KMatrix, name: str,
                     message: CanMessage) -> KMatrix:
    """New matrix with one message replaced, sharing all the others."""
    if name not in kmatrix:
        raise KeyError(name)
    return KMatrix(messages=[
        message if m.name == name else m for m in kmatrix.messages])


@dataclass(frozen=True)
class JitterDelta(Delta):
    """Change send jitter: one message's, or the global assumed fraction.

    With ``message_name`` set, the named message's jitter becomes ``jitter``
    milliseconds (or ``fraction`` of its period).  Without it, ``fraction``
    replaces the configuration's assumed jitter fraction -- the paper's
    global "jitter in % of message period" knob applied to every message
    whose jitter the K-Matrix does not specify.
    """

    message_name: Optional[str] = None
    jitter: Optional[float] = None
    fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.jitter is None) == (self.fraction is None):
            raise ValueError("specify exactly one of jitter= or fraction=")
        if self.message_name is None and self.fraction is None:
            raise ValueError("a global JitterDelta needs fraction=")
        if self.jitter is not None and self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.fraction is not None and self.fraction < 0:
            raise ValueError("fraction must be non-negative")

    def apply(self, config: BusConfiguration) -> BusConfiguration:
        if self.message_name is None:
            return replace(config, assumed_jitter_fraction=self.fraction)
        message = config.kmatrix.get(self.message_name)
        value = self.jitter if self.jitter is not None \
            else self.fraction * message.period
        return replace(config, kmatrix=_replace_message(
            config.kmatrix, self.message_name, message.with_jitter(value)))

    def describe(self) -> str:
        if self.message_name is None:
            return f"assumed jitter -> {self.fraction:.0%}"
        if self.jitter is not None:
            return f"J({self.message_name}) -> {self.jitter:g} ms"
        return f"J({self.message_name}) -> {self.fraction:.0%} of period"


@dataclass(frozen=True)
class ErrorModelDelta(Delta):
    """Replace the bus-error model (e.g. "this segment gets noisier")."""

    error_model: ErrorModel = field(default_factory=NoErrors)

    def apply(self, config: BusConfiguration) -> BusConfiguration:
        return replace(config, error_model=self.error_model)

    def describe(self) -> str:
        return f"errors -> {self.error_model.describe()}"


@dataclass(frozen=True)
class PriorityDelta(Delta):
    """Re-assign CAN identifiers (the optimizer's and integrator's knob).

    Exactly one form must be given:

    ``swap``
        Exchange the identifiers of two named messages.
    ``order``
        A full priority order (highest first); the matrix's existing
        identifier pool is re-assigned along it -- the GA's encoding.
    ``id_by_name``
        Explicit identifier assignments (unnamed messages keep theirs).
    """

    swap: Optional[tuple[str, str]] = None
    order: Optional[tuple[str, ...]] = None
    id_by_name: Optional[tuple[tuple[str, int], ...]] = None

    def __post_init__(self) -> None:
        forms = [self.swap, self.order, self.id_by_name]
        if sum(form is not None for form in forms) != 1:
            raise ValueError(
                "specify exactly one of swap=, order= or id_by_name=")
        # Normalise sequences to tuples so the delta stays hashable.
        if self.swap is not None:
            object.__setattr__(self, "swap", tuple(self.swap))
        if self.order is not None:
            object.__setattr__(self, "order", tuple(self.order))
        if self.id_by_name is not None and not isinstance(
                self.id_by_name, tuple):
            object.__setattr__(
                self, "id_by_name", tuple(dict(self.id_by_name).items()))

    @classmethod
    def from_mapping(cls, id_by_name: Mapping[str, int]) -> "PriorityDelta":
        """Delta from a plain ``name -> can_id`` mapping."""
        return cls(id_by_name=tuple(sorted(id_by_name.items())))

    def apply(self, config: BusConfiguration) -> BusConfiguration:
        kmatrix = config.kmatrix
        if self.swap is not None:
            first, second = self.swap
            mapping = {first: kmatrix.get(second).can_id,
                       second: kmatrix.get(first).can_id}
        elif self.order is not None:
            names = {m.name for m in kmatrix}
            if set(self.order) != names or len(self.order) != len(names):
                raise ValueError(
                    "order= must be a permutation of the matrix's messages")
            pool = sorted(m.can_id for m in kmatrix)
            mapping = dict(zip(self.order, pool))
        else:
            mapping = dict(self.id_by_name)
        return replace(config, kmatrix=kmatrix.with_priorities(mapping))

    def describe(self) -> str:
        if self.swap is not None:
            return f"swap priorities {self.swap[0]} <-> {self.swap[1]}"
        if self.order is not None:
            return f"re-prioritise {len(self.order)} messages"
        return f"re-assign {len(self.id_by_name)} identifiers"


@dataclass(frozen=True)
class AddMessageDelta(Delta):
    """Add a message to the K-Matrix ("what if this ECU also sends ...")."""

    message: CanMessage = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not isinstance(self.message, CanMessage):
            raise ValueError("AddMessageDelta needs a CanMessage")

    def apply(self, config: BusConfiguration) -> BusConfiguration:
        return replace(config, kmatrix=KMatrix(
            messages=[*config.kmatrix.messages, self.message]))

    def describe(self) -> str:
        return (f"add {self.message.name} "
                f"(id=0x{self.message.can_id:X}, T={self.message.period:g}ms)")


@dataclass(frozen=True)
class RemoveMessageDelta(Delta):
    """Remove a message from the K-Matrix."""

    message_name: str = ""

    def __post_init__(self) -> None:
        if not self.message_name:
            raise ValueError("RemoveMessageDelta needs a message name")

    def apply(self, config: BusConfiguration) -> BusConfiguration:
        if self.message_name not in config.kmatrix:
            raise KeyError(self.message_name)
        return replace(config, kmatrix=KMatrix(messages=[
            m for m in config.kmatrix.messages if m.name != self.message_name]))

    def describe(self) -> str:
        return f"remove {self.message_name}"


@dataclass(frozen=True)
class EventModelDelta(Delta):
    """Replace or merge externally supplied activation models.

    This is the compositional engine's delta: every global iteration turns
    the propagated send models of one bus segment into an
    ``EventModelDelta`` and issues it to the segment's session, so the next
    iteration's bus analysis starts from cached kernels instead of being
    rebuilt.  ``models`` holds ``(message_name, event_model)`` pairs (kept
    sorted by name, so equal override maps hash equally); with
    ``replace=True`` the pairs *become* the configuration's override map,
    otherwise they are merged into the existing overrides.

    Event models are frozen dataclasses, so the delta stays hashable and
    picklable like every other delta.
    """

    models: tuple[tuple[str, EventModel], ...] = ()
    replace_all: bool = False

    def __post_init__(self) -> None:
        pairs = tuple(sorted(
            (str(name), model) for name, model in dict(self.models).items()))
        for _, model in pairs:
            if not isinstance(model, EventModel):
                raise ValueError(
                    f"EventModelDelta needs EventModel values, got {model!r}")
        object.__setattr__(self, "models", pairs)

    @classmethod
    def from_mapping(cls, models: Mapping[str, EventModel],
                     replace_all: bool = False) -> "EventModelDelta":
        """Delta from a plain ``name -> event model`` mapping."""
        return cls(models=tuple(sorted(models.items())),
                   replace_all=replace_all)

    def apply(self, config: BusConfiguration) -> BusConfiguration:
        for name, _ in self.models:
            if name not in config.kmatrix:
                raise KeyError(name)
        if self.replace_all:
            merged = dict(self.models)
        else:
            merged = dict(config.event_models or {})
            merged.update(self.models)
        return replace(config, event_models=merged or None)

    def describe(self) -> str:
        if not self.models:
            return "clear event-model overrides" if self.replace_all \
                else "event models unchanged"
        names = ", ".join(name for name, _ in self.models[:3])
        suffix = ", ..." if len(self.models) > 3 else ""
        return f"inject event models for {names}{suffix}"


@dataclass(frozen=True)
class BusDelta(Delta):
    """Change physical bus parameters (bit rate, stuffing assumption)."""

    bit_rate_bps: Optional[float] = None
    bit_stuffing: Optional[bool] = None

    def apply(self, config: BusConfiguration) -> BusConfiguration:
        bus = config.bus
        if self.bit_rate_bps is not None:
            bus = bus.with_bit_rate(self.bit_rate_bps)
        if self.bit_stuffing is not None:
            bus = bus.with_bit_stuffing(self.bit_stuffing)
        return replace(config, bus=bus)

    def describe(self) -> str:
        parts = []
        if self.bit_rate_bps is not None:
            parts.append(f"bit rate -> {self.bit_rate_bps / 1000:g} kbit/s")
        if self.bit_stuffing is not None:
            parts.append(f"stuffing -> {'on' if self.bit_stuffing else 'off'}")
        return ", ".join(parts) or "bus unchanged"


@dataclass(frozen=True)
class DeadlinePolicyDelta(Delta):
    """Switch the deadline interpretation (report-only, never re-analyses)."""

    policy: str = "period"

    def __post_init__(self) -> None:
        if self.policy not in ("period", "min-rearrival", "explicit"):
            raise ValueError(f"unknown deadline policy {self.policy!r}")

    def apply(self, config: BusConfiguration) -> BusConfiguration:
        return replace(config, deadline_policy=self.policy)

    def describe(self) -> str:
        return f"deadlines -> {self.policy}"


def apply_deltas(config: BusConfiguration,
                 deltas: Sequence[Delta]) -> BusConfiguration:
    """Fold a delta sequence over a base configuration (left to right)."""
    for delta in deltas:
        config = delta.apply(config)
    return config

"""Session-backed candidate evaluation for the priority optimizer.

The GA evaluates thousands of identifier assignments against the same small
scenario set.  :class:`SessionEvaluator` routes those evaluations through
cached-kernel sessions -- one per (bus, error model, controllers) scenario
group -- so every candidate is expressed as a
:class:`~repro.service.deltas.PriorityDelta` plus the scenario's jitter
fraction.  The session's incremental planner then delivers the ROADMAP's
"per-candidate incremental re-analysis" for free:

* messages whose higher-priority set a mutation did not touch **reuse** the
  parent's converged fixed point outright (no iteration at all);
* messages that only *lost* priority **warm-start** from the parent (the
  ``_parent_seeds`` criterion of :mod:`repro.optimize.objectives`,
  generalised and machine-checked);
* messages that gained priority are analysed cold, preserving exactness.

Scenario chaining (ascending jitter inside one group) also falls out of the
planner, so the evaluator subsumes both warm-start channels of
:func:`repro.optimize.objectives.evaluate_configuration_with_context` while
returning bit-identical evaluations and contexts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.can.kmatrix import KMatrix
from repro.optimize.objectives import (
    AnalysisScenario,
    ConfigurationEvaluation,
    EvaluationContext,
    aggregate_reports,
)
from repro.service.deltas import JitterDelta, PriorityDelta
from repro.service.session import AnalysisSession, QueryResult


def _group_key(scenario: AnalysisScenario) -> tuple:
    return (scenario.bus, scenario.error_model,
            tuple(sorted((scenario.controllers or {}).items())))


class SessionEvaluator:
    """Evaluates identifier assignments through cached what-if sessions.

    Drop-in (bit-identical) replacement for the kernel backend of
    :func:`repro.optimize.objectives.evaluate_configuration_with_context`.
    Thread-safe: the underlying sessions serialise cache access and every
    analysis path is deterministic.
    """

    def __init__(
        self,
        kmatrix: KMatrix,
        scenarios: Sequence[AnalysisScenario],
        sensitivity_threshold: float = 0.10,
        max_cached_configs: int = 128,
        backend: str | None = None,
    ) -> None:
        self.kmatrix = kmatrix
        self.scenarios = tuple(scenarios)
        self.sensitivity_threshold = sensitivity_threshold
        self._sessions: dict[tuple, AnalysisSession] = {}
        self._session_of: list[AnalysisSession] = []
        base_fraction: dict[tuple, float] = {}
        for scenario in self.scenarios:
            key = _group_key(scenario)
            fraction = scenario.assumed_jitter_fraction
            if key not in base_fraction or fraction < base_fraction[key]:
                base_fraction[key] = fraction
        for scenario in self.scenarios:
            key = _group_key(scenario)
            if key not in self._sessions:
                self._sessions[key] = AnalysisSession(
                    kmatrix=kmatrix,
                    bus=scenario.bus,
                    error_model=scenario.error_model,
                    assumed_jitter_fraction=base_fraction[key],
                    controllers=scenario.controllers,
                    max_cached_configs=max_cached_configs,
                    name=f"ga:{scenario.bus.name}",
                    backend=backend,
                )
            self._session_of.append(self._sessions[key])
        # Ascending-jitter schedule, mirroring the direct evaluation path.
        self._schedule = sorted(
            range(len(self.scenarios)),
            key=lambda i: self.scenarios[i].assumed_jitter_fraction)

    def _deltas_for(self, order: tuple[str, ...], index: int):
        fraction = self.scenarios[index].assumed_jitter_fraction
        return (PriorityDelta(order=order), JitterDelta(fraction=fraction))

    def evaluate(
        self,
        order: Sequence[str],
        warm_start: EvaluationContext | None = None,
    ) -> tuple[ConfigurationEvaluation, EvaluationContext]:
        """Evaluate one priority order across all scenarios.

        ``order`` lists message names from highest to lowest priority; the
        base matrix's identifier pool is re-assigned along it (the GA's
        encoding).  ``warm_start`` names the parent candidate whose cached
        configurations seed the incremental plans.
        """
        order = tuple(order)
        reports = {}
        results: dict[int, Mapping] = {}
        previous_in_group: dict[int, QueryResult] = {}
        for index in self._schedule:
            scenario = self.scenarios[index]
            session = self._session_of[index]
            warm = []
            chained = previous_in_group.get(id(session))
            if chained is not None:
                warm.append(chained)
            if warm_start is not None:
                warm.append(session.key_for(
                    self._deltas_for(warm_start.priority_order, index)))
            result = session.query(
                self._deltas_for(order, index),
                warm_from=warm or None,
                deadline_policy=scenario.deadline_policy,
                label=f"{scenario.name}")
            reports[index] = result.report
            results[index] = result.results
            previous_in_group[id(session)] = result
        evaluation = aggregate_reports(
            [reports[i] for i in range(len(self.scenarios))],
            self.sensitivity_threshold)
        context = EvaluationContext(
            priority_order=order,
            scenario_results=tuple(
                results[i] for i in range(len(self.scenarios))),
        )
        return evaluation, context

    def describe(self) -> str:
        """Cache statistics of the underlying sessions."""
        return "\n".join(session.describe()
                         for session in self._sessions.values())

"""Deterministic batch execution of scenario runs.

A :class:`BatchJob` pairs a base :class:`~repro.service.deltas.BusConfiguration`
with a :class:`~repro.service.catalog.WhatIfScenario`; the
:class:`BatchRunner` executes many jobs through
:func:`repro.parallel.parallel_map` with results returned **in job order**,
so a batch aggregates exactly like a serial loop.  The per-job worker
:func:`run_batch_job` is a top-level function and every job field is a
picklable frozen value, which is what makes ``REPRO_PARALLEL=process`` pools
work (the blocker named in the ROADMAP's perf targets).

Jobs that share a base configuration can instead run serially against one
shared session via :meth:`BatchRunner.run_on_session`, which keeps the
kernel cache hot across scenarios -- the cached-delta mode the service
benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.parallel import parallel_map
from repro.service.catalog import ScenarioRunResult, WhatIfScenario
from repro.service.deltas import BusConfiguration
from repro.service.session import AnalysisSession


@dataclass(frozen=True)
class BatchJob:
    """One independent unit of a batch: a scenario against a configuration."""

    label: str
    config: BusConfiguration
    scenario: WhatIfScenario


def run_batch_job(job: BatchJob) -> ScenarioRunResult:
    """Execute one job in a fresh session (top-level, hence picklable)."""
    session = AnalysisSession.from_config(job.config, name=job.label)
    return job.scenario.run(session)


class BatchRunner:
    """Executes scenario batches with deterministic result ordering."""

    def __init__(self, mode: str = "auto",
                 max_workers: int | None = None) -> None:
        self.mode = mode
        self.max_workers = max_workers

    def run(self, jobs: Sequence[BatchJob]) -> list[ScenarioRunResult]:
        """Run independent jobs concurrently; results come back in job order.

        Each job gets its own session (no shared cache), so jobs are fully
        independent and safe for ``process`` pools.
        """
        return parallel_map(run_batch_job, list(jobs), mode=self.mode,
                            max_workers=self.max_workers)

    def run_on_session(self, session: AnalysisSession,
                       scenarios: Sequence[WhatIfScenario],
                       ) -> list[ScenarioRunResult]:
        """Run scenarios serially against one shared, warm session."""
        return [scenario.run(session) for scenario in scenarios]


# --------------------------------------------------------------------------- #
# Batch families (the ROADMAP's scale-out workloads)
# --------------------------------------------------------------------------- #
def scaling_jobs(scenario: WhatIfScenario,
                 sizes: Sequence[int] = (50, 100, 200, 400),
                 seed: int = 1) -> list[BatchJob]:
    """One job per synthetic K-Matrix size (hundreds-of-messages workloads).

    Uses :func:`repro.workloads.scaling.scaling_benchmark_case`, which holds
    utilization roughly constant across sizes.
    """
    from repro.workloads.scaling import scaling_benchmark_case
    jobs = []
    for size in sizes:
        kmatrix, bus = scaling_benchmark_case(size, seed=seed)
        jobs.append(BatchJob(
            label=f"n={size}",
            config=BusConfiguration(kmatrix=kmatrix, bus=bus),
            scenario=scenario))
    return jobs


def system_jobs(system, scenario: WhatIfScenario) -> list[BatchJob]:
    """One job per bus segment of a system model (multi-bus family).

    Segments are analysed with their K-Matrix assumptions (no cross-bus
    propagation -- that is the compositional engine's job); the batch
    answers "how does every bus react to this what-if" in one sweep.
    """
    jobs = []
    for segment in system.buses.values():
        jobs.append(BatchJob(
            label=segment.name,
            config=BusConfiguration(
                kmatrix=segment.kmatrix,
                bus=segment.bus,
                error_model=segment.error_model,
                assumed_jitter_fraction=segment.assumed_jitter_fraction,
                controllers=dict(system.controllers) or None,
                deadline_policy=segment.deadline_policy),
            scenario=scenario))
    return jobs

"""Named workload registry: server-side expansion of parameterised workloads.

PR 5's ``register`` op ships a *full topology* over the wire.  That is fine
for bespoke fleets, but most clients of a large deployment analyse
variations of a handful of generator families -- and a million-user front
end should ship ``("multibus_chain", {"n_buses": 12, "seed": 3})``
(kilobytes) rather than the expanded topology (megabytes).  The daemon
expands the named generator server-side, registers the result exactly as if
the client had sent it, and -- because registration keys everything by
configuration fingerprint -- identical parameters from different clients
dedupe into the same pool sessions and the same persistent-store entries.

Every builtin generator is deterministic in its parameters (seeded RNGs),
so a named workload is a stable, repeatable fingerprint across processes
and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.can.bus import CanBus
from repro.core.system import SystemModel
from repro.errors.models import NoErrors, SporadicErrorModel
from repro.service.deltas import BusConfiguration
from repro.workloads.multibus import multibus_system
from repro.workloads.powertrain import PowertrainConfig, powertrain_system
from repro.workloads.scaling import scaling_benchmark_case, synthetic_kmatrix


class UnknownWorkloadError(ValueError):
    """The requested generator name is not registered."""

    def __init__(self, name: str, known) -> None:
        super().__init__(
            f"unknown workload generator {name!r}; known: {sorted(known)}"
        )
        self.name = name


@dataclass(frozen=True)
class WorkloadDef:
    """One registered generator.

    ``params`` maps every accepted parameter name to the type its value is
    coerced to; unknown parameter names are rejected loudly (a typo'd
    parameter silently falling back to a default would fingerprint -- and
    cache -- the wrong workload).
    """

    name: str
    kind: str  # "system" or "config"
    builder: Callable[..., "SystemModel | BusConfiguration"]
    params: Mapping[str, type]
    description: str

    def expand(self, params: Mapping | None) -> "SystemModel | BusConfiguration":
        """Validate + coerce ``params`` and run the builder."""
        coerced = {}
        for key, value in (params or {}).items():
            key = str(key)
            if key not in self.params:
                raise ValueError(
                    f"workload {self.name!r} has no parameter {key!r}; "
                    f"accepted: {sorted(self.params)}"
                )
            kind = self.params[key]
            try:
                coerced[key] = kind(value)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"workload {self.name!r} parameter {key!r}: {exc}"
                ) from exc
        return self.builder(**coerced)


class WorkloadRegistry:
    """Name -> generator table the daemon expands ``register`` requests with."""

    def __init__(self) -> None:
        self._defs: dict[str, WorkloadDef] = {}

    def add(self, definition: WorkloadDef) -> None:
        """Register (or replace) one generator definition."""
        self._defs[definition.name] = definition

    def names(self) -> list[str]:
        """Sorted generator names."""
        return sorted(self._defs)

    def get(self, name: str) -> WorkloadDef:
        """Definition of one generator (raises :class:`UnknownWorkloadError`)."""
        try:
            return self._defs[name]
        except KeyError:
            raise UnknownWorkloadError(name, self._defs) from None

    def expand(self, name: str, params: Mapping | None = None) -> "SystemModel | BusConfiguration":
        """Expand a named workload into a topology or bus configuration."""
        return self.get(name).expand(params)

    def describe(self) -> dict:
        """JSON-friendly listing (generator -> kind, params, description)."""
        return {
            name: {
                "kind": definition.kind,
                "params": sorted(definition.params),
                "description": definition.description,
            }
            for name, definition in sorted(self._defs.items())
        }


def _synthetic_bus(
    n_messages: int = 30,
    n_ecus: int = 6,
    seed: int = 0,
    bit_rate_bps: float = 500_000.0,
    id_policy: str = "block",
    error_interarrival_ms: float = 0.0,
    assumed_jitter_fraction: float = 0.0,
) -> BusConfiguration:
    kmatrix = synthetic_kmatrix(n_messages, n_ecus=n_ecus, seed=seed, id_policy=id_policy)
    error_model = (
        SporadicErrorModel(min_interarrival=error_interarrival_ms)
        if error_interarrival_ms > 0
        else NoErrors()
    )
    return BusConfiguration(
        kmatrix=kmatrix,
        bus=CanBus(name=f"Synthetic-{n_messages}", bit_rate_bps=bit_rate_bps),
        error_model=error_model,
        assumed_jitter_fraction=assumed_jitter_fraction,
    )


def _powertrain(
    n_messages: int = 54,
    n_ecus: int = 8,
    n_gateways: int = 2,
    seed: int = 2006,
    assumed_jitter_fraction: float = 0.0,
) -> BusConfiguration:
    config = PowertrainConfig(
        seed=seed, n_ecus=n_ecus, n_gateways=n_gateways, n_messages=n_messages
    )
    kmatrix, bus, controllers = powertrain_system(config)
    return BusConfiguration(
        kmatrix=kmatrix,
        bus=bus,
        controllers=controllers,
        assumed_jitter_fraction=assumed_jitter_fraction,
    )


def _scaling_case(n_messages: int = 60, seed: int = 1, n_ecus: int = 6) -> BusConfiguration:
    kmatrix, bus = scaling_benchmark_case(n_messages, seed=seed, n_ecus=n_ecus)
    return BusConfiguration(kmatrix=kmatrix, bus=bus)


def builtin_registry() -> WorkloadRegistry:
    """Registry of the builtin generator families."""
    registry = WorkloadRegistry()
    registry.add(
        WorkloadDef(
            name="multibus_chain",
            kind="system",
            builder=multibus_system,
            params={
                "n_buses": int,
                "messages_per_bus": int,
                "seed": int,
                "n_ecus": int,
                "bit_rate_bps": float,
                "routes_per_gateway": int,
                "error_interarrival_ms": float,
                "assumed_jitter_fraction": float,
                "polling_period_ms": float,
            },
            description="Chain of CAN segments coupled by polling gateways.",
        )
    )
    registry.add(
        WorkloadDef(
            name="synthetic_bus",
            kind="config",
            builder=_synthetic_bus,
            params={
                "n_messages": int,
                "n_ecus": int,
                "seed": int,
                "bit_rate_bps": float,
                "id_policy": str,
                "error_interarrival_ms": float,
                "assumed_jitter_fraction": float,
            },
            description="One random-but-valid synthetic K-Matrix on one bus.",
        )
    )
    registry.add(
        WorkloadDef(
            name="powertrain",
            kind="config",
            builder=_powertrain,
            params={
                "n_messages": int,
                "n_ecus": int,
                "n_gateways": int,
                "seed": int,
                "assumed_jitter_fraction": float,
            },
            description="The paper-style synthetic power-train case study.",
        )
    )
    registry.add(
        WorkloadDef(
            name="scaling_case",
            kind="config",
            builder=_scaling_case,
            params={"n_messages": int, "seed": int, "n_ecus": int},
            description="Constant-utilization scaling workload (perf sweeps).",
        )
    )
    return registry

"""The introductory load-analysis example of Figure 1.

Four ECUs share a 500 kbit/s CAN bus and inject 20, 50, 100 and 10 kbit/s of
traffic respectively; the accumulated 180 kbit/s correspond to a 36 % load.
(The figure's artwork labels a couple of rates in "MB/s" by mistake; the text
and the 36 % result pin down the intended kbit/s values used here.)

Besides the raw traffic rates the module also provides a small concrete
K-Matrix whose message-level load matches the same per-ECU rates, so the
example can be pushed through the full response-time analysis as well.
"""

from __future__ import annotations

from repro.can.bus import CanBus
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage


#: Per-ECU traffic of the Figure-1 example in bits per second.
FIGURE1_RATES_BPS: dict[str, float] = {
    "ECU1": 20_000.0,
    "ECU2": 50_000.0,
    "ECU3": 100_000.0,
    "ECU4": 10_000.0,
}

#: Bus bandwidth of the Figure-1 example in bits per second.
FIGURE1_BANDWIDTH_BPS: float = 500_000.0


def figure1_traffic_rates() -> dict[str, float]:
    """Per-ECU traffic rates (bits/s) of the Figure-1 example."""
    return dict(FIGURE1_RATES_BPS)


def figure1_network() -> tuple[KMatrix, CanBus]:
    """A concrete K-Matrix realisation of the Figure-1 example.

    Each ECU sends a handful of messages whose summed average frame rate
    (8-byte frames without worst-case stuffing) approximates that ECU's
    traffic share, so that ``bus_load(...)`` reports roughly 36 %.
    """
    bus = CanBus(name="Figure1-CAN", bit_rate_bps=FIGURE1_BANDWIDTH_BPS,
                 bit_stuffing=False)
    # An 8-byte standard frame without stuffing is 111 bits.  Periods are
    # chosen so that each ECU's bits/s matches the figure.
    frame_bits = 111.0

    def periods_for(rate_bps: float, count: int) -> list[float]:
        # Spread the rate over `count` messages with identical periods.
        per_message = rate_bps / count
        period_s = frame_bits / per_message
        return [round(period_s * 1000.0, 3)] * count

    messages = []
    next_id = 0x100
    for ecu, count in (("ECU1", 2), ("ECU2", 4), ("ECU3", 6), ("ECU4", 1)):
        for index, period in enumerate(periods_for(FIGURE1_RATES_BPS[ecu], count)):
            messages.append(CanMessage(
                name=f"{ecu}_Msg{index + 1}",
                can_id=next_id,
                dlc=8,
                period=period,
                sender=ecu,
                receivers=tuple(e for e in FIGURE1_RATES_BPS if e != ecu),
            ))
            next_id += 1
    return KMatrix(messages=messages), bus

"""Parameterised multi-bus systems beyond the two-bus gateway example.

The ROADMAP's scale-out direction asks for multi-bus systems "beyond two
gateways" as routine workloads: a chain of CAN segments coupled by
store-and-forward gateways, each forwarding its segment's most important
traffic to the next.  :func:`multibus_system` generates such a system
deterministically from a seed -- valid under
:meth:`~repro.core.system.SystemModel.validate`, analysable by the
compositional engine, and sliceable into per-bus what-if sessions via
:func:`repro.service.batch.system_jobs`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.can.bus import CanBus
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.core.paths import EndToEndPath
from repro.core.system import BusSegment, SystemModel
from repro.errors.models import SporadicErrorModel
from repro.gateway.model import ForwardingPolicy, GatewayModel, GatewayRoute
from repro.workloads.scaling import synthetic_kmatrix

#: Identifier block reserved for gateway-forwarded frames: below the 0x80+
#: range :func:`synthetic_kmatrix` assigns, so forwarded traffic keeps the
#: high priority a real gateway configuration would give it.
_FORWARD_ID_BASE = 0x40


def _prefixed(kmatrix: KMatrix, prefix: str) -> KMatrix:
    """Rename messages and ECUs so names stay globally unique."""
    def rename(message: CanMessage) -> CanMessage:
        return replace(
            message,
            name=f"{prefix}_{message.name}",
            sender=f"{prefix}_{message.sender}",
            receivers=tuple(f"{prefix}_{r}" for r in message.receivers),
        )
    return kmatrix.map_messages(rename)


def multibus_system(
    n_buses: int = 3,
    messages_per_bus: int = 15,
    seed: int = 0,
    n_ecus: int = 4,
    bit_rate_bps: float = 500_000.0,
    routes_per_gateway: int = 2,
    error_interarrival_ms: float = 200.0,
    assumed_jitter_fraction: float = 0.1,
    polling_period_ms: float = 2.5,
) -> SystemModel:
    """A chain of ``n_buses`` CAN segments coupled by polling gateways.

    Gateway ``i`` forwards the ``routes_per_gateway`` highest-priority
    messages of bus ``i`` onto bus ``i + 1`` (as new high-priority frames it
    sends there), so jitter injected on one segment propagates down the
    chain -- the workload the compositional engine and the per-bus what-if
    batches both exercise.
    """
    if n_buses < 2:
        raise ValueError("n_buses must be at least 2")
    if routes_per_gateway < 1:
        raise ValueError("routes_per_gateway must be at least 1")
    if routes_per_gateway > messages_per_bus:
        raise ValueError("routes_per_gateway cannot exceed messages_per_bus")

    matrices = [
        _prefixed(
            synthetic_kmatrix(
                messages_per_bus, n_ecus=n_ecus, seed=seed + index,
                known_jitter_probability=0.25),
            f"B{index}")
        for index in range(n_buses)
    ]
    bus_names = [f"CAN-{index}" for index in range(n_buses)]

    system = SystemModel(name=f"multibus-{n_buses}x{messages_per_bus}")
    gateways: list[GatewayModel] = []
    for index in range(n_buses - 1):
        gateway_name = f"GW{index}"
        sources = matrices[index].sorted_by_priority()[:routes_per_gateway]
        routes = []
        for route_index, source in enumerate(sources):
            receivers = matrices[index + 1].senders()[:1]
            forwarded = CanMessage(
                name=f"{gateway_name}_{source.name}",
                can_id=_FORWARD_ID_BASE + route_index,
                dlc=source.dlc,
                period=source.period,
                sender=gateway_name,
                receivers=tuple(receivers),
            )
            matrices[index + 1].add(forwarded)
            routes.append(GatewayRoute(
                source_message=source.name,
                destination_message=forwarded.name,
                source_bus=bus_names[index],
                destination_bus=bus_names[index + 1]))
        gateways.append(GatewayModel(
            name=gateway_name,
            policy=ForwardingPolicy.PERIODIC_POLLING,
            polling_period=polling_period_ms,
            copy_time=0.05,
            routes=routes))

    for index, (kmatrix, bus_name) in enumerate(zip(matrices, bus_names)):
        system.add_bus(BusSegment(
            bus=CanBus(name=bus_name, bit_rate_bps=bit_rate_bps),
            kmatrix=kmatrix,
            error_model=SporadicErrorModel(
                min_interarrival=error_interarrival_ms),
            assumed_jitter_fraction=assumed_jitter_fraction))
    for gateway in gateways:
        system.add_gateway(gateway)

    problems = system.validate()
    if problems:  # pragma: no cover - generator invariant
        raise AssertionError(
            "multibus_system produced an inconsistent model:\n  "
            + "\n  ".join(problems))
    return system


def multibus_paths(system: SystemModel,
                   per_gateway: int = 1) -> tuple[EndToEndPath, ...]:
    """Cause-effect chains through a multibus system's gateways.

    For each gateway (in name order) the ``per_gateway`` first routes yield
    one path ``source message -> gateway forwarding -> forwarded message``
    -- the end-to-end latencies the system-level what-if queries and the
    ``system_whatif`` benchmark track across topology edits.
    """
    paths: list[EndToEndPath] = []
    for gateway_name in sorted(system.gateways):
        gateway = system.gateways[gateway_name]
        for route in gateway.routes[:per_gateway]:
            paths.append(EndToEndPath(
                name=f"{route.source_message}->{route.destination_message}",
                segments=(
                    ("message", route.source_message),
                    ("gateway",
                     f"{gateway_name}:{route.destination_message}"),
                    ("message", route.destination_message),
                )))
    return tuple(paths)

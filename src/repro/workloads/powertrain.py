"""Synthetic power-train CAN network matching the paper's case study.

The real K-Matrix analysed in the paper is proprietary OEM data, so this
module generates a synthetic network that matches every property the paper
states about it:

* a 500 kbit/s power-train CAN bus;
* several ECUs including gateways, together sending and receiving more than
  50 messages;
* message lengths, identifiers and periods as an OEM K-Matrix would specify
  them (typical automotive period set, 1..8 byte payloads);
* send jitters known only for a few messages, "typically in the range of
  10-30 % of the message's period"; all other jitters unknown;
* identifiers allocated in per-ECU blocks -- the common OEM practice that
  leaves room for the priority optimization of Section 4.3.

The generator is deterministic for a given seed so that tests, examples and
benchmarks all reproduce the same network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.can.bus import CanBus
from repro.can.controller import CanControllerType, ControllerModel
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage


#: Typical automotive cycle times in milliseconds, weighted towards the fast
#: power-train messages that dominate such buses.
_PERIOD_CHOICES_MS: tuple[float, ...] = (5, 10, 10, 20, 20, 20, 50, 50, 50,
                                         100, 100, 200, 500, 1000)

#: Payload-length population (bytes); power-train frames are mostly full.
_DLC_CHOICES: tuple[int, ...] = (2, 4, 6, 8, 8, 8)

#: Functional names used to label generated messages realistically.
_FUNCTION_NAMES: tuple[str, ...] = (
    "EngineTorque", "EngineSpeed", "ThrottlePosition", "BoostPressure",
    "FuelRate", "CoolantTemp", "OilPressure", "GearboxState", "ClutchStatus",
    "WheelSpeedFL", "WheelSpeedFR", "WheelSpeedRL", "WheelSpeedRR",
    "BrakePressure", "YawRate", "LateralAccel", "SteeringAngle",
    "BatteryVoltage", "AlternatorLoad", "ACCompressor", "CruiseSetpoint",
    "PedalPosition", "ExhaustTemp", "LambdaSensor", "KnockSensor",
    "TurboActuator", "EGRValve", "RailPressure", "InjectionTiming",
    "MisfireCounter", "CatalystTemp", "DPFStatus", "TransmissionTemp",
    "TorqueRequest", "TorqueLimit", "IdleSpeedTarget", "StartStopState",
    "VehicleSpeed", "OdometerTick", "FuelLevel", "RangeEstimate",
    "GatewayStatus", "DiagResponse", "NetworkMgmt", "WakeupReason",
)


@dataclass(frozen=True)
class PowertrainConfig:
    """Parameters of the synthetic power-train network.

    The identifier assignment models how real K-Matrices grow over vehicle
    generations: messages are roughly ordered by rate, but a fraction of them
    sits at a worse (numerically higher) identifier than a rate-monotonic
    assignment would give, because identifiers are rarely re-shuffled once a
    carry-over ECU is in the field.  ``displaced_fraction`` and
    ``displacement_span`` control how sub-optimal the grown assignment is,
    which in turn is what the Section-4.3 optimizer has to repair.
    """

    seed: int = 2006
    n_ecus: int = 8
    n_gateways: int = 2
    n_messages: int = 54
    bit_rate_bps: float = 500_000.0
    known_jitter_fraction_of_messages: float = 0.2
    known_jitter_range: tuple[float, float] = (0.10, 0.30)
    base_can_id: int = 0x80
    displaced_fraction: float = 0.40
    displacement_span: int = 20

    def __post_init__(self) -> None:
        if self.n_ecus < 2:
            raise ValueError("need at least two ECUs")
        if self.n_gateways >= self.n_ecus:
            raise ValueError("gateways must be a strict subset of the ECUs")
        if self.n_messages < self.n_ecus:
            raise ValueError("need at least one message per ECU")
        if not 0.0 <= self.known_jitter_fraction_of_messages <= 1.0:
            raise ValueError("known_jitter_fraction_of_messages must be in [0, 1]")
        low, high = self.known_jitter_range
        if not 0.0 <= low <= high:
            raise ValueError("known_jitter_range must satisfy 0 <= low <= high")
        if not 0.0 <= self.displaced_fraction <= 1.0:
            raise ValueError("displaced_fraction must be in [0, 1]")
        if self.displacement_span < 0:
            raise ValueError("displacement_span must be non-negative")

    @property
    def ecu_names(self) -> tuple[str, ...]:
        """Names of the regular ECUs followed by the gateways."""
        regular = self.n_ecus - self.n_gateways
        names = [f"ECU{i + 1}" for i in range(regular)]
        names.extend(f"Gateway{i + 1}" for i in range(self.n_gateways))
        return tuple(names)


def powertrain_kmatrix(config: PowertrainConfig | None = None) -> KMatrix:
    """Generate the synthetic power-train K-Matrix.

    Identifiers follow a "legacy-grown" assignment: a rate-monotonic base
    order in which a seeded fraction of messages has been demoted by up to
    ``displacement_span`` priority ranks.  That mirrors real OEM matrices
    (identifiers are frozen early and carried over between generations) and
    gives the priority optimizer of Section 4.3 realistic room to improve.
    """
    config = config or PowertrainConfig()
    rng = random.Random(config.seed)
    ecus = config.ecu_names

    # Distribute messages over ECUs: gateways forward more messages than the
    # average ECU sends, mirroring real power-train topologies.
    counts = _distribute_messages(config, rng)

    name_pool = list(_FUNCTION_NAMES)
    rng.shuffle(name_pool)
    name_index = 0
    drafts: list[dict] = []
    for ecu in ecus:
        for _ in range(counts[ecu]):
            period = float(rng.choice(_PERIOD_CHOICES_MS))
            dlc = int(rng.choice(_DLC_CHOICES))
            if name_index < len(name_pool):
                stem = name_pool[name_index]
            else:
                stem = f"Signal{name_index}"
            name_index += 1
            jitter = None
            if rng.random() < config.known_jitter_fraction_of_messages:
                low, high = config.known_jitter_range
                jitter = round(rng.uniform(low, high) * period, 3)
            drafts.append({
                "name": f"{stem}_{ecu}",
                "sender": ecu,
                "period": period,
                "dlc": dlc,
                "jitter": jitter,
                "receivers": _pick_receivers(ecu, ecus, rng),
            })

    can_ids = _legacy_grown_ids(drafts, config, rng)
    messages = [
        CanMessage(
            name=draft["name"],
            can_id=can_id,
            dlc=draft["dlc"],
            period=draft["period"],
            jitter=draft["jitter"],
            sender=draft["sender"],
            receivers=draft["receivers"],
        )
        for draft, can_id in zip(drafts, can_ids)
    ]
    return KMatrix(messages=messages)


def _legacy_grown_ids(drafts: list[dict], config: PowertrainConfig,
                      rng: random.Random) -> list[int]:
    """Assign identifiers: rate-monotonic base order with seeded demotions."""
    order = sorted(range(len(drafts)),
                   key=lambda i: (drafts[i]["period"], drafts[i]["name"]))
    ranks = {index: rank for rank, index in enumerate(order)}
    for index in range(len(drafts)):
        if config.displacement_span and rng.random() < config.displaced_fraction:
            ranks[index] += rng.randint(1, config.displacement_span)
    final_order = sorted(range(len(drafts)),
                         key=lambda i: (ranks[i], drafts[i]["period"],
                                        drafts[i]["name"]))
    ids = [0] * len(drafts)
    for position, index in enumerate(final_order):
        ids[index] = config.base_can_id + position
    return ids


def powertrain_bus(config: PowertrainConfig | None = None,
                   bit_stuffing: bool = True) -> CanBus:
    """The 500 kbit/s power-train bus of the case study."""
    config = config or PowertrainConfig()
    return CanBus(name="Powertrain-CAN", bit_rate_bps=config.bit_rate_bps,
                  bit_stuffing=bit_stuffing)


def powertrain_controllers(
    config: PowertrainConfig | None = None,
    default: CanControllerType = CanControllerType.FULL,
) -> dict[str, ControllerModel]:
    """Controller assignment: fullCAN ECUs, basicCAN gateways.

    Gateways frequently use older basicCAN-style controllers with software
    queues, which is why the paper highlights the controller type as a
    required piece of ECU information (Figure 3).
    """
    config = config or PowertrainConfig()
    controllers: dict[str, ControllerModel] = {}
    for name in config.ecu_names:
        if name.startswith("Gateway"):
            controllers[name] = ControllerModel(
                controller_type=CanControllerType.BASIC, tx_buffers=2)
        else:
            controllers[name] = ControllerModel(controller_type=default)
    return controllers


def powertrain_system(
    config: PowertrainConfig | None = None,
    bit_stuffing: bool = True,
) -> tuple[KMatrix, CanBus, dict[str, ControllerModel]]:
    """K-Matrix, bus and controller models of the synthetic case study."""
    config = config or PowertrainConfig()
    return (
        powertrain_kmatrix(config),
        powertrain_bus(config, bit_stuffing=bit_stuffing),
        powertrain_controllers(config),
    )


def _distribute_messages(config: PowertrainConfig,
                         rng: random.Random) -> dict[str, int]:
    """Split the configured message count over the ECUs."""
    ecus = config.ecu_names
    counts = {name: 1 for name in ecus}
    remaining = config.n_messages - len(ecus)
    weights = []
    for name in ecus:
        weights.append(2.0 if name.startswith("Gateway") else 1.0)
    total_weight = sum(weights)
    allocated = 0
    for name, weight in zip(ecus, weights):
        share = int(round(remaining * weight / total_weight))
        counts[name] += share
        allocated += share
    # Fix rounding drift deterministically.
    drift = remaining - allocated
    order = sorted(ecus, key=lambda n: (not n.startswith("Gateway"), n))
    index = 0
    while drift != 0:
        name = order[index % len(order)]
        if drift > 0:
            counts[name] += 1
            drift -= 1
        elif counts[name] > 1:
            counts[name] -= 1
            drift += 1
        index += 1
    return counts


def _pick_receivers(sender: str, ecus: Sequence[str],
                    rng: random.Random) -> tuple[str, ...]:
    """Pick one to four receiving ECUs different from the sender."""
    candidates = [name for name in ecus if name != sender]
    count = rng.randint(1, min(4, len(candidates)))
    return tuple(sorted(rng.sample(candidates, count)))

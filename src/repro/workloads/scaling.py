"""Parameterised synthetic K-Matrices for ablation and scaling studies.

Used by benchmarks that sweep the number of messages, the bus utilization or
the identifier-assignment policy, and by property-based tests that need many
structurally different but always-valid K-Matrices.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.can.bus import CanBus
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage


_DEFAULT_PERIODS_MS: tuple[float, ...] = (5, 10, 20, 50, 100, 200, 500, 1000)


def synthetic_kmatrix(
    n_messages: int,
    n_ecus: int = 6,
    seed: int = 0,
    periods_ms: Sequence[float] = _DEFAULT_PERIODS_MS,
    id_policy: str = "block",
    dlc_choices: Sequence[int] = (2, 4, 8),
    known_jitter_probability: float = 0.0,
) -> KMatrix:
    """Generate a random but valid K-Matrix.

    Parameters
    ----------
    n_messages:
        Number of messages to generate.
    n_ecus:
        Number of sending ECUs (receivers are picked among the others).
    seed:
        Random seed; the same seed always yields the same matrix.
    periods_ms:
        Period population to draw from.
    id_policy:
        ``"block"`` assigns identifiers in per-ECU blocks (realistic,
        sub-optimal), ``"rate-monotonic"`` assigns lower ids to faster
        messages (near-optimal), ``"random"`` shuffles identifiers.
    dlc_choices:
        Payload-length population to draw from.
    known_jitter_probability:
        Probability that a message gets an explicit jitter of 10-30 % of its
        period; others keep ``jitter=None``.
    """
    if n_messages < 1:
        raise ValueError("n_messages must be at least 1")
    if n_ecus < 2:
        raise ValueError("n_ecus must be at least 2")
    if id_policy not in {"block", "rate-monotonic", "random"}:
        raise ValueError(f"unknown id_policy {id_policy!r}")
    rng = random.Random(seed)
    ecus = [f"ECU{i + 1}" for i in range(n_ecus)]

    drafts = []
    for index in range(n_messages):
        sender = ecus[index % n_ecus]
        period = float(rng.choice(list(periods_ms)))
        dlc = int(rng.choice(list(dlc_choices)))
        jitter = None
        if rng.random() < known_jitter_probability:
            jitter = round(rng.uniform(0.10, 0.30) * period, 3)
        receivers = tuple(sorted(rng.sample(
            [e for e in ecus if e != sender],
            rng.randint(1, min(3, n_ecus - 1)))))
        drafts.append({
            "name": f"Msg{index:03d}_{sender}",
            "sender": sender,
            "period": period,
            "dlc": dlc,
            "jitter": jitter,
            "receivers": receivers,
        })

    can_ids = _assign_ids(drafts, ecus, id_policy, rng)
    messages = [
        CanMessage(
            name=draft["name"],
            can_id=can_id,
            dlc=draft["dlc"],
            period=draft["period"],
            jitter=draft["jitter"],
            sender=draft["sender"],
            receivers=draft["receivers"],
        )
        for draft, can_id in zip(drafts, can_ids)
    ]
    return KMatrix(messages=messages)


def scaled_kmatrix(
    target_utilization: float,
    bus: CanBus,
    seed: int = 0,
    n_ecus: int = 6,
    id_policy: str = "block",
) -> KMatrix:
    """Generate a K-Matrix whose worst-case utilization approximates a target.

    Messages are added one at a time until the accumulated worst-case
    utilization (transmission time over period) reaches ``target_utilization``.
    Used by the ablation that revisits the "40 % vs 60 % load limit"
    discussion of Section 3.1.
    """
    if not 0.0 < target_utilization < 1.0:
        raise ValueError("target_utilization must be within (0, 1)")
    rng = random.Random(seed)
    ecus = [f"ECU{i + 1}" for i in range(n_ecus)]
    drafts = []
    utilization = 0.0
    index = 0
    while utilization < target_utilization and index < 2000:
        sender = ecus[index % n_ecus]
        period = float(rng.choice(_DEFAULT_PERIODS_MS))
        dlc = int(rng.choice((2, 4, 8)))
        probe = CanMessage(name="probe", can_id=1, dlc=dlc, period=period,
                           sender=sender)
        step = bus.transmission_time(probe) / period
        if utilization + step > target_utilization and index >= n_ecus:
            break
        utilization += step
        receivers = tuple(sorted(rng.sample(
            [e for e in ecus if e != sender], 1)))
        drafts.append({
            "name": f"Msg{index:03d}_{sender}",
            "sender": sender,
            "period": period,
            "dlc": dlc,
            "jitter": None,
            "receivers": receivers,
        })
        index += 1
    can_ids = _assign_ids(drafts, ecus, id_policy, rng)
    messages = [
        CanMessage(
            name=draft["name"],
            can_id=can_id,
            dlc=draft["dlc"],
            period=draft["period"],
            jitter=draft["jitter"],
            sender=draft["sender"],
            receivers=draft["receivers"],
        )
        for draft, can_id in zip(drafts, can_ids)
    ]
    return KMatrix(messages=messages)


def scaling_benchmark_case(
    n_messages: int,
    seed: int = 1,
    n_ecus: int = 6,
    reference_bit_rate_bps: float = 500_000.0,
    reference_n_messages: int = 60,
) -> tuple[KMatrix, CanBus]:
    """Deterministic (K-Matrix, bus) pair for the perf scaling sweep.

    The bus bit rate grows linearly with the message count so worst-case
    utilization stays roughly constant across n: the sweep then measures how
    analysis cost scales with the matrix size rather than with divergence
    (an overloaded matrix hits the busy-period horizon instead of a fixed
    point, which would distort the timing trend).
    """
    kmatrix = synthetic_kmatrix(n_messages, n_ecus=n_ecus, seed=seed)
    bit_rate = reference_bit_rate_bps * max(
        n_messages / reference_n_messages, 1.0)
    bus = CanBus(name=f"Scaling-{n_messages}", bit_rate_bps=bit_rate)
    return kmatrix, bus


def _assign_ids(drafts: list[dict], ecus: Sequence[str], id_policy: str,
                rng: random.Random) -> list[int]:
    """Assign unique CAN identifiers according to the chosen policy."""
    if id_policy == "rate-monotonic":
        order = sorted(range(len(drafts)),
                       key=lambda i: (drafts[i]["period"], drafts[i]["name"]))
        ids = [0] * len(drafts)
        for rank, draft_index in enumerate(order):
            ids[draft_index] = 0x80 + rank
        return ids
    if id_policy == "random":
        pool = list(range(0x80, 0x80 + len(drafts)))
        rng.shuffle(pool)
        return pool
    # block policy: contiguous identifier range per ECU.
    block = max(len(drafts) // max(len(ecus), 1) + 2, 4)
    counters = {ecu: 0 for ecu in ecus}
    ids = []
    for draft in drafts:
        ecu_index = list(ecus).index(draft["sender"])
        ids.append(0x80 + ecu_index * block + counters[draft["sender"]])
        counters[draft["sender"]] += 1
    return ids

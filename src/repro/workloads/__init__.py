"""Workload generators.

The paper's case study uses a proprietary power-train K-Matrix (several ECUs
including gateways, more than 50 messages, 500 kbit/s, jitters known for only
a few messages).  This package generates synthetic workloads matching every
property the paper states, plus the small introductory example of Figure 1
and parameterised scaling workloads for the ablation benchmarks.
"""

from repro.workloads.figure1 import figure1_network, figure1_traffic_rates
from repro.workloads.multibus import multibus_system
from repro.workloads.powertrain import (
    PowertrainConfig,
    powertrain_kmatrix,
    powertrain_system,
)
from repro.workloads.registry import (
    UnknownWorkloadError,
    WorkloadDef,
    WorkloadRegistry,
    builtin_registry,
)
from repro.workloads.scaling import scaled_kmatrix, synthetic_kmatrix

__all__ = [
    "UnknownWorkloadError",
    "WorkloadDef",
    "WorkloadRegistry",
    "builtin_registry",
    "figure1_network",
    "figure1_traffic_rates",
    "multibus_system",
    "PowertrainConfig",
    "powertrain_kmatrix",
    "powertrain_system",
    "synthetic_kmatrix",
    "scaled_kmatrix",
]

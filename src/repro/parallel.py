"""Deterministic parallel evaluation of independent analysis units.

The analysis decomposes into units that share no state: bus segments inside
one global iteration, GA candidates inside one generation, seeds of a
scaling sweep.  :func:`parallel_map` evaluates such units concurrently while
guaranteeing that results come back **in input order** -- callers aggregate
them exactly as a serial loop would, so parallelism never changes a single
result bit.

Execution modes
---------------
``serial``
    Plain loop; always available, always the fallback.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  The analysis is pure
    Python, so threads only pay off when the work releases the GIL (numpy
    batches, I/O) -- but the mode also exercises the thread-safety of the
    kernel and is what multi-core C-extension backends will use.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  Requires picklable
    functions and arguments (no closures); the engine's segment sweep, the
    GA's population evaluation and the service batch runner all submit
    top-level worker functions with picklable job tuples, so a global
    ``REPRO_PARALLEL=process`` override genuinely runs them multi-process.
    When a callable cannot be pickled the call still degrades to ``thread``
    instead of crashing.
``auto``
    ``serial`` when the machine has one usable core, the item count is
    smaller than two, or the environment variable ``REPRO_PARALLEL`` is set
    to ``serial``; ``thread`` otherwise.

``REPRO_PARALLEL`` overrides the mode globally (``serial`` / ``thread`` /
``process``; ``auto`` and unset leave the caller's mode in charge), which
keeps benchmarks and CI deterministic without plumbing a flag through every
call site.  Any other value raises a :class:`ValueError` naming the allowed
modes.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

_MODES = ("auto", "serial", "thread", "process")


def available_workers() -> int:
    """Number of usable CPU cores (at least one)."""
    return max(os.cpu_count() or 1, 1)


def resolve_mode(mode: str = "auto", n_items: int = 2) -> str:
    """Resolve an execution mode to ``serial``/``thread``/``process``.

    A set but invalid ``REPRO_PARALLEL`` raises immediately instead of
    silently falling through to the caller's mode: a typo like
    ``REPRO_PARALLEL=processes`` in CI would otherwise just quietly
    benchmark the wrong executor.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown parallel mode {mode!r}; expected {_MODES}")
    override = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if override and override not in _MODES:
        raise ValueError(
            f"invalid REPRO_PARALLEL={override!r}; allowed modes are "
            f"{', '.join(_MODES)} (or unset, which means auto)")
    if override in ("serial", "thread", "process"):
        mode = override
    if mode == "auto":
        mode = "thread" if available_workers() > 1 and n_items > 1 else "serial"
    if mode != "serial" and n_items < 2:
        mode = "serial"
    return mode


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    mode: str = "auto",
    max_workers: int | None = None,
) -> list[_R]:
    """Apply ``fn`` to every item, returning results in input order.

    Exceptions propagate exactly as in a serial loop: the first failing item
    (in input order) raises.  ``max_workers`` caps the pool size; by default
    the pool matches ``min(len(items), available_workers())``.
    """
    materialized: Sequence[_T] = list(items)
    resolved = resolve_mode(mode, len(materialized))
    if resolved == "serial":
        return [fn(item) for item in materialized]
    if resolved == "process":
        try:
            pickle.dumps(fn)
        except (pickle.PicklingError, AttributeError, TypeError):
            resolved = "thread"
    workers = max_workers or min(len(materialized), available_workers())
    executor_cls = (ThreadPoolExecutor if resolved == "thread"
                    else ProcessPoolExecutor)
    with executor_cls(max_workers=workers) as pool:
        return list(pool.map(fn, materialized))

"""Reporting helpers: paper-shaped tables and series.

The benchmarks regenerate every figure of the paper as text: a curve becomes
a table of (x, y) rows, a Gantt picture becomes ASCII art.  The helpers here
format those tables consistently so benchmark output, example output and
EXPERIMENTS.md all look the same.
"""

from repro.reporting.tables import (
    format_alerts,
    format_loss_curves,
    format_metrics_table,
    format_monitor_status,
    format_sensitivity_table,
    format_session_stats,
    format_table,
    format_trace,
    format_whatif_table,
    series_to_rows,
)

__all__ = [
    "format_table",
    "series_to_rows",
    "format_alerts",
    "format_loss_curves",
    "format_metrics_table",
    "format_monitor_status",
    "format_sensitivity_table",
    "format_session_stats",
    "format_trace",
    "format_whatif_table",
]

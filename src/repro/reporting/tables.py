"""Plain-text table formatting used by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a simple fixed-width table.

    Numbers are formatted with three decimals, percentages (floats in 0..1
    when the header ends in ``%``) are scaled, everything else is ``str()``.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for header, cell in zip(headers, row):
            if isinstance(cell, float):
                if header.strip().endswith("%"):
                    rendered.append(f"{cell * 100:.1f}")
                else:
                    rendered.append(f"{cell:.3f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_to_rows(series: Mapping[str, Sequence[tuple[float, float]]],
                   ) -> list[list[object]]:
    """Merge named (x, y) series into rows sharing the x column.

    All series must be sampled at the same x values (the benchmarks sweep a
    common jitter axis), which is validated.
    """
    names = list(series)
    if not names:
        return []
    xs = [x for x, _ in series[names[0]]]
    for name in names[1:]:
        other_xs = [x for x, _ in series[name]]
        if other_xs != xs:
            raise ValueError(f"series {name!r} is sampled at different x values")
    rows: list[list[object]] = []
    for index, x in enumerate(xs):
        row: list[object] = [x]
        for name in names:
            row.append(series[name][index][1])
        rows.append(row)
    return rows


def format_loss_curves(series: Mapping[str, Sequence[tuple[float, float]]],
                       title: str = "Message loss vs. jitter") -> str:
    """Figure-5 style table: jitter fraction column plus one loss column per curve."""
    headers = ["jitter %"] + [f"{name} %" for name in series]
    rows = series_to_rows(series)
    # The x column is also a fraction: scale it like the loss columns.
    return format_table(headers, rows, title=title)


def format_sensitivity_table(curves: Mapping[str, Sequence[tuple[float, float]]],
                             title: str = "Response time vs. jitter") -> str:
    """Figure-4 style table: jitter fraction column plus response-time columns."""
    headers = ["jitter %"] + [f"{name} [ms]" for name in curves]
    rows = series_to_rows(curves)
    return format_table(headers, rows, title=title)


def format_whatif_table(rows: Iterable[Sequence[object]],
                        title: str | None = None) -> str:
    """What-if scenario table: per query the verdicts and the plan counts.

    ``rows`` are ``(query, loss fraction, worst normalised slack, reused,
    warm, cold)`` as produced by
    :meth:`repro.service.catalog.ScenarioRunResult.rows`; the plan columns
    show how much of each query was served from the session cache.
    """
    headers = ["query", "loss %", "worst slack", "reused", "warm", "cold"]
    return format_table(headers, rows, title=title)


def format_path_latency_table(latencies: Iterable[object],
                              title: str | None = "End-to-end path latency",
                              ) -> str:
    """Per-path latency table (the system what-if layer's path queries).

    ``latencies`` is an iterable of :class:`repro.core.paths.PathLatency`
    (or anything exposing the same ``as_row``); columns are the worst and
    best case, the end-to-end jitter bound, and the hop count.  Unbounded
    paths render as ``unbounded`` rather than ``inf``.
    """
    headers = ["path", "worst [ms]", "best [ms]", "jitter [ms]", "hops"]
    rows = [entry.as_row() if hasattr(entry, "as_row") else list(entry)
            for entry in latencies]
    return format_table(headers, rows, title=title)


def format_metrics_table(snapshot: Mapping[str, Mapping[str, object]],
                         title: str | None = None) -> str:
    """Render a :meth:`repro.obs.metrics.MetricsRegistry.snapshot`.

    Counters and gauges share one name/value table; histograms get a
    second table with their count, sum and mean (the full per-bucket
    breakdown stays in the structured snapshot / Prometheus rendering,
    where tooling can consume it).
    """
    scalar_rows: list[list[object]] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        scalar_rows.append([name, "counter", value])
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        scalar_rows.append([name, "gauge", value])
    parts: list[str] = []
    if scalar_rows:
        parts.append(format_table(["metric", "kind", "value"],
                                  scalar_rows, title=title))
        title = None
    histogram_rows: list[list[object]] = []
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        count = data["count"]
        total = data["sum"]
        mean = total / count if count else 0.0
        histogram_rows.append([name, count, float(total), mean])
    if histogram_rows:
        parts.append(format_table(["histogram", "count", "sum", "mean"],
                                  histogram_rows, title=title))
    if not parts:
        return title or "(no metrics recorded)"
    return "\n\n".join(parts)


def format_trace(trace: Mapping[str, object],
                 title: str | None = None) -> str:
    """Render one trace (``Trace.to_json`` output) as an indented tree.

    The root line carries the trace id, op and total duration; each span
    line shows its start offset and duration, children indented under
    their parent.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"trace {trace.get('trace_id')}  op={trace.get('op')}"
        f"  target={trace.get('target')}"
        f"  total={float(trace.get('duration_ms', 0.0)):.3f} ms")

    def _walk(span: Mapping[str, object], depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{span.get('name')}"
            f"  +{float(span.get('start_ms', 0.0)):.3f} ms"
            f"  {float(span.get('duration_ms', 0.0)):.3f} ms")
        for child in span.get("children", ()):  # type: ignore[union-attr]
            _walk(child, depth + 1)

    for span in trace.get("spans", ()):  # type: ignore[union-attr]
        _walk(span, 1)
    return "\n".join(lines)


def format_monitor_status(status: Mapping[str, object],
                          title: str | None = None) -> str:
    """Render a conformance monitor's ``status()`` snapshot.

    One header line with the stream-level counters, then one row per
    registered message: current analytic bound, policy deadline, observed
    maximum (blank until the message completed at least once), frame and
    violation counts, and the registered vs fitted jitter (the latter
    blank while the observed arrival envelope still fits the registered
    event model).
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    overrides = status.get("overrides") or []
    lines.append(
        f"monitor {status.get('target')}: window {status.get('window')} "
        f"({float(status.get('window_ms', 0.0)):g} ms), "
        f"{status.get('frames')} frames, "
        f"{status.get('violations')} violation(s), "
        f"{status.get('refits')} refit(s), "
        f"{len(overrides)} override(s)")
    for alert in status.get("active_alerts", ()):
        lines.append(
            f"  ALERT {alert.get('rule')}"
            f" [{alert.get('subject') or 'global'}]")
    rows: list[list[object]] = []
    messages = status.get("messages", {})
    for name in sorted(messages):
        entry = messages[name]
        bound = entry.get("bound")
        observed = entry.get("observed_max")
        fitted = entry.get("fitted_jitter")
        rows.append([
            name,
            float(bound) if bound is not None else "unbounded",
            float(entry.get("deadline", 0.0)),
            float(observed) if observed is not None else "",
            entry.get("frames", 0),
            entry.get("violations", 0),
            float(entry.get("registered_jitter", 0.0)),
            float(fitted) if fitted is not None else "",
        ])
    table = format_table(
        ["message", "bound ms", "deadline ms", "observed max",
         "frames", "violations", "reg jitter", "fitted jitter"],
        rows)
    return "\n".join(lines) + "\n" + table


def format_alerts(alerts: Mapping[str, object],
                  title: str | None = None) -> str:
    """Render a ``monitor_alerts`` payload: fired log plus active set."""
    fired = alerts.get("fired", ())
    rows = [[alert.get("rule"), alert.get("subject") or "global",
             alert.get("window"), float(alert.get("value", 0.0)),
             float(alert.get("threshold", 0.0)), alert.get("expr")]
            for alert in fired]
    table = format_table(
        ["rule", "subject", "window", "value", "threshold", "expr"],
        rows, title=title)
    active = alerts.get("active", ())
    if active:
        names = ", ".join(
            f"{entry.get('rule')}[{entry.get('subject') or 'global'}]"
            for entry in active)
        return f"{table}\nactive: {names}"
    return f"{table}\nactive: none"


def format_session_stats(stats: Iterable[object],
                         title: str | None = "Session statistics") -> str:
    """Per-session cache statistics table (the daemon's stats endpoint).

    ``stats`` is an iterable of
    :class:`repro.service.session.SessionStats` (or anything exposing the
    same ``as_row``); columns are the cached-configuration count, query and
    cache-hit/miss totals, evictions, and the aggregated per-message plan
    counts (reused / warm-started / cold).
    """
    headers = ["session", "configs", "queries", "hits", "misses",
               "evicted", "reused", "warm", "cold"]
    rows = [entry.as_row() if hasattr(entry, "as_row") else list(entry)
            for entry in stats]
    return format_table(headers, rows, title=title)

"""Robustness metrics and maximum-tolerable-jitter search.

Section 5 of the paper: once the sensitivity analysis has been conducted,
"jitter constraints for the most critical (or sensitive) messages can be
formulated as requirements for ECU suppliers".  The functions here compute
exactly those constraints: the largest jitter (global, or per message) for
which the bus still meets all deadlines, found by binary search over the
schedulability analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.schedulability import SchedulabilityReport, analyze_schedulability
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.errors.models import ErrorModel


@dataclass(frozen=True)
class MaxJitterResult:
    """Result of a maximum-tolerable-jitter search."""

    scope: str
    max_feasible_fraction: float
    first_infeasible_fraction: float
    iterations: int

    @property
    def max_feasible_percent(self) -> float:
        """Maximum tolerable jitter in percent of the message period(s)."""
        return self.max_feasible_fraction * 100.0

    def describe(self) -> str:
        """One-line summary used in requirement documents."""
        return (f"{self.scope}: tolerates jitters up to "
                f"{self.max_feasible_percent:.1f} % of the period")


def _is_feasible(
    kmatrix: KMatrix,
    bus: CanBus,
    jitter_fraction: float,
    error_model: ErrorModel | None,
    deadline_policy: str,
    controllers: Mapping[str, ControllerModel] | None,
) -> bool:
    """Whether all deadlines are met at the given global jitter fraction."""
    report = analyze_schedulability(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        assumed_jitter_fraction=jitter_fraction,
        deadline_policy=deadline_policy, controllers=controllers)
    return report.all_deadlines_met


def max_tolerable_jitter_fraction(
    kmatrix: KMatrix,
    bus: CanBus,
    error_model: ErrorModel | None = None,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
    upper_bound: float = 1.0,
    tolerance: float = 0.005,
) -> MaxJitterResult:
    """Largest global jitter fraction at which no deadline is missed.

    Binary search between 0 and ``upper_bound``; returns the boundary with a
    resolution of ``tolerance`` (0.5 % of the period by default).  If even
    zero jitter is infeasible both bounds are zero; if the system tolerates
    ``upper_bound`` the first infeasible fraction is reported as infinity.
    """
    if not _is_feasible(kmatrix, bus, 0.0, error_model, deadline_policy,
                        controllers):
        return MaxJitterResult(scope="bus", max_feasible_fraction=0.0,
                               first_infeasible_fraction=0.0, iterations=1)
    if _is_feasible(kmatrix, bus, upper_bound, error_model, deadline_policy,
                    controllers):
        return MaxJitterResult(scope="bus", max_feasible_fraction=upper_bound,
                               first_infeasible_fraction=math.inf, iterations=2)
    low, high = 0.0, upper_bound
    iterations = 2
    while high - low > tolerance:
        mid = (low + high) / 2.0
        iterations += 1
        if _is_feasible(kmatrix, bus, mid, error_model, deadline_policy,
                        controllers):
            low = mid
        else:
            high = mid
    return MaxJitterResult(scope="bus", max_feasible_fraction=low,
                           first_infeasible_fraction=high,
                           iterations=iterations)


def max_tolerable_jitter_per_message(
    kmatrix: KMatrix,
    bus: CanBus,
    error_model: ErrorModel | None = None,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
    background_jitter_fraction: float = 0.0,
    upper_bound: float = 2.0,
    tolerance: float = 0.01,
) -> dict[str, MaxJitterResult]:
    """Per-message jitter budgets with the rest of the bus held fixed.

    For each message, all other messages keep ``background_jitter_fraction``
    (or their known jitter) while the jitter of the message under study is
    increased until some deadline on the bus is missed.  The result is the
    jitter requirement the OEM can put into that message's supplier
    specification.
    """
    results: dict[str, MaxJitterResult] = {}
    for message in kmatrix:
        def feasible_at(fraction: float, name: str = message.name) -> bool:
            probe = kmatrix.map_messages(
                lambda m: m.with_jitter(fraction * m.period)
                if m.name == name else m)
            probe = probe.with_assumed_jitters(background_jitter_fraction)
            report = analyze_schedulability(
                kmatrix=probe, bus=bus, error_model=error_model,
                assumed_jitter_fraction=background_jitter_fraction,
                deadline_policy=deadline_policy, controllers=controllers)
            return report.all_deadlines_met

        if not feasible_at(0.0):
            results[message.name] = MaxJitterResult(
                scope=message.name, max_feasible_fraction=0.0,
                first_infeasible_fraction=0.0, iterations=1)
            continue
        if feasible_at(upper_bound):
            results[message.name] = MaxJitterResult(
                scope=message.name, max_feasible_fraction=upper_bound,
                first_infeasible_fraction=math.inf, iterations=2)
            continue
        low, high = 0.0, upper_bound
        iterations = 2
        while high - low > tolerance:
            mid = (low + high) / 2.0
            iterations += 1
            if feasible_at(mid):
                low = mid
            else:
                high = mid
        results[message.name] = MaxJitterResult(
            scope=message.name, max_feasible_fraction=low,
            first_infeasible_fraction=high, iterations=iterations)
    return results


def robustness_metrics(report: SchedulabilityReport) -> dict[str, float]:
    """Aggregate robustness indicators of one configuration.

    Returns the metrics the optimizer trades off: total positive slack,
    worst normalised slack, and the loss fraction.
    """
    return {
        "loss_fraction": report.loss_fraction,
        "total_slack_ms": report.total_slack,
        "worst_normalized_slack": report.worst_normalized_slack,
    }

"""Sensitivity and robustness analysis (Section 4.1 of the paper).

"We repeated these experiments, and within minutes we determined how message
response times vary over several jitter and error distributions.  We found
out that some messages are relatively sensitive to jitters and errors, while
others are quite robust."

This package provides:

* jitter-sensitivity curves (response time as a function of assumed jitter,
  Figure 4) with the robust / medium / sensitive / very-sensitive
  classification;
* error-sensitivity curves (response time as a function of the error rate);
* slack-based robustness metrics and binary-search for the maximum jitter a
  message (or the whole bus) can tolerate -- the numbers an OEM turns into
  supplier requirements (Section 5).
"""

from repro.sensitivity.jitter import (
    JitterSensitivityCurve,
    SensitivityClass,
    classify_curve,
    jitter_sensitivity,
    jitter_sensitivity_all,
)
from repro.sensitivity.error import ErrorSensitivityCurve, error_sensitivity
from repro.sensitivity.robustness import (
    MaxJitterResult,
    max_tolerable_jitter_fraction,
    max_tolerable_jitter_per_message,
    robustness_metrics,
)

__all__ = [
    "SensitivityClass",
    "JitterSensitivityCurve",
    "jitter_sensitivity",
    "jitter_sensitivity_all",
    "classify_curve",
    "ErrorSensitivityCurve",
    "error_sensitivity",
    "MaxJitterResult",
    "max_tolerable_jitter_fraction",
    "max_tolerable_jitter_per_message",
    "robustness_metrics",
]

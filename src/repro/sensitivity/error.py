"""Error-sensitivity analysis.

The paper reports that "similar results have been obtained for
error-sensitivity": response times of some messages grow quickly as the bus
error rate increases while others barely react.  The sweep variable here is
the error inter-arrival time (smaller = more errors); the curve records the
worst-case response time per error rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.response_time import CanBusAnalysis
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.errors.models import BurstErrorModel, ErrorModel, SporadicErrorModel


#: Default error inter-arrival sweep in milliseconds, from "practically error
#: free" down to "heavily disturbed".
DEFAULT_ERROR_INTERARRIVALS_MS: tuple[float, ...] = (
    1000.0, 500.0, 200.0, 100.0, 50.0, 20.0, 10.0, 5.0)


@dataclass(frozen=True)
class ErrorSensitivityCurve:
    """Response time of one message as a function of the error rate."""

    name: str
    error_interarrivals: tuple[float, ...]
    response_times: tuple[float, ...]
    period: float
    deadline: float
    model_kind: str = "sporadic"

    @property
    def baseline(self) -> float:
        """Response time at the largest (most benign) inter-arrival time."""
        return self.response_times[0]

    @property
    def absolute_increase(self) -> float:
        """Response-time growth from the most benign to the harshest point."""
        final = self.response_times[-1]
        if math.isinf(final):
            return math.inf
        return final - self.baseline

    def first_violation_interarrival(self) -> float | None:
        """Largest error inter-arrival at which the deadline is already missed."""
        for interarrival, response in zip(self.error_interarrivals,
                                          self.response_times):
            if response > self.deadline + 1e-9:
                return interarrival
        return None

    def as_rows(self) -> list[tuple[float, float]]:
        """(error inter-arrival, response time) rows for reporting."""
        return list(zip(self.error_interarrivals, self.response_times))


def _model_for(interarrival: float, kind: str) -> ErrorModel:
    """Build the error model for one sweep point."""
    if kind == "sporadic":
        return SporadicErrorModel(min_interarrival=interarrival)
    if kind == "burst":
        return BurstErrorModel(min_interarrival=interarrival,
                               burst_length=3,
                               intra_burst_gap=min(0.5, interarrival / 10.0))
    raise ValueError(f"unknown error model kind {kind!r}")


def error_sensitivity(
    message_names: Sequence[str] | None,
    kmatrix: KMatrix,
    bus: CanBus,
    error_interarrivals: Sequence[float] = DEFAULT_ERROR_INTERARRIVALS_MS,
    model_kind: str = "sporadic",
    assumed_jitter_fraction: float = 0.0,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
) -> dict[str, ErrorSensitivityCurve]:
    """Error-sensitivity curves for the named messages (or all of them).

    Parameters
    ----------
    message_names:
        Names to analyse; ``None`` analyses every message in the K-Matrix.
    error_interarrivals:
        Error (or error-burst) minimum inter-arrival times in milliseconds,
        swept from benign to harsh.
    model_kind:
        ``"sporadic"`` or ``"burst"``.
    """
    names = list(message_names) if message_names is not None else [
        m.name for m in kmatrix]
    # Sweep from benign (large inter-arrival) to harsh as typed
    # ErrorModelDelta queries through one cached-kernel session: shrinking
    # the error inter-arrival only increases the worst-case error overhead,
    # so the session's planner warm-starts each point from the previous
    # solution (see the warm-start contract in
    # :mod:`repro.analysis.response_time`) without changing any result bit.
    from repro.service.deltas import ErrorModelDelta
    from repro.service.session import AnalysisSession

    benign_to_harsh = sorted(range(len(error_interarrivals)),
                             key=lambda i: -error_interarrivals[i])
    session = AnalysisSession(
        kmatrix=kmatrix, bus=bus,
        error_model=_model_for(
            error_interarrivals[benign_to_harsh[0]], model_kind),
        assumed_jitter_fraction=assumed_jitter_fraction,
        controllers=controllers)
    results_by_index: dict[int, dict] = {}
    previous = None
    for index in benign_to_harsh:
        interarrival = error_interarrivals[index]
        previous = session.query(
            (ErrorModelDelta(_model_for(interarrival, model_kind)),),
            warm_from=previous,
            label=f"errors >= {interarrival:g}ms", with_report=False)
        results_by_index[index] = previous.results
    per_point_results = [
        results_by_index[i] for i in range(len(error_interarrivals))]

    reference = CanBusAnalysis(
        kmatrix=kmatrix, bus=bus,
        error_model=_model_for(error_interarrivals[0], model_kind),
        assumed_jitter_fraction=assumed_jitter_fraction,
        controllers=controllers)

    curves: dict[str, ErrorSensitivityCurve] = {}
    for name in names:
        message = kmatrix.get(name)
        responses = tuple(result[name].worst_case for result in per_point_results)
        deadline = message.effective_deadline(
            policy=deadline_policy, jitter=reference.jitter(message))
        curves[name] = ErrorSensitivityCurve(
            name=name,
            error_interarrivals=tuple(error_interarrivals),
            response_times=responses,
            period=message.period,
            deadline=deadline,
            model_kind=model_kind,
        )
    return curves

"""Jitter-sensitivity analysis (Figure 4).

For every message, sweep the assumed send jitter (as a percentage of each
message's period, exactly like the paper) and record the worst-case response
time.  A message whose response time grows quickly with jitter is
*sensitive*; one whose response time stays flat is *robust*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Sequence

from repro.analysis.response_time import CanBusAnalysis
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.errors.models import ErrorModel


#: Default jitter sweep matching the x-axis of Figures 4 and 5 (0..60 %).
DEFAULT_JITTER_FRACTIONS: tuple[float, ...] = tuple(
    round(0.05 * i, 2) for i in range(13))


class SensitivityClass(str, Enum):
    """Qualitative classification used in Figure 4."""

    ROBUST = "robust"
    MEDIUM = "medium sensitivity"
    SENSITIVE = "sensitive"
    VERY_SENSITIVE = "very sensitive"


@dataclass(frozen=True)
class JitterSensitivityCurve:
    """Response time of one message as a function of the assumed jitter."""

    name: str
    jitter_fractions: tuple[float, ...]
    response_times: tuple[float, ...]
    period: float
    deadline: float

    def __post_init__(self) -> None:
        if len(self.jitter_fractions) != len(self.response_times):
            raise ValueError("jitter_fractions and response_times must align")

    @property
    def baseline(self) -> float:
        """Response time at the smallest analysed jitter."""
        return self.response_times[0]

    @property
    def final(self) -> float:
        """Response time at the largest analysed jitter."""
        return self.response_times[-1]

    @property
    def absolute_increase(self) -> float:
        """Total response-time growth over the sweep (ms)."""
        if math.isinf(self.final):
            return math.inf
        return self.final - self.baseline

    @property
    def relative_increase(self) -> float:
        """Response-time growth relative to the baseline."""
        if self.baseline <= 0:
            return math.inf
        return self.absolute_increase / self.baseline

    @property
    def normalized_slope(self) -> float:
        """Average response-time growth per unit of jitter fraction,
        normalised by the message period (dimensionless).

        A value of 1.0 means the response time grows exactly as fast as the
        injected jitter; values well below 1 indicate robustness, values
        above 1 indicate amplification through interference.
        """
        span = self.jitter_fractions[-1] - self.jitter_fractions[0]
        if span <= 0 or self.period <= 0:
            return math.inf
        if math.isinf(self.absolute_increase):
            return math.inf
        return (self.absolute_increase / self.period) / span

    def first_violation_fraction(self) -> float | None:
        """Smallest analysed jitter fraction at which the deadline is missed."""
        for fraction, response in zip(self.jitter_fractions, self.response_times):
            if response > self.deadline + 1e-9:
                return fraction
        return None

    def classification(self) -> SensitivityClass:
        """Qualitative class of this curve (see :func:`classify_curve`)."""
        return classify_curve(self)

    def as_rows(self) -> list[tuple[float, float]]:
        """(jitter fraction, response time) rows for reporting."""
        return list(zip(self.jitter_fractions, self.response_times))


def classify_curve(curve: JitterSensitivityCurve,
                   robust_slope: float = 0.25,
                   medium_slope: float = 0.75,
                   sensitive_slope: float = 1.5) -> SensitivityClass:
    """Classify a sensitivity curve by its normalised slope.

    The thresholds translate the qualitative bands of Figure 4 into slope
    ranges: a robust message gains well under one period of response time per
    period of injected jitter; a very sensitive one amplifies the jitter
    through preemption by other (also jittering) messages.
    """
    slope = curve.normalized_slope
    if slope <= robust_slope:
        return SensitivityClass.ROBUST
    if slope <= medium_slope:
        return SensitivityClass.MEDIUM
    if slope <= sensitive_slope:
        return SensitivityClass.SENSITIVE
    return SensitivityClass.VERY_SENSITIVE


def jitter_sensitivity(
    message_name: str,
    kmatrix: KMatrix,
    bus: CanBus,
    jitter_fractions: Sequence[float] = DEFAULT_JITTER_FRACTIONS,
    error_model: ErrorModel | None = None,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
) -> JitterSensitivityCurve:
    """Sensitivity curve of a single message.

    The assumed jitter fraction is applied to *all* messages with unknown
    jitter (the global what-if experiment of the paper), so the curve of one
    message reflects both its own jitter and the increased interference from
    the others.  Delegates to :func:`jitter_sensitivity_all` so the
    warm-started shared sweep is the only analysis code path.
    """
    return jitter_sensitivity_all(
        kmatrix=kmatrix, bus=bus, jitter_fractions=jitter_fractions,
        error_model=error_model, deadline_policy=deadline_policy,
        controllers=controllers,
        message_names=(message_name,))[message_name]


def jitter_sensitivity_all(
    kmatrix: KMatrix,
    bus: CanBus,
    jitter_fractions: Sequence[float] = DEFAULT_JITTER_FRACTIONS,
    error_model: ErrorModel | None = None,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
    message_names: Sequence[str] | None = None,
) -> dict[str, JitterSensitivityCurve]:
    """Sensitivity curves of every message, sharing the analysis sweep.

    The sweep is issued as :class:`~repro.service.deltas.JitterDelta`
    queries through one cached-kernel
    :class:`~repro.service.session.AnalysisSession`, evaluated in ascending
    jitter order with each point chained to the previous one.  Raising the
    assumed jitter only enlarges the analysis right-hand side, so the
    session's planner **warm-starts** every affected fixed point from the
    previous point's solution and **reuses** the results of messages whose
    interference the new fraction does not touch (known-jitter messages
    above every changed one); see the warm-start contract in
    :mod:`repro.analysis.response_time`.  The swept curve is bit-identical
    to thirteen independent cold analyses while skipping most fixed-point
    iterations.

    ``message_names`` restricts the sweep to the named messages (e.g. the
    single-message convenience wrapper above): only their fixed points are
    solved per point -- a message's response time depends on the *models* of
    higher-priority messages, never on their response times, so the subset
    sweep returns exactly the full sweep's values at a fraction of the cost.
    """
    from repro.service.deltas import JitterDelta
    from repro.service.session import AnalysisSession

    if message_names is None:
        targets = list(kmatrix)
        names: tuple[str, ...] | None = None
    else:
        targets = [kmatrix.get(name) for name in message_names]
        names = tuple(message.name for message in targets)
    ascending = sorted(range(len(jitter_fractions)),
                       key=lambda i: jitter_fractions[i])
    session = AnalysisSession(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        assumed_jitter_fraction=jitter_fractions[ascending[0]],
        controllers=controllers)
    results_by_index: dict[int, Mapping] = {}
    previous = None
    for index in ascending:
        fraction = jitter_fractions[index]
        previous = session.query(
            (JitterDelta(fraction=fraction),),
            warm_from=previous, message_names=names,
            label=f"jitter {fraction:.0%}", with_report=False)
        results_by_index[index] = previous.results
    per_point_results = [results_by_index[i] for i in range(len(jitter_fractions))]

    curves: dict[str, JitterSensitivityCurve] = {}
    reference = CanBusAnalysis(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        assumed_jitter_fraction=jitter_fractions[0], controllers=controllers)
    for message in targets:
        responses = tuple(result[message.name].worst_case
                          for result in per_point_results)
        deadline = message.effective_deadline(
            policy=deadline_policy, jitter=reference.jitter(message))
        curves[message.name] = JitterSensitivityCurve(
            name=message.name,
            jitter_fractions=tuple(jitter_fractions),
            response_times=responses,
            period=message.period,
            deadline=deadline,
        )
    return curves


def classify_all(curves: Mapping[str, JitterSensitivityCurve],
                 ) -> dict[SensitivityClass, list[str]]:
    """Group message names by sensitivity class (the legend of Figure 4)."""
    groups: dict[SensitivityClass, list[str]] = {c: [] for c in SensitivityClass}
    for name, curve in curves.items():
        groups[curve.classification()].append(name)
    for names in groups.values():
        names.sort()
    return groups

"""Crash-safe, size-bounded, disk-backed result store.

Layout
------
One JSON file per entry::

    <root>/
      entries/
        bus-<digest>.json        # AnalysisSession fixed points
        system-<digest>.json     # SystemAnalysisResult

Every file is an envelope ``{"schema": N, "kind": ..., "key": ...,
"payload": ...}`` written to a unique temp name in the same directory and
published with ``os.replace`` -- readers only ever see a complete old entry
or a complete new one, never a torn write, and two daemons sharing one
store directory race benignly (last rename wins; both sides wrote the same
canonical fixed point).

Corruption tolerance
--------------------
``get`` never raises.  Unparseable bytes (a torn write that *bypassed* the
rename, disk rot) are counted as ``corrupt``, quarantined by unlinking, and
reported as a miss; an envelope with the wrong ``schema`` version is counted
as ``stale`` and reported as a miss *without* deleting it (a newer daemon
may own it).  Either way the caller falls back to a cold solve.

Eviction
--------
Reads touch the entry's mtime, so mtime order is LRU order.  When
``max_bytes`` is set, every publish trims oldest-read entries until the
store fits; ``compact()`` applies the same policy on demand.

Fault injection sites (``REPRO_FAULTS``)
----------------------------------------
``store.torn_write``
    A publish writes only a truncated prefix of the entry bytes *directly
    to the final path*, simulating a crash mid-write without the atomic
    rename.  The next lookup must degrade to a counted miss.
``store.stale_schema``
    A publish stamps ``schema + 1`` on the envelope, simulating an entry
    left behind by a newer daemon.  The next lookup must degrade to a
    counted miss without destroying the entry.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.server import faults as faults_mod
from repro.store.codec import SCHEMA_VERSION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.metrics import MetricsRegistry

#: Entry kinds the serving stack persists.
KINDS = ("bus", "system")


class ResultStore:
    """Fingerprint-keyed persistent cache of converged analysis results.

    Parameters
    ----------
    root:
        Store directory; created (with parents) if missing.
    max_bytes:
        Optional size bound.  ``None`` disables eviction.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given,
        lookups/publishes/evictions/corruption are counted there as well
        as in the local stats.
    faults:
        Optional :class:`~repro.server.faults.FaultInjector`.  Defaults to
        the ``REPRO_FAULTS`` environment spec, matching the daemon.
    fsync:
        Fsync entry files before renaming them into place.  Off by
        default: the atomic rename already guarantees consistency against
        process crashes, and per-publish fsyncs dominate publish cost;
        turn it on when surviving power loss matters.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        max_bytes: Optional[int] = None,
        *,
        metrics: "Optional[MetricsRegistry]" = None,
        faults: Optional[faults_mod.FaultInjector] = None,
        fsync: bool = False,
    ) -> None:
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.fsync = fsync
        self.faults = faults if faults is not None else faults_mod.from_env()
        self._lock = threading.Lock()
        self._counters = {
            "hits": 0,
            "misses": 0,
            "corrupt": 0,
            "stale": 0,
            "publishes": 0,
            "publish_errors": 0,
            "evictions": 0,
        }
        self.metrics = None
        self._m_lookups = {}
        self._m_publishes = None
        self._m_publish_errors = None
        self._m_evictions = None
        self._m_bytes = None
        self._m_entries = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Publish counters/gauges into ``metrics`` from now on.

        Split from the constructor because the daemon adopts a store that
        the CLI built before the daemon's registry existed.
        """
        self.metrics = metrics
        self._m_lookups = {
            outcome: metrics.counter("store_lookups_total", result=outcome)
            for outcome in ("hit", "miss", "corrupt", "stale")
        }
        self._m_publishes = metrics.counter("store_publishes_total")
        self._m_publish_errors = metrics.counter("store_publish_errors_total")
        self._m_evictions = metrics.counter("store_evictions_total")
        self._m_bytes = metrics.gauge("store_bytes")
        self._m_entries = metrics.gauge("store_entries")

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #
    def _path(self, kind: str, digest: str) -> Path:
        if kind not in KINDS:
            raise ValueError(f"unknown store kind {kind!r}")
        safe = "".join(c for c in digest if c.isalnum() or c in "-_")
        if not safe or safe != digest:
            raise ValueError(f"bad store digest {digest!r}")
        return self.entries_dir / f"{kind}-{digest}.json"

    def contains(self, kind: str, digest: str) -> bool:
        """Cheap existence probe (no counters, no mtime touch)."""
        return self._path(kind, digest).exists()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, kind: str, digest: str) -> Optional[dict]:
        """Return the decoded payload for ``(kind, digest)`` or ``None``.

        Never raises on store content: torn, foreign, or stale entries are
        counted and reported as misses so the caller cold-solves.
        """
        path = self._path(kind, digest)
        try:
            data = path.read_bytes()
        except OSError:
            self._count("misses", "miss")
            return None
        try:
            record = json.loads(data)
        except ValueError:
            self._quarantine(path)
            self._count("corrupt", "corrupt")
            return None
        if not isinstance(record, dict):
            self._quarantine(path)
            self._count("corrupt", "corrupt")
            return None
        if record.get("schema") != SCHEMA_VERSION:
            # A different schema version is not damage: another daemon
            # generation may legitimately own this entry.  Miss, keep it.
            self._count("stale", "stale")
            return None
        payload = record.get("payload")
        if record.get("kind") != kind or record.get("key") != digest or not isinstance(
            payload, dict
        ):
            self._quarantine(path)
            self._count("corrupt", "corrupt")
            return None
        try:  # LRU bookkeeping; best-effort (entry may be racing eviction)
            os.utime(path)
        except OSError:
            pass
        self._count("hits", "hit")
        return payload

    # ------------------------------------------------------------------ #
    # Publish
    # ------------------------------------------------------------------ #
    def put(self, kind: str, digest: str, payload: dict) -> bool:
        """Atomically persist ``payload``; return True on success.

        Never raises: encoding or filesystem failures are counted as
        ``publish_errors`` and reported as False (the store is a cache --
        losing a publish costs a future cold solve, nothing more).
        """
        path = self._path(kind, digest)
        record = {"schema": SCHEMA_VERSION, "kind": kind, "key": digest, "payload": payload}
        rule = self.faults.check("store.stale_schema") if self.faults else None
        if rule is not None:
            record["schema"] = SCHEMA_VERSION + 1
        try:
            data = json.dumps(record, separators=(",", ":"), allow_nan=False).encode("ascii")
        except (TypeError, ValueError):
            self._count_publish(error=True)
            return False
        rule = self.faults.check("store.torn_write") if self.faults else None
        if rule is not None:
            # Simulate a crash mid-write with no atomic rename: leave a
            # truncated entry at the *final* path.
            try:
                with open(path, "wb") as handle:
                    handle.write(data[: max(1, len(data) // 2)])
            except OSError:
                pass
            self._count_publish(error=True)
            return False
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self._count_publish(error=True)
            return False
        self._count_publish(error=False)
        if self.max_bytes is not None:
            self._evict_to(self.max_bytes)
        return True

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Snapshot of counters plus on-disk entry count / byte total."""
        entries, total = self._scan()
        with self._lock:
            counters = dict(self._counters)
        self._publish_gauges(len(entries), total)
        return {
            "root": str(self.root),
            "schema": SCHEMA_VERSION,
            "max_bytes": self.max_bytes,
            "entries": len(entries),
            "bytes": total,
            **counters,
        }

    def compact(self, max_bytes: Optional[int] = None) -> dict:
        """Evict oldest-read entries down to ``max_bytes`` (or the bound)."""
        limit = self.max_bytes if max_bytes is None else max_bytes
        if limit is not None:
            self._evict_to(limit)
        return self.stats()

    def clear(self) -> int:
        """Remove every entry; return how many were removed."""
        removed = 0
        for path, _size, _mtime in self._scan()[0]:
            if self._quarantine(path):
                removed += 1
        self._publish_gauges(0, 0)
        return removed

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _scan(self) -> "tuple[list[tuple[Path, int, float]], int]":
        entries: "list[tuple[Path, int, float]]" = []
        total = 0
        try:
            names = os.listdir(self.entries_dir)
        except OSError:
            return [], 0
        for name in names:
            if not name.endswith(".json"):
                continue  # temp files and foreign droppings don't count
            path = self.entries_dir / name
            try:
                stat = path.stat()
            except OSError:
                continue  # raced an eviction/clear from another process
            entries.append((path, stat.st_size, stat.st_mtime))
            total += stat.st_size
        return entries, total

    def _evict_to(self, limit: int) -> None:
        with self._lock:
            entries, total = self._scan()
            if total <= limit:
                self._publish_gauges(len(entries), total)
                return
            entries.sort(key=lambda item: item[2])  # oldest mtime first
            evicted = 0
            for path, size, _mtime in entries:
                if total <= limit:
                    break
                if self._quarantine(path):
                    total -= size
                    evicted += 1
            self._counters["evictions"] += evicted
            if self._m_evictions is not None and evicted:
                self._m_evictions.inc(evicted)
            self._publish_gauges(len(entries) - evicted, total)

    def _quarantine(self, path: Path) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def _count(self, counter: str, outcome: str) -> None:
        with self._lock:
            self._counters[counter] += 1
        instrument = self._m_lookups.get(outcome)
        if instrument is not None:
            instrument.inc()

    def _count_publish(self, *, error: bool) -> None:
        key = "publish_errors" if error else "publishes"
        with self._lock:
            self._counters[key] += 1
        instrument = self._m_publish_errors if error else self._m_publishes
        if instrument is not None:
            instrument.inc()

    def _publish_gauges(self, entries: int, total: int) -> None:
        if self._m_bytes is not None:
            self._m_bytes.set(total)
        if self._m_entries is not None:
            self._m_entries.set(entries)

    def describe(self) -> str:
        """One-line summary for logs."""
        stats = self.stats()
        bound = "unbounded" if self.max_bytes is None else f"{self.max_bytes} B"
        return f"ResultStore({self.root}, {stats['entries']} entries, {stats['bytes']} B, {bound})"

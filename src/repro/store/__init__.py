"""Disk-backed persistent result store (PR 9).

The serving stack's caches -- session fixed points, system-session results,
pool shards -- all die with the process.  This package persists converged
results on disk, keyed by the same deterministic fingerprints the in-memory
caches already use, so a daemon restart warm-starts from the prior fleet's
converged state and identical configurations registered by different clients
dedupe globally.

Design points (see ``store.py`` for details):

- dependency-free: one JSON file per entry under ``<root>/entries/``,
  written atomically (tmp file + ``os.replace``);
- versioned on-disk schema: every entry carries ``schema``/``kind``/``key``
  envelope fields, and anything that fails to decode -- torn write, stale
  schema, foreign file -- is a *miss*, never an exception;
- bit-exact floats: the codec round-trips every float (including the
  non-finite worst cases of unbounded results) exactly, so a store-served
  answer is bit-identical to a cold solve;
- LRU / size-bounded: reads touch the entry mtime, and ``max_bytes``
  evicts oldest-read entries first.
"""

from repro.store.codec import (
    SCHEMA_VERSION,
    bus_payload_from_json,
    bus_payload_to_json,
    system_result_from_json,
    system_result_to_json,
)
from repro.store.store import ResultStore

__all__ = [
    "ResultStore",
    "SCHEMA_VERSION",
    "bus_payload_to_json",
    "bus_payload_from_json",
    "system_result_to_json",
    "system_result_from_json",
]

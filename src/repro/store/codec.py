"""Bit-exact JSON codecs for persisted analysis results.

The wire protocol (``repro.server.protocol``) already round-trips finite
floats bit-exactly: ``json.dumps`` emits ``repr(float)`` which Python's
parser maps back to the identical IEEE-754 double.  The store codec keeps
that property and extends it to the *non-finite* values the protocol is
allowed to lose: an unbounded response time carries ``worst_case == inf``,
and ``result_to_json`` nulls it because NaN/Infinity are not valid JSON.
Persisted entries must instead reproduce the original dataclasses exactly
-- a store-served answer has to be bit-identical to a cold solve -- so
non-finite floats are encoded as the strings ``"inf"``/``"-inf"``/``"nan"``
and everything is serialised with ``allow_nan=False`` to guarantee the
files stay strict JSON.

Two payload kinds exist, matching the two cache layers they warm:

- ``bus``: the converged per-message fixed points of one
  ``AnalysisSession`` configuration (``{name: MessageResponseTime}``),
  keyed by the session fingerprint digest;
- ``system``: a full ``SystemAnalysisResult``, keyed by the
  ``SystemModel.fingerprint()`` digest.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.analysis.response_time import MessageResponseTime
from repro.analysis.schedulability import MessageVerdict, SchedulabilityReport
from repro.core.results import SystemAnalysisResult
from repro.ecu.analysis import TaskResponseTime
from repro.events.model import EventModel

# Bumped whenever the entry envelope or any payload codec changes shape.
# A reader that finds a different version treats the entry as a miss
# (``stale`` counter), never as an error: old daemons can share a store
# directory with new ones and simply re-solve.
SCHEMA_VERSION = 1


class StoreCodecError(ValueError):
    """A persisted payload does not decode to the expected shape."""


def float_to_json(value: float) -> float | str:
    """Encode one float, mapping non-finite values to JSON-safe strings."""
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def float_from_json(value: object) -> float:
    """Decode :func:`float_to_json` output back to the identical double."""
    if isinstance(value, str):
        if value == "inf":
            return math.inf
        if value == "-inf":
            return -math.inf
        if value == "nan":
            return math.nan
        raise StoreCodecError(f"bad float token {value!r}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    raise StoreCodecError(f"bad float value {value!r}")


def message_result_to_json(result: MessageResponseTime) -> dict:
    """Encode one per-message fixed point, losslessly (unlike the wire form)."""
    return {
        "name": result.name,
        "can_id": result.can_id,
        "transmission_time": float_to_json(result.transmission_time),
        "blocking": float_to_json(result.blocking),
        "jitter": float_to_json(result.jitter),
        "worst_case": float_to_json(result.worst_case),
        "best_case": float_to_json(result.best_case),
        "busy_period": float_to_json(result.busy_period),
        "instances_analyzed": result.instances_analyzed,
        "bounded": result.bounded,
        "queuing_delays": [float_to_json(q) for q in result.queuing_delays],
    }


def message_result_from_json(data: Mapping) -> MessageResponseTime:
    """Decode :func:`message_result_to_json` output."""
    try:
        return MessageResponseTime(
            name=str(data["name"]),
            can_id=int(data["can_id"]),
            transmission_time=float_from_json(data["transmission_time"]),
            blocking=float_from_json(data["blocking"]),
            jitter=float_from_json(data["jitter"]),
            worst_case=float_from_json(data["worst_case"]),
            best_case=float_from_json(data["best_case"]),
            busy_period=float_from_json(data["busy_period"]),
            instances_analyzed=int(data["instances_analyzed"]),
            bounded=bool(data["bounded"]),
            queuing_delays=tuple(float_from_json(q) for q in data["queuing_delays"]),
        )
    except (KeyError, TypeError) as exc:
        raise StoreCodecError(f"bad message result: {exc}") from exc


def task_result_to_json(result: TaskResponseTime) -> dict:
    """Encode one per-task fixed point."""
    return {
        "name": result.name,
        "worst_case": float_to_json(result.worst_case),
        "best_case": float_to_json(result.best_case),
        "blocking": float_to_json(result.blocking),
        "busy_period": float_to_json(result.busy_period),
        "instances_analyzed": result.instances_analyzed,
        "bounded": result.bounded,
    }


def task_result_from_json(data: Mapping) -> TaskResponseTime:
    """Decode :func:`task_result_to_json` output."""
    try:
        return TaskResponseTime(
            name=str(data["name"]),
            worst_case=float_from_json(data["worst_case"]),
            best_case=float_from_json(data["best_case"]),
            blocking=float_from_json(data["blocking"]),
            busy_period=float_from_json(data["busy_period"]),
            instances_analyzed=int(data["instances_analyzed"]),
            bounded=bool(data["bounded"]),
        )
    except (KeyError, TypeError) as exc:
        raise StoreCodecError(f"bad task result: {exc}") from exc


def verdict_to_json(verdict: MessageVerdict) -> dict:
    """Encode one schedulability verdict."""
    return {
        "name": verdict.name,
        "can_id": verdict.can_id,
        "worst_case_response": float_to_json(verdict.worst_case_response),
        "deadline": float_to_json(verdict.deadline),
        "slack": float_to_json(verdict.slack),
        "meets_deadline": verdict.meets_deadline,
        "can_be_lost": verdict.can_be_lost,
    }


def verdict_from_json(data: Mapping) -> MessageVerdict:
    """Decode :func:`verdict_to_json` output."""
    try:
        return MessageVerdict(
            name=str(data["name"]),
            can_id=int(data["can_id"]),
            worst_case_response=float_from_json(data["worst_case_response"]),
            deadline=float_from_json(data["deadline"]),
            slack=float_from_json(data["slack"]),
            meets_deadline=bool(data["meets_deadline"]),
            can_be_lost=bool(data["can_be_lost"]),
        )
    except (KeyError, TypeError) as exc:
        raise StoreCodecError(f"bad verdict: {exc}") from exc


def report_to_json(report: SchedulabilityReport) -> dict:
    """Encode one per-bus schedulability report."""
    return {
        "verdicts": [verdict_to_json(v) for v in report.verdicts],
        "deadline_policy": report.deadline_policy,
        "utilization": float_to_json(report.utilization),
    }


def report_from_json(data: Mapping) -> SchedulabilityReport:
    """Decode :func:`report_to_json` output."""
    try:
        return SchedulabilityReport(
            verdicts=tuple(verdict_from_json(v) for v in data["verdicts"]),
            deadline_policy=str(data["deadline_policy"]),
            utilization=float_from_json(data["utilization"]),
        )
    except (KeyError, TypeError) as exc:
        raise StoreCodecError(f"bad report: {exc}") from exc


def bus_payload_to_json(results: Mapping[str, MessageResponseTime]) -> dict:
    """Encode an ``AnalysisSession``'s converged fixed points."""
    return {"results": {name: message_result_to_json(r) for name, r in results.items()}}


def bus_payload_from_json(data: Mapping) -> dict[str, MessageResponseTime]:
    """Decode :func:`bus_payload_to_json` output to ``{name: result}``."""
    try:
        raw = data["results"]
        return {str(name): message_result_from_json(entry) for name, entry in raw.items()}
    except (KeyError, TypeError, AttributeError) as exc:
        raise StoreCodecError(f"bad bus payload: {exc}") from exc


def _model_map_to_json(models: Mapping[str, EventModel]) -> dict:
    # Imported lazily: protocol pulls in the whole model zoo and sits above
    # the session modules that import this codec at module scope.
    from repro.server.protocol import event_model_to_json

    return {name: event_model_to_json(model) for name, model in models.items()}


def _model_map_from_json(data: Mapping) -> dict[str, EventModel]:
    from repro.server.protocol import event_model_from_json

    return {str(name): event_model_from_json(entry) for name, entry in data.items()}


def system_result_to_json(result: SystemAnalysisResult) -> dict:
    """Encode a full :class:`SystemAnalysisResult`, losslessly."""
    return {
        "converged": result.converged,
        "iterations": result.iterations,
        "message_results": {
            name: message_result_to_json(r) for name, r in result.message_results.items()
        },
        "task_results": {name: task_result_to_json(r) for name, r in result.task_results.items()},
        "bus_reports": {name: report_to_json(r) for name, r in result.bus_reports.items()},
        "send_models": _model_map_to_json(result.send_models),
        "arrival_models": _model_map_to_json(result.arrival_models),
    }


def system_result_from_json(data: Mapping) -> SystemAnalysisResult:
    """Decode :func:`system_result_to_json` output."""
    try:
        return SystemAnalysisResult(
            converged=bool(data["converged"]),
            iterations=int(data["iterations"]),
            message_results={
                str(name): message_result_from_json(entry)
                for name, entry in data["message_results"].items()
            },
            task_results={
                str(name): task_result_from_json(entry)
                for name, entry in data["task_results"].items()
            },
            bus_reports={
                str(name): report_from_json(entry) for name, entry in data["bus_reports"].items()
            },
            send_models=_model_map_from_json(data["send_models"]),
            arrival_models=_model_map_from_json(data["arrival_models"]),
        )
    except (KeyError, TypeError, AttributeError) as exc:
        raise StoreCodecError(f"bad system payload: {exc}") from exc

"""Named system-level what-if scenarios and their catalog.

The per-bus :class:`~repro.service.catalog.ScenarioCatalog` registers the
paper's *parameter* families (jitter, errors, priorities); the catalog here
registers its *topology* families -- the architecture moves Figure 3's
integration view is actually about:

* **message re-mapping sweeps** -- one message tried on every other bus;
* **bus-speed degradation** -- one segment stepped down through the
  standard CAN bit rates;
* **gateway failover** -- a gateway's routes migrated, one by one, onto a
  backup gateway.

Scenarios are frozen values over typed
:class:`~repro.whatif.system_deltas.SystemDelta` sequences, so a registered
scenario replays exactly -- through a local
:class:`~repro.whatif.session.SystemSession` or the daemon's
``system_scenario`` endpoint.  Unlike the per-bus families, topology
scenarios depend on the topology: :func:`builtin_system_catalog` derives
the standard families *from* a concrete system (which message, which bus,
which gateway) deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.paths import EndToEndPath, PathLatency
from repro.core.system import SystemModel
from repro.whatif.session import SystemQueryResult, SystemSession
from repro.whatif.system_deltas import (
    AddGatewayRouteDelta,
    BusSpeedDelta,
    GatewayConfigDelta,
    MoveMessageDelta,
    RemoveGatewayRouteDelta,
    SystemDelta,
)

#: Standard CAN bit rates (bit/s), fastest first -- the degradation ladder.
STANDARD_BIT_RATES_BPS: tuple[float, ...] = (
    1_000_000.0, 500_000.0, 250_000.0, 125_000.0)


@dataclass(frozen=True)
class SystemScenarioQuery:
    """One step of a system scenario: a labelled system-delta list."""

    label: str
    deltas: tuple[SystemDelta, ...] = ()


@dataclass(frozen=True)
class SystemScenarioRunResult:
    """Deterministically ordered results of one system-scenario run."""

    scenario: str
    session: str
    queries: tuple[SystemQueryResult, ...]
    path_latencies: tuple[tuple[PathLatency, ...], ...] = ()

    def rows(self) -> list[list[object]]:
        """(query, converged, misses, worst path, invalidated) rows."""
        rows: list[list[object]] = []
        for index, query in enumerate(self.queries):
            result = query.result
            missed = sum(len(report.missed)
                         for report in result.bus_reports.values())
            worst_path = ""
            if self.path_latencies:
                latencies = self.path_latencies[index]
                if latencies:
                    worst_path = max(
                        latency.worst_case for latency in latencies)
            rows.append([
                query.label or query.fingerprint,
                "yes" if result.converged else "NO",
                missed,
                worst_path,
                len(query.stats.invalidated),
            ])
        return rows

    def to_table(self, title: Optional[str] = None) -> str:
        """Render via :func:`repro.reporting.tables.format_table`."""
        from repro.reporting.tables import format_table
        headers = ["query", "converged", "missed", "worst path [ms]",
                   "invalidated"]
        return format_table(
            headers, self.rows(),
            title=title or f"System scenario {self.scenario!r} "
                           f"on {self.session}")

    def describe(self) -> str:
        """Multi-line summary, one line per query."""
        lines = [f"System scenario {self.scenario!r} on {self.session}:"]
        lines.extend("  " + query.describe() for query in self.queries)
        return "\n".join(lines)


@dataclass(frozen=True)
class SystemScenario:
    """A named, reproducible sequence of topology what-if queries.

    ``paths`` optionally names end-to-end chains whose latencies are
    tracked per step (the run result carries one latency tuple per query).
    """

    name: str
    queries: tuple[SystemScenarioQuery, ...]
    description: str = ""
    paths: tuple[EndToEndPath, ...] = ()

    def run(self, session: SystemSession,
            cancel=None) -> SystemScenarioRunResult:
        """Execute every query against ``session`` in definition order.

        ``cancel`` (a :class:`repro.cancel.CancelToken`) bounds the whole
        run: it is threaded into every step's engine run.
        """
        outcomes: list[SystemQueryResult] = []
        latencies: list[tuple[PathLatency, ...]] = []
        for query in self.queries:
            outcome = session.query(query.deltas, label=query.label,
                                    cancel=cancel)
            outcomes.append(outcome)
            if self.paths:
                latencies.append(session.path_latency(
                    self.paths, query.deltas, label=query.label,
                    cancel=cancel))
        return SystemScenarioRunResult(
            scenario=self.name, session=session.name,
            queries=tuple(outcomes),
            path_latencies=tuple(latencies))

    def describe(self) -> str:
        return (f"{self.name}: {len(self.queries)} queries"
                + (f", {len(self.paths)} tracked paths" if self.paths else "")
                + (f" -- {self.description}" if self.description else ""))


class SystemScenarioCatalog:
    """Registry of named system-level what-if scenarios."""

    def __init__(self) -> None:
        self._scenarios: dict[str, SystemScenario] = {}

    def register(self, scenario: SystemScenario,
                 overwrite: bool = False) -> SystemScenario:
        """Register a scenario under its name; returns it for chaining."""
        if not overwrite and scenario.name in self._scenarios:
            raise ValueError(f"scenario {scenario.name!r} already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> SystemScenario:
        """Look up a scenario by name."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown system scenario {name!r}; registered: "
                f"{', '.join(sorted(self._scenarios)) or 'none'}") from None

    def names(self) -> list[str]:
        """All registered scenario names, sorted."""
        return sorted(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __iter__(self) -> Iterator[SystemScenario]:
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)

    def run(self, name: str, session: SystemSession,
            cancel=None) -> SystemScenarioRunResult:
        """Execute a registered scenario against a session."""
        return self.get(name).run(session, cancel=cancel)

    def describe(self) -> str:
        """Multi-line inventory of the catalog."""
        lines = [f"System scenario catalog ({len(self)} scenarios):"]
        lines.extend("  " + self._scenarios[name].describe()
                     for name in self.names())
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Scenario families
# --------------------------------------------------------------------------- #
def message_remap_sweep_scenario(
    system: SystemModel,
    message_name: str,
    target_buses: Sequence[str] | None = None,
    name: str | None = None,
    paths: Sequence[EndToEndPath] = (),
) -> SystemScenario:
    """Try one message on every (other) bus -- "where should this frame go".

    Each step is independent (applied to the base topology); the first step
    is the unchanged baseline.  Messages that are gateway route endpoints
    are legal targets: the routes follow the message.
    """
    home = system.bus_of_message(message_name).name
    message = system.buses[home].kmatrix.get(message_name)
    if target_buses is None:
        target_buses = [bus for bus in sorted(system.buses) if bus != home]
    queries = [SystemScenarioQuery(label=f"{message_name}@{home} (base)")]
    from repro.can.frame import CanFrameFormat
    max_id = 0x7FF if message.frame_format == CanFrameFormat.STANDARD \
        else 0x1FFFFFFF
    for bus in target_buses:
        if bus == home:
            continue
        # Segments may share identifier ranges; when the message's id is
        # taken on the target bus, assign the highest free one within the
        # frame format's range (lowest priority, so the sweep perturbs
        # the target bus as little as possible).  A bus with no free
        # identifier left is skipped rather than made invalid.
        used = {m.can_id for m in system.buses[bus].kmatrix}
        new_can_id = None
        if message.can_id in used:
            new_can_id = next(
                (can_id for can_id in range(max_id, -1, -1)
                 if can_id not in used), None)
            if new_can_id is None:
                continue
        queries.append(SystemScenarioQuery(
            label=f"{message_name}@{bus}",
            deltas=(MoveMessageDelta(message_name=message_name,
                                     to_bus=bus, new_can_id=new_can_id),)))
    return SystemScenario(
        name=name or f"remap-{message_name}",
        queries=tuple(queries),
        description=f"{message_name} re-mapped across bus segments",
        paths=tuple(paths))


def bus_speed_degradation_scenario(
    system: SystemModel,
    bus_name: str,
    bit_rates_bps: Sequence[float] | None = None,
    name: str | None = None,
    paths: Sequence[EndToEndPath] = (),
) -> SystemScenario:
    """Step one segment down the standard CAN bit-rate ladder."""
    if bus_name not in system.buses:
        raise KeyError(bus_name)
    base_rate = system.buses[bus_name].bus.bit_rate_bps
    if bit_rates_bps is None:
        bit_rates_bps = [rate for rate in STANDARD_BIT_RATES_BPS
                         if rate < base_rate]
    queries = [SystemScenarioQuery(
        label=f"{bus_name}@{base_rate / 1000:g}kbit/s (base)")]
    for rate in bit_rates_bps:
        queries.append(SystemScenarioQuery(
            label=f"{bus_name}@{rate / 1000:g}kbit/s",
            deltas=(BusSpeedDelta(bus_name=bus_name, bit_rate_bps=rate),)))
    return SystemScenario(
        name=name or f"degrade-{bus_name}",
        queries=tuple(queries),
        description=f"{bus_name} bit rate degraded step by step",
        paths=tuple(paths))


def gateway_failover_scenario(
    system: SystemModel,
    gateway_name: str,
    backup_name: str | None = None,
    backup_polling_period: float | None = None,
    name: str | None = None,
    paths: Sequence[EndToEndPath] = (),
) -> SystemScenario:
    """Migrate a gateway's routes onto a backup, one route at a time.

    Step 0 is the healthy baseline, step 1 degrades the primary (doubled
    polling period -- the overload precursor), and each following step
    cumulatively moves one more route to the backup gateway until the
    primary forwards nothing.  The backup defaults to ``<name>-backup``
    with twice the primary's polling period (a cold standby is slower).
    """
    gateway = system.gateways.get(gateway_name)
    if gateway is None:
        raise KeyError(gateway_name)
    if not gateway.routes:
        raise ValueError(f"gateway {gateway_name!r} has no routes to fail over")
    backup = backup_name or f"{gateway_name}-backup"
    backup_period = (backup_polling_period
                     if backup_polling_period is not None
                     else 2.0 * gateway.polling_period)
    queries = [
        SystemScenarioQuery(label=f"{gateway_name} healthy"),
        SystemScenarioQuery(
            label=f"{gateway_name} degraded",
            deltas=(GatewayConfigDelta(
                gateway_name=gateway_name,
                polling_period=2.0 * gateway.polling_period),)),
    ]
    moved: list[SystemDelta] = []
    for route in gateway.routes:
        moved.append(RemoveGatewayRouteDelta(
            gateway_name=gateway_name,
            destination_message=route.destination_message))
        moved.append(AddGatewayRouteDelta(
            gateway_name=backup, route=route,
            polling_period=backup_period))
        queries.append(SystemScenarioQuery(
            label=f"failover {route.destination_message} -> {backup}",
            deltas=tuple(moved)))
    return SystemScenario(
        name=name or f"failover-{gateway_name}",
        queries=tuple(queries),
        description=(f"routes of {gateway_name} migrated to {backup}"),
        paths=tuple(paths))


def builtin_system_catalog(system: SystemModel) -> SystemScenarioCatalog:
    """The standard topology families derived from one concrete system.

    Deterministic: the degraded bus is the busiest segment, the re-mapped
    message is the highest-priority message of that segment that is not a
    gateway route endpoint (falling back to the highest-priority one), and
    the failover scenario targets the first gateway in name order.
    Systems without gateways simply get fewer scenarios.
    """
    catalog = SystemScenarioCatalog()
    if not system.buses:
        return catalog
    busiest = max(sorted(system.buses),
                  key=lambda bus: len(system.buses[bus].kmatrix))
    catalog.register(bus_speed_degradation_scenario(
        system, busiest, name="bus-speed-degradation"))
    if len(system.buses) > 1:
        endpoints = {
            route.source_message
            for gateway in system.gateways.values()
            for route in gateway.routes}
        endpoints.update(
            route.destination_message
            for gateway in system.gateways.values()
            for route in gateway.routes)
        ordered = system.buses[busiest].kmatrix.sorted_by_priority()
        movable = [m for m in ordered if m.name not in endpoints] or ordered
        catalog.register(message_remap_sweep_scenario(
            system, movable[0].name, name="message-remap-sweep"))
    for gateway_name in sorted(system.gateways):
        if system.gateways[gateway_name].routes:
            catalog.register(gateway_failover_scenario(
                system, gateway_name, name="gateway-failover"))
            break
    return catalog

"""Typed system-level what-if deltas: topology edits as values.

Where :mod:`repro.service.deltas` describes hypothetical changes to *one
bus*, the deltas here describe changes to the *system*: a message moved to
another segment, a bus re-clocked, a gateway route added or removed, an ECU
task re-budgeted.  Like their per-bus counterparts they are frozen,
hashable, picklable dataclasses, they never mutate the
:class:`~repro.core.system.SystemModel` they are applied to (``apply``
returns a copy-on-write derivative sharing every untouched segment, gateway
and ECU with its parent), and a scenario built from them reproduces
exactly.

Each delta additionally knows which bus segments it edits *directly*
(:meth:`SystemDelta.touched_buses`); the
:class:`~repro.whatif.session.SystemSession` closes that set under gateway
reachability to report which shards a query invalidates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.can.kmatrix import KMatrix
from repro.core.system import BusSegment, SystemModel
from repro.ecu.task import EcuModel
from repro.events.model import EventModel
from repro.gateway.model import ForwardingPolicy, GatewayModel, GatewayRoute
from repro.service.deltas import (
    BusConfiguration,
    Delta,
    EventModelDelta,
    apply_deltas,
)


class SystemDelta:
    """Base class of all system-level what-if deltas."""

    def apply(self, system: SystemModel) -> SystemModel:
        """Return a new system with this delta applied (copy-on-write)."""
        raise NotImplementedError

    def touched_buses(self, system: SystemModel) -> frozenset[str]:
        """Buses whose local analysis inputs this delta edits directly.

        Downstream propagation through gateways is *not* included here;
        :meth:`SystemSession.invalidated_by` closes the set under the
        gateway influence graph.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner used in reports and query labels."""
        return type(self).__name__


def _require_bus(system: SystemModel, bus_name: str) -> BusSegment:
    segment = system.buses.get(bus_name)
    if segment is None:
        raise KeyError(
            f"unknown bus {bus_name!r}; system has: "
            f"{', '.join(sorted(system.buses))}")
    return segment


def _require_gateway(system: SystemModel, name: str) -> GatewayModel:
    gateway = system.gateways.get(name)
    if gateway is None:
        raise KeyError(
            f"unknown gateway {name!r}; system has: "
            f"{', '.join(sorted(system.gateways)) or 'none'}")
    return gateway


@dataclass(frozen=True)
class MoveMessageDelta(SystemDelta):
    """Re-map one message to another bus segment.

    The paper's architecture-exploration move: "what if this frame went
    over the body bus instead".  The message keeps its parameters (a new
    identifier may be assigned with ``new_can_id`` when the target bus
    already uses the old one), and gateway routes naming the message follow
    it -- their ``source_bus`` / ``destination_bus`` are rewritten so the
    edited system stays consistent under
    :meth:`~repro.core.system.SystemModel.validate`.
    """

    message_name: str
    to_bus: str
    new_can_id: Optional[int] = None

    def apply(self, system: SystemModel) -> SystemModel:
        source = system.bus_of_message(self.message_name)
        target = _require_bus(system, self.to_bus)
        message = source.kmatrix.get(self.message_name)
        if self.new_can_id is not None:
            message = message.with_can_id(self.new_can_id)
        edited = system.shallow_copy()
        if source.name == target.name:
            # Same bus: the move degenerates to an identifier re-assignment.
            edited.buses[source.name] = replace(source, kmatrix=KMatrix(
                messages=[message if m.name == self.message_name else m
                          for m in source.kmatrix.messages]))
        else:
            edited.buses[source.name] = replace(source, kmatrix=KMatrix(
                messages=[m for m in source.kmatrix.messages
                          if m.name != self.message_name]))
            edited.buses[target.name] = replace(target, kmatrix=KMatrix(
                messages=[*target.kmatrix.messages, message]))
        for name, gateway in system.gateways.items():
            routes = tuple(
                replace(
                    route,
                    source_bus=(target.name
                                if route.source_message == self.message_name
                                else route.source_bus),
                    destination_bus=(
                        target.name
                        if route.destination_message == self.message_name
                        else route.destination_bus))
                for route in gateway.routes)
            if routes != tuple(gateway.routes):
                edited.gateways[name] = replace(gateway, routes=list(routes))
        return edited

    def touched_buses(self, system: SystemModel) -> frozenset[str]:
        return frozenset(
            {system.bus_of_message(self.message_name).name, self.to_bus})

    def describe(self) -> str:
        suffix = (f" (id=0x{self.new_can_id:X})"
                  if self.new_can_id is not None else "")
        return f"move {self.message_name} -> {self.to_bus}{suffix}"


@dataclass(frozen=True)
class BusSpeedDelta(SystemDelta):
    """Re-clock one bus segment (e.g. "CAN-1 degrades to 250 kbit/s")."""

    bus_name: str
    bit_rate_bps: float

    def __post_init__(self) -> None:
        if self.bit_rate_bps <= 0:
            raise ValueError("bit_rate_bps must be positive")

    def apply(self, system: SystemModel) -> SystemModel:
        segment = _require_bus(system, self.bus_name)
        edited = system.shallow_copy()
        edited.buses[self.bus_name] = replace(
            segment, bus=segment.bus.with_bit_rate(self.bit_rate_bps))
        return edited

    def touched_buses(self, system: SystemModel) -> frozenset[str]:
        return frozenset({self.bus_name})

    def describe(self) -> str:
        return f"{self.bus_name} -> {self.bit_rate_bps / 1000:g} kbit/s"


@dataclass(frozen=True)
class AddGatewayRouteDelta(SystemDelta):
    """Add a forwarding relation (optionally creating the gateway).

    With ``polling_period`` set and the gateway absent, a fresh
    periodic-polling gateway is created -- the failover scenario's "bring
    up the backup gateway" step.  Both route endpoints must already exist
    in the named buses' K-Matrices.
    """

    gateway_name: str
    route: GatewayRoute = None  # type: ignore[assignment]
    polling_period: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.route, GatewayRoute):
            raise ValueError("AddGatewayRouteDelta needs a GatewayRoute")

    def apply(self, system: SystemModel) -> SystemModel:
        for message_name, bus_name in (
                (self.route.source_message, self.route.source_bus),
                (self.route.destination_message, self.route.destination_bus)):
            segment = _require_bus(system, bus_name)
            if message_name not in segment.kmatrix:
                raise KeyError(
                    f"route endpoint {message_name!r} is not on {bus_name!r}")
        edited = system.shallow_copy()
        gateway = system.gateways.get(self.gateway_name)
        if gateway is None:
            gateway = GatewayModel(
                name=self.gateway_name,
                routes=[self.route],
                policy=ForwardingPolicy.PERIODIC_POLLING,
                **({"polling_period": self.polling_period}
                   if self.polling_period is not None else {}))
        else:
            gateway = replace(gateway, routes=[*gateway.routes, self.route])
            if self.polling_period is not None:
                gateway = replace(gateway,
                                  polling_period=self.polling_period)
        edited.gateways[self.gateway_name] = gateway
        return edited

    def touched_buses(self, system: SystemModel) -> frozenset[str]:
        # The new route changes the destination's send model; routes already
        # sharing its queue see a longer forwarding interval, so their
        # destinations are touched too.
        touched = {self.route.destination_bus}
        gateway = system.gateways.get(self.gateway_name)
        if gateway is not None:
            touched.update(
                r.destination_bus
                for r in gateway.routes_through_queue(self.route.queue))
        return frozenset(touched)

    def describe(self) -> str:
        return f"{self.gateway_name} += {self.route.describe()}"


@dataclass(frozen=True)
class RemoveGatewayRouteDelta(SystemDelta):
    """Drop the route producing one destination message.

    The destination message stays in its K-Matrix (it falls back to its
    K-Matrix activation assumptions); only the forwarding relation -- and
    with it the propagated send model -- disappears.
    """

    gateway_name: str
    destination_message: str = ""

    def __post_init__(self) -> None:
        if not self.destination_message:
            raise ValueError(
                "RemoveGatewayRouteDelta needs a destination message")

    def apply(self, system: SystemModel) -> SystemModel:
        gateway = _require_gateway(system, self.gateway_name)
        route = gateway.route_for_destination(self.destination_message)
        edited = system.shallow_copy()
        edited.gateways[self.gateway_name] = replace(
            gateway,
            routes=[r for r in gateway.routes if r is not route])
        return edited

    def touched_buses(self, system: SystemModel) -> frozenset[str]:
        gateway = _require_gateway(system, self.gateway_name)
        route = gateway.route_for_destination(self.destination_message)
        touched = {
            r.destination_bus
            for r in gateway.routes_through_queue(route.queue)}
        touched.add(route.destination_bus)
        return frozenset(touched)

    def describe(self) -> str:
        return f"{self.gateway_name} -= route to {self.destination_message}"


@dataclass(frozen=True)
class GatewayConfigDelta(SystemDelta):
    """Change a gateway's forwarding configuration (degradation knob)."""

    gateway_name: str
    polling_period: Optional[float] = None
    copy_time: Optional[float] = None
    policy: Optional[ForwardingPolicy] = None

    def __post_init__(self) -> None:
        if (self.polling_period is None and self.copy_time is None
                and self.policy is None):
            raise ValueError("GatewayConfigDelta changes nothing")

    def apply(self, system: SystemModel) -> SystemModel:
        gateway = _require_gateway(system, self.gateway_name)
        changes: dict = {}
        if self.polling_period is not None:
            changes["polling_period"] = self.polling_period
        if self.copy_time is not None:
            changes["copy_time"] = self.copy_time
        if self.policy is not None:
            changes["policy"] = ForwardingPolicy(self.policy)
        edited = system.shallow_copy()
        edited.gateways[self.gateway_name] = replace(gateway, **changes)
        return edited

    def touched_buses(self, system: SystemModel) -> frozenset[str]:
        gateway = _require_gateway(system, self.gateway_name)
        return frozenset(r.destination_bus for r in gateway.routes)

    def describe(self) -> str:
        parts = []
        if self.polling_period is not None:
            parts.append(f"polling -> {self.polling_period:g} ms")
        if self.copy_time is not None:
            parts.append(f"copy -> {self.copy_time:g} ms")
        if self.policy is not None:
            parts.append(f"policy -> {ForwardingPolicy(self.policy).value}")
        return f"{self.gateway_name}: " + ", ".join(parts)


@dataclass(frozen=True)
class EcuTaskDelta(SystemDelta):
    """Re-budget one task of a detailed ECU model.

    Changing one task's execution budget changes the response intervals of
    every lower-priority task on that ECU, so *all* messages the ECU's
    tasks queue get new send models -- ``touched_buses`` reflects that.
    """

    ecu_name: str
    task_name: str = ""
    wcet: Optional[float] = None
    bcet: Optional[float] = None
    activation: Optional[EventModel] = None

    def __post_init__(self) -> None:
        if not self.task_name:
            raise ValueError("EcuTaskDelta needs a task name")
        if self.wcet is None and self.bcet is None \
                and self.activation is None:
            raise ValueError("EcuTaskDelta changes nothing")

    def _ecu(self, system: SystemModel) -> EcuModel:
        ecu = system.ecus.get(self.ecu_name)
        if ecu is None:
            raise KeyError(
                f"no detailed model for ECU {self.ecu_name!r}; available: "
                f"{', '.join(sorted(system.ecus)) or 'none'}")
        return ecu

    def apply(self, system: SystemModel) -> SystemModel:
        ecu = self._ecu(system)
        task = ecu.task(self.task_name)
        changes: dict = {}
        if self.wcet is not None:
            changes["wcet"] = self.wcet
        if self.bcet is not None:
            changes["bcet"] = self.bcet
        if self.activation is not None:
            changes["activation"] = self.activation
        edited_task = replace(task, **changes)
        edited = system.shallow_copy()
        edited.ecus[self.ecu_name] = EcuModel(
            name=ecu.name,
            tasks=[edited_task if t.name == self.task_name else t
                   for t in ecu.tasks],
            overheads=ecu.overheads,
            timetable=ecu.timetable,
        )
        return edited

    def touched_buses(self, system: SystemModel) -> frozenset[str]:
        ecu = self._ecu(system)
        touched: set[str] = set()
        for task in ecu.tasks:
            for message_name in task.sends_messages:
                try:
                    touched.add(system.bus_of_message(message_name).name)
                except KeyError:
                    continue
        return frozenset(touched)

    def describe(self) -> str:
        parts = []
        if self.wcet is not None:
            parts.append(f"wcet -> {self.wcet:g} ms")
        if self.bcet is not None:
            parts.append(f"bcet -> {self.bcet:g} ms")
        if self.activation is not None:
            parts.append("new activation model")
        return f"{self.ecu_name}.{self.task_name}: " + ", ".join(parts)


@dataclass(frozen=True)
class SegmentConfigDelta(SystemDelta):
    """Apply per-bus :class:`~repro.service.deltas.Delta` edits to one bus.

    This is the bridge to the PR 3 what-if vocabulary: any delta sequence a
    single-bus :class:`~repro.service.session.AnalysisSession` accepts
    (jitter, error model, priorities, add/remove message, bus physics,
    deadline policy) becomes a system-level edit of the named segment.
    :class:`~repro.service.deltas.EventModelDelta` is rejected -- activation
    overrides are owned by the compositional engine's propagation, and a
    topology query injecting them would fight the fixed point.
    """

    bus_name: str
    deltas: tuple[Delta, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "deltas", tuple(self.deltas))
        if not self.deltas:
            raise ValueError("SegmentConfigDelta needs at least one delta")
        for delta in self.deltas:
            if isinstance(delta, EventModelDelta):
                raise ValueError(
                    "EventModelDelta cannot be applied system-level: the "
                    "compositional engine owns activation overrides")
            if not isinstance(delta, Delta):
                raise ValueError(
                    f"SegmentConfigDelta needs service deltas, got {delta!r}")

    def apply(self, system: SystemModel) -> SystemModel:
        segment = _require_bus(system, self.bus_name)
        config = apply_deltas(
            BusConfiguration.from_segment(segment), self.deltas)
        edited = system.shallow_copy()
        edited.buses[self.bus_name] = BusSegment(
            bus=config.bus,
            kmatrix=config.kmatrix,
            error_model=config.error_model,
            deadline_policy=config.deadline_policy,
            assumed_jitter_fraction=config.assumed_jitter_fraction,
        )
        return edited

    def touched_buses(self, system: SystemModel) -> frozenset[str]:
        return frozenset({self.bus_name})

    def describe(self) -> str:
        inner = "; ".join(delta.describe() for delta in self.deltas)
        return f"{self.bus_name}: {inner}"


def apply_system_deltas(system: SystemModel,
                        deltas: Sequence[SystemDelta]) -> SystemModel:
    """Fold a system-delta sequence over a base system (left to right)."""
    for delta in deltas:
        system = delta.apply(system)
    return system


def influence_edges(system: SystemModel) -> frozenset[tuple[str, str]]:
    """Directed bus-influence edges the gateways induce.

    ``(A, B)`` means a change on bus ``A`` can change the analysis inputs
    of bus ``B`` within one propagation step: a gateway forwards a message
    from ``A`` to ``B``, or a route sourced on ``A`` shares an output queue
    with a route destined for ``B`` (queueing couples their forwarding
    latencies and the queue-length bound).
    """
    edges: set[tuple[str, str]] = set()
    for gateway in system.gateways.values():
        by_queue: dict[str, list[GatewayRoute]] = {}
        for route in gateway.routes:
            edges.add((route.source_bus, route.destination_bus))
            by_queue.setdefault(route.queue, []).append(route)
        for routes in by_queue.values():
            for first in routes:
                for second in routes:
                    edges.add((first.source_bus, second.destination_bus))
    return frozenset(edges)


def downstream_closure(seeds: frozenset[str],
                       edges: frozenset[tuple[str, str]]) -> frozenset[str]:
    """Buses reachable from ``seeds`` along the influence edges."""
    reached = set(seeds)
    frontier = list(seeds)
    while frontier:
        bus = frontier.pop()
        for source, destination in edges:
            if source == bus and destination not in reached:
                reached.add(destination)
                frontier.append(destination)
    return frozenset(reached)

"""System-level what-if sessions: incremental topology exploration.

A :class:`SystemSession` is to a :class:`~repro.core.system.SystemModel`
what an :class:`~repro.service.session.AnalysisSession` is to one bus: it
holds a base topology, answers typed
:class:`~repro.whatif.system_deltas.SystemDelta` queries, and makes
repeated exploration incremental -- while staying **bit-identical** to a
from-scratch :class:`~repro.core.engine.CompositionalAnalysis` run on the
equivalently edited system.  Three mechanisms provide the incrementality:

* **shared per-segment sessions** -- the session owns one
  :class:`AnalysisSession` per (bus, configuration fingerprint) and injects
  them into every engine run, so segments a delta does not touch answer
  their per-iteration queries from warm caches (the PR 4
  engine-on-sessions machinery); sessions for edited segment variants are
  LRU-cached too, so sweeps revisiting a configuration reuse its kernels;
* **a whole-result cache** keyed by the edited system's *fingerprint*
  (:meth:`~repro.core.system.SystemModel.fingerprint`): repeating a query
  -- or asking for path latencies after it -- costs a dictionary lookup.
  Gateway and ECU containers are mutable, so the fingerprint covers their
  values; an in-place edit of the base system (e.g.
  :meth:`GatewayModel.add_route`) is detected on the next query and
  invalidates every cached result rather than serving a stale fixed point;
* **gateway-aware invalidation accounting** -- each query reports which
  shards its deltas invalidate: the directly touched buses closed under
  the gateway influence graph (:func:`~repro.whatif.system_deltas.
  influence_edges`).  Segments outside that set are provably served from
  cache at every global iteration.

End-to-end path latency is a first-class query here:
:meth:`SystemSession.path_latency` evaluates
:class:`~repro.core.paths.EndToEndPath` portfolios against the (cached)
fixed point of any delta sequence, which is what turns the daemon into the
design-exploration server of the paper's system-level claim.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence

from repro.cancel import CancelToken
from repro.core.engine import CompositionalAnalysis
from repro.core.paths import EndToEndPath, PathLatency, path_latency_all
from repro.core.results import SystemAnalysisResult
from repro.core.system import SystemModel
from repro.service.deltas import BusConfiguration
from repro.service.session import AnalysisSession, SessionStats
from repro.store.codec import system_result_from_json, system_result_to_json
from repro.whatif.system_deltas import (
    SystemDelta, downstream_closure, influence_edges,
)


class SystemKey:
    """System-fingerprint wrapper caching its hash and display digest.

    Mirrors the per-bus session's key object: process hashes are
    ``PYTHONHASHSEED``-randomised, so the rendered ``digest`` is a
    deterministic sha1 over the fingerprint's repr, computed lazily.
    """

    __slots__ = ("value", "_hash", "_digest")

    def __init__(self, value: tuple) -> None:
        self.value = value
        self._hash = hash(value)
        self._digest: str | None = None

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, SystemKey):
            return NotImplemented
        return self._hash == other._hash and self.value == other.value

    def __repr__(self) -> str:
        return f"sys:{self.digest}"

    @property
    def digest(self) -> str:
        if self._digest is None:
            self._digest = hashlib.sha1(
                repr(self.value).encode()).hexdigest()[:12]
        return self._digest


@dataclass(frozen=True)
class SystemQueryStats:
    """How one system query was obtained."""

    invalidated: tuple[str, ...]
    segments: int
    cache_hit: bool = False

    def describe(self) -> str:
        if self.cache_hit:
            return f"cache hit ({self.segments} segments)"
        scope = ", ".join(self.invalidated) or "none"
        return (f"{len(self.invalidated)}/{self.segments} segments "
                f"invalidated ({scope})")


@dataclass(frozen=True)
class SystemQueryResult:
    """Outcome of one system-level what-if query."""

    label: Optional[str]
    deltas: tuple[SystemDelta, ...]
    result: SystemAnalysisResult
    stats: SystemQueryStats
    system: SystemModel = field(repr=False, compare=False, default=None)
    key: object = field(repr=False, compare=False, default=None)

    @property
    def fingerprint(self) -> str:
        """Deterministic digest of the analysed topology."""
        return self.key.digest if isinstance(self.key, SystemKey) else ""

    def worst_case(self, message_name: str) -> float:
        """Worst-case response time of one message (ms)."""
        return self.result.message_results[message_name].worst_case

    def path_latency(self, path: EndToEndPath) -> PathLatency:
        """End-to-end latency of one path over this query's fixed point."""
        return path_latency_all((path,), self.system, self.result)[0]

    def describe(self) -> str:
        label = self.label or ", ".join(
            d.describe() for d in self.deltas) or "base topology"
        verdict = ("converged" if self.result.converged
                   else "DID NOT CONVERGE")
        return f"{label}: {verdict}, {self.stats.describe()}"


@dataclass(frozen=True)
class SystemSessionStats:
    """Lifetime counters of one :class:`SystemSession`."""

    name: str
    queries: int
    cache_hits: int
    cached_results: int
    segment_sessions: int
    base_invalidations: int

    def describe(self) -> str:
        return (f"{self.name}: {self.queries} queries "
                f"({self.cache_hits} hits), {self.cached_results} cached "
                f"results, {self.segment_sessions} segment sessions, "
                f"{self.base_invalidations} base invalidations")


class SystemSession:
    """What-if query engine over one base :class:`SystemModel`.

    Parameters
    ----------
    system:
        The base topology; deltas apply on top of it.  The session detects
        in-place edits of this model between queries by re-fingerprinting
        it (the base is then treated as a new topology and every cached
        result is dropped).
    max_cached_results:
        LRU bound on cached whole-system fixed points (the base topology's
        result is never evicted).
    max_sessions:
        LRU bound on per-segment analysis sessions across all topology
        variants (the base topology's sessions are never evicted).
    max_iterations:
        Global iteration bound handed to every engine run.
    sessions:
        Optional pre-existing per-segment sessions of the *base* topology,
        keyed by bus name -- the daemon injects its pool shards here so
        system queries and per-shard what-if queries share one warm cache.
    """

    def __init__(
        self,
        system: SystemModel,
        max_cached_results: int = 128,
        max_sessions: int = 64,
        max_iterations: int = 50,
        name: str | None = None,
        sessions: Mapping[str, AnalysisSession] | None = None,
        metrics=None,
        store=None,
    ) -> None:
        problems = system.validate()
        if problems:
            raise ValueError(
                "inconsistent system model:\n  " + "\n  ".join(problems))
        if max_cached_results < 1:
            raise ValueError("max_cached_results must be at least 1")
        if max_sessions < len(system.buses):
            raise ValueError(
                "max_sessions must cover at least the base topology")
        self.name = name or f"system:{system.name}"
        self.max_iterations = max_iterations
        self._base = system
        self._max_cached_results = max_cached_results
        self._max_sessions = max_sessions
        self._lock = threading.RLock()
        self._base_key = SystemKey(system.fingerprint())
        self._results: OrderedDict[SystemKey, SystemQueryResult] = \
            OrderedDict()
        self._delta_memo: OrderedDict[
            tuple, tuple[SystemModel, SystemKey, frozenset[str]]] = \
            OrderedDict()
        self._sessions: OrderedDict[tuple, AnalysisSession] = OrderedDict()
        self._pinned: set[tuple] = set()
        self.queries = 0
        self.cache_hits = 0
        self.base_invalidations = 0
        # Optional repro.store.ResultStore: whole-system fixed points are
        # looked up by topology fingerprint on a miss and published after
        # every engine run, so a restarted daemon answers system queries
        # without re-running the engine.
        self.store = store
        self.store_hits = 0
        self._published: set[str] = set()
        # Optional repro.obs.MetricsRegistry, shared with every segment
        # session this system session creates (see _sessions_for_locked).
        self.metrics = metrics
        if metrics is not None:
            self._m_queries = metrics.counter("system_queries_total")
            self._m_hits = metrics.counter("system_cache_hits_total")
            self._m_misses = metrics.counter("system_cache_misses_total")
            self._m_invalidations = metrics.counter(
                "system_base_invalidations_total")
        unknown = set(sessions or {}) - set(system.buses)
        if unknown:
            raise ValueError(f"sessions for unknown buses: {sorted(unknown)}")
        for bus_name, session in (sessions or {}).items():
            key = self._segment_key(bus_name, session.base_config)
            self._sessions[key] = session
        self._pin_base_locked()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def base_system(self) -> SystemModel:
        """The session's base topology (deltas apply on top of it)."""
        return self._base

    @property
    def base_fingerprint(self) -> str:
        """Deterministic digest of the base topology."""
        return self._base_key.digest

    def analyze(self) -> SystemQueryResult:
        """Analyse (or fetch) the base topology."""
        return self.query(())

    def query(
        self,
        deltas: "SystemDelta | Sequence[SystemDelta]" = (),
        *,
        label: str | None = None,
        cancel: "CancelToken | None" = None,
        trace=None,
    ) -> SystemQueryResult:
        """Run one system-level what-if query.

        ``deltas`` (a single delta or a sequence, applied left to right)
        describe the hypothetical topology; the returned fixed point is
        bit-identical to ``CompositionalAnalysis(edited, incremental=False)
        .run()`` on the equivalently edited model.  ``cancel`` (see
        :mod:`repro.cancel`) bounds the engine run; a fired token raises
        before the result cache is touched, so cached answers keep being
        served after a cancelled query.  ``trace`` (a
        :class:`repro.obs.Trace`) records ``session_plan``/``solve``
        spans around resolution and the engine run.
        """
        deltas = self._normalize(deltas)
        plan_span = None if trace is None else trace.begin("session_plan")
        with self._lock:
            self._refresh_base_locked()
            system, key, invalidated = self._resolve_locked(deltas)
            self.queries += 1
            cached = self._results.get(key)
            if cached is not None:
                self._results.move_to_end(key)
                self.cache_hits += 1
                if trace is not None:
                    trace.end(plan_span)
                    trace.record("solve", 0.0)
                if self.metrics is not None:
                    self._m_queries.inc()
                    self._m_hits.inc()
                return replace(
                    cached, label=label, deltas=deltas,
                    stats=replace(cached.stats, cache_hit=True))
            sessions = self._sessions_for_locked(system)
        # Persistent-store lookup: a prior process may have published the
        # whole-system fixed point for exactly this topology fingerprint.
        stored = None
        if self.store is not None:
            stored = self._store_lookup(key, system, trace)
        if stored is not None:
            with self._lock:
                self.cache_hits += 1
                self.store_hits += 1
            if trace is not None:
                trace.end(plan_span)
                trace.record("solve", 0.0)
            if self.metrics is not None:
                self._m_queries.inc()
                self._m_hits.inc()
            stats = SystemQueryStats(
                invalidated=tuple(sorted(invalidated)),
                segments=len(system.buses), cache_hit=True)
            outcome = SystemQueryResult(
                label=label, deltas=deltas, result=stored, stats=stats,
                system=system, key=key)
        else:
            # The engine run is pure and deterministic; it happens outside
            # the lock so concurrent queries genuinely overlap (a
            # duplicated computation is harmless -- both produce the same
            # value).
            engine = CompositionalAnalysis(
                system, max_iterations=self.max_iterations, sessions=sessions)
            if trace is not None:
                trace.end(plan_span)
                solve_span = trace.begin("solve")
            result = engine.run(cancel=cancel)
            if trace is not None:
                trace.end(solve_span)
            if self.metrics is not None:
                self._m_queries.inc()
                self._m_misses.inc()
            if self.store is not None:
                self._store_publish(key, result)
            stats = SystemQueryStats(
                invalidated=tuple(sorted(invalidated)),
                segments=len(system.buses))
            outcome = SystemQueryResult(
                label=label, deltas=deltas, result=result, stats=stats,
                system=system, key=key)
        with self._lock:
            if key not in self._results:
                self._results[key] = outcome
            self._results.move_to_end(key)
            while len(self._results) > self._max_cached_results:
                for candidate in self._results:
                    if candidate != self._base_key and candidate != key:
                        del self._results[candidate]
                        break
                else:
                    break
        return outcome

    def path_latency(
        self,
        paths: "EndToEndPath | Sequence[EndToEndPath]",
        deltas: "SystemDelta | Sequence[SystemDelta]" = (),
        *,
        label: str | None = None,
        cancel: "CancelToken | None" = None,
    ) -> tuple[PathLatency, ...]:
        """End-to-end latencies of the given paths under a delta sequence.

        Served from the cached fixed point whenever the topology was
        already analysed, so per-delta path tracking costs one engine run
        per *distinct* topology, not per path.
        """
        if isinstance(paths, EndToEndPath):
            paths = (paths,)
        outcome = self.query(deltas, label=label, cancel=cancel)
        return path_latency_all(tuple(paths), outcome.system, outcome.result)

    def invalidated_by(
        self,
        deltas: "SystemDelta | Sequence[SystemDelta]",
    ) -> frozenset[str]:
        """Buses a delta sequence invalidates, gateway-reachability aware.

        The directly edited buses plus every bus reachable from them along
        the gateway influence graph of the base *and* the edited topology
        (a removed route's former influence still invalidates its old
        downstream segments).
        """
        deltas = self._normalize(deltas)
        with self._lock:
            self._refresh_base_locked()
            return self._resolve_locked(deltas)[2]

    def stats(self) -> SystemSessionStats:
        """Snapshot of the session's lifetime counters (thread-safe)."""
        with self._lock:
            return SystemSessionStats(
                name=self.name,
                queries=self.queries,
                cache_hits=self.cache_hits,
                cached_results=len(self._results),
                segment_sessions=len(self._sessions),
                base_invalidations=self.base_invalidations,
            )

    def session_stats(self) -> list[SessionStats]:
        """Statistics of every per-segment session, in stable name order."""
        with self._lock:
            sessions = sorted(self._sessions.values(),
                              key=lambda session: session.name)
        return [session.stats() for session in sessions]

    def describe(self) -> str:
        """One-line session summary."""
        return self.stats().describe()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _store_lookup(self, key: SystemKey, system: SystemModel,
                      trace=None) -> "SystemAnalysisResult | None":
        """Fetch this topology's persisted fixed point, or ``None``.

        The payload only counts when it decodes cleanly and covers exactly
        the topology's message set; anything else is a miss (the store
        already counted the corruption) and the engine runs cold.
        """
        started = time.perf_counter()
        try:
            payload = self.store.get("system", key.digest)
            if payload is None:
                return None
            try:
                result = system_result_from_json(payload)
            except Exception:
                return None
            expected = {m.name for segment in system.buses.values()
                        for m in segment.kmatrix}
            if set(result.message_results) != expected:
                return None
            return result
        finally:
            if trace is not None:
                trace.record(
                    "store_lookup", (time.perf_counter() - started) * 1000.0)

    def _store_publish(self, key: SystemKey,
                       result: SystemAnalysisResult) -> None:
        """Persist a whole-system fixed point (best-effort)."""
        digest = key.digest
        if digest in self._published:
            return
        if self.store.contains("system", digest):
            self._published.add(digest)
            return
        try:
            payload = system_result_to_json(result)
        except Exception:
            # An event model the wire codec cannot express, or similar:
            # the store is a cache, so just skip persisting this result.
            return
        if self.store.put("system", digest, payload):
            self._published.add(digest)

    @staticmethod
    def _normalize(deltas) -> tuple[SystemDelta, ...]:
        if isinstance(deltas, SystemDelta):
            return (deltas,)
        deltas = tuple(deltas)
        for delta in deltas:
            if not isinstance(delta, SystemDelta):
                raise ValueError(
                    f"expected SystemDelta instances, got {delta!r} -- "
                    "wrap per-bus deltas in SegmentConfigDelta")
        return deltas

    @staticmethod
    def _segment_key(bus_name: str, config: BusConfiguration) -> tuple:
        return (bus_name, config.analysis_key(), config.deadline_policy)

    def _pin_base_locked(self) -> None:
        """(Re)compute the always-resident base segment-session keys."""
        self._pinned = set()
        for segment in self._base.buses.values():
            config = BusConfiguration.from_segment(
                segment, controllers=self._base.controllers or None)
            self._pinned.add(self._segment_key(segment.name, config))

    def _refresh_base_locked(self) -> None:
        """Detect in-place edits of the base system between queries.

        Gateway and ECU models are mutable; if the base topology's
        fingerprint changed since the last query, every cached result and
        resolved delta is potentially stale and is dropped.  Per-segment
        sessions are keyed by configuration value, so the surviving ones
        stay exact and keep their warm caches.
        """
        key = SystemKey(self._base.fingerprint())
        if key == self._base_key:
            return
        self._base_key = key
        self._results.clear()
        self._delta_memo.clear()
        self._pin_base_locked()
        self.base_invalidations += 1
        if self.metrics is not None:
            self._m_invalidations.inc()

    def _resolve_locked(self, deltas: tuple[SystemDelta, ...],
                        ) -> tuple[SystemModel, SystemKey, frozenset[str]]:
        """Delta sequence -> (edited system, key, invalidated buses)."""
        if not deltas:
            return self._base, self._base_key, frozenset()
        memo = self._delta_memo.get(deltas)
        if memo is None:
            touched: set[str] = set()
            edges = set(influence_edges(self._base))
            system = self._base
            for delta in deltas:
                touched |= delta.touched_buses(system)
                system = delta.apply(system)
            edges |= influence_edges(system)
            invalidated = downstream_closure(
                frozenset(touched), frozenset(edges))
            memo = (system, SystemKey(system.fingerprint()), invalidated)
            self._delta_memo[deltas] = memo
            while len(self._delta_memo) > 4 * self._max_cached_results:
                self._delta_memo.popitem(last=False)
        return memo

    def _sessions_for_locked(self, system: SystemModel,
                             ) -> dict[str, AnalysisSession]:
        """Per-segment sessions of one topology, shared across queries.

        Unchanged segments resolve to the *same* session objects every
        query (that is where the incrementality lives); edited variants
        get their own LRU-cached sessions so a sweep revisiting a
        configuration finds its kernels warm.
        """
        controllers = dict(system.controllers) or None
        sessions: dict[str, AnalysisSession] = {}
        for segment in system.buses.values():
            config = BusConfiguration.from_segment(
                segment, controllers=controllers)
            key = self._segment_key(segment.name, config)
            session = self._sessions.get(key)
            if session is None:
                session = AnalysisSession.from_config(
                    config, name=f"{self.name}:{segment.name}",
                    metrics=self.metrics)
                self._sessions[key] = session
            self._sessions.move_to_end(key)
            sessions[segment.name] = session
        while len(self._sessions) > self._max_sessions:
            for candidate in self._sessions:
                if candidate not in self._pinned and \
                        self._sessions[candidate] not in sessions.values():
                    del self._sessions[candidate]
                    break
            else:
                break
        return sessions

"""System-level what-if analysis: typed topology deltas over one session.

The paper's headline claim is *system-level* compositional analysis --
verifying end-to-end latencies across ECUs, buses and gateways as the
architecture changes.  This package is that layer:

* :mod:`repro.whatif.system_deltas` -- frozen, hashable topology edits
  (:class:`MoveMessageDelta`, :class:`BusSpeedDelta`,
  :class:`AddGatewayRouteDelta` / :class:`RemoveGatewayRouteDelta`,
  :class:`GatewayConfigDelta`, :class:`EcuTaskDelta`, and
  :class:`SegmentConfigDelta` wrapping any per-bus service delta) applied
  copy-on-write to a :class:`~repro.core.system.SystemModel`;
* :mod:`repro.whatif.session` -- :class:`SystemSession`, the incremental
  query engine: shared per-segment analysis sessions, a fingerprint-keyed
  whole-result cache, gateway-reachability-aware invalidation, and
  first-class end-to-end :meth:`~SystemSession.path_latency` queries, all
  bit-identical to a from-scratch engine run;
* :mod:`repro.whatif.catalog` -- named topology scenario families
  (message re-mapping sweeps, bus-speed degradation, gateway failover)
  and :class:`SystemScenarioCatalog`.

The analysis daemon serves this layer through the ``system_query``,
``system_scenario`` and ``path_latency`` endpoints (see
:mod:`repro.server.daemon`).
"""

from repro.whatif.catalog import (
    STANDARD_BIT_RATES_BPS,
    SystemScenario,
    SystemScenarioCatalog,
    SystemScenarioQuery,
    SystemScenarioRunResult,
    builtin_system_catalog,
    bus_speed_degradation_scenario,
    gateway_failover_scenario,
    message_remap_sweep_scenario,
)
from repro.whatif.session import (
    SystemQueryResult,
    SystemQueryStats,
    SystemSession,
    SystemSessionStats,
)
from repro.whatif.system_deltas import (
    AddGatewayRouteDelta,
    BusSpeedDelta,
    EcuTaskDelta,
    GatewayConfigDelta,
    MoveMessageDelta,
    RemoveGatewayRouteDelta,
    SegmentConfigDelta,
    SystemDelta,
    apply_system_deltas,
    downstream_closure,
    influence_edges,
)

__all__ = [
    "STANDARD_BIT_RATES_BPS",
    "AddGatewayRouteDelta",
    "BusSpeedDelta",
    "EcuTaskDelta",
    "GatewayConfigDelta",
    "MoveMessageDelta",
    "RemoveGatewayRouteDelta",
    "SegmentConfigDelta",
    "SystemDelta",
    "SystemQueryResult",
    "SystemQueryStats",
    "SystemScenario",
    "SystemScenarioCatalog",
    "SystemScenarioQuery",
    "SystemScenarioRunResult",
    "SystemSession",
    "SystemSessionStats",
    "apply_system_deltas",
    "builtin_system_catalog",
    "bus_speed_degradation_scenario",
    "downstream_closure",
    "gateway_failover_scenario",
    "influence_edges",
    "message_remap_sweep_scenario",
]

"""Worst-case timing of messages in the FlexRay static segment.

In a time-triggered schedule the worst-case latency of a message is not
caused by interference (its slot is exclusively owned) but by *sampling*:
a message queued just after its slot has passed waits almost a full slot
distance before it is transmitted.  The analysis therefore is closed form:

``worst_case = slot_distance + queuing_jitter + slot_length``
``best_case  = slot_length``

which also yields the arrival jitter at the receivers.  A comparison helper
contrasts these numbers with the CAN response times of the same message set,
reproducing the classic event-triggered vs. time-triggered trade-off the
TimeTable discussion of the paper alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.response_time import CanBusAnalysis
from repro.can.bus import CanBus
from repro.can.kmatrix import KMatrix
from repro.flexray.schedule import FlexRayConfig, StaticSchedule, assign_slots


@dataclass(frozen=True)
class FlexRayMessageTiming:
    """Static-segment timing of one message."""

    message: str
    slot: int
    effective_period: float
    worst_case: float
    best_case: float

    @property
    def jitter(self) -> float:
        """Arrival jitter at the receivers (worst minus best case)."""
        return self.worst_case - self.best_case


def analyze_static_segment(
    kmatrix: KMatrix,
    schedule: StaticSchedule | None = None,
    config: FlexRayConfig | None = None,
    assumed_jitter_fraction: float = 0.0,
) -> dict[str, FlexRayMessageTiming]:
    """Worst-case latency of every message in the static segment.

    Parameters
    ----------
    kmatrix:
        The message set (periods and jitters are reused from the K-Matrix).
    schedule:
        An existing slot assignment; built greedily when omitted.
    config:
        Static-segment configuration used when building the schedule.
    assumed_jitter_fraction:
        Queuing jitter assumed for messages without a known jitter, as a
        fraction of their period (same knob as the CAN analysis).
    """
    if schedule is None:
        schedule = assign_slots(kmatrix, config)
    results: dict[str, FlexRayMessageTiming] = {}
    slot_length = schedule.config.slot_length
    for message in kmatrix:
        assignment = schedule.assignments[message.name]
        distance = schedule.effective_period(message.name)
        jitter = message.effective_jitter(assumed_jitter_fraction)
        worst = distance + jitter + slot_length
        results[message.name] = FlexRayMessageTiming(
            message=message.name,
            slot=assignment.slot,
            effective_period=distance,
            worst_case=worst,
            best_case=slot_length,
        )
    return results


def compare_with_can(
    kmatrix: KMatrix,
    can_bus: CanBus,
    schedule: StaticSchedule | None = None,
    config: FlexRayConfig | None = None,
    assumed_jitter_fraction: float = 0.0,
) -> list[tuple[str, float, float]]:
    """(message, CAN worst case, FlexRay worst case) comparison rows.

    High-priority messages tend to win on CAN (they preempt everything),
    low-priority messages tend to win on FlexRay (guaranteed slot); the rows
    make that crossover visible for the analysed message set.
    """
    can_analysis = CanBusAnalysis(
        kmatrix=kmatrix, bus=can_bus,
        assumed_jitter_fraction=assumed_jitter_fraction)
    can_results = can_analysis.analyze_all()
    flexray_results = analyze_static_segment(
        kmatrix, schedule=schedule, config=config,
        assumed_jitter_fraction=assumed_jitter_fraction)
    rows = []
    for message in kmatrix.sorted_by_priority():
        rows.append((
            message.name,
            can_results[message.name].worst_case,
            flexray_results[message.name].worst_case,
        ))
    return rows

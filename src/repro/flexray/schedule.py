"""FlexRay static-segment schedule construction.

The model is deliberately reduced to what the timing analysis needs: a
communication cycle of fixed length, divided into equally sized static slots;
each message owns one slot in some subset of the 64 cycles (its *cycle
repetition*), which determines its effective period on the bus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage


@dataclass(frozen=True)
class FlexRayConfig:
    """Physical configuration of the static segment.

    Attributes
    ----------
    cycle_length:
        Communication-cycle length in milliseconds (typically 5 ms).
    static_slots:
        Number of static slots per cycle.
    slot_length:
        Length of one static slot in milliseconds.
    max_cycle_repetition:
        Largest allowed cycle repetition (power of two up to 64).
    """

    cycle_length: float = 5.0
    static_slots: int = 60
    slot_length: float = 0.05
    max_cycle_repetition: int = 64

    def __post_init__(self) -> None:
        if self.cycle_length <= 0 or self.slot_length <= 0:
            raise ValueError("cycle_length and slot_length must be positive")
        if self.static_slots < 1:
            raise ValueError("static_slots must be at least 1")
        if self.static_slots * self.slot_length > self.cycle_length + 1e-9:
            raise ValueError("static slots do not fit into the cycle")
        if self.max_cycle_repetition < 1 or (
                self.max_cycle_repetition & (self.max_cycle_repetition - 1)):
            raise ValueError("max_cycle_repetition must be a power of two")


@dataclass(frozen=True)
class SlotAssignment:
    """One message's place in the static schedule."""

    message: str
    slot: int
    base_cycle: int
    cycle_repetition: int

    @property
    def effective_period(self) -> float:
        """Placeholder -- filled in by :class:`StaticSchedule.effective_period`."""
        return float(self.cycle_repetition)


@dataclass
class StaticSchedule:
    """A complete static-segment schedule."""

    config: FlexRayConfig
    assignments: dict[str, SlotAssignment] = field(default_factory=dict)

    def add(self, assignment: SlotAssignment) -> None:
        """Add an assignment, checking slot/cycle collisions."""
        if assignment.slot < 1 or assignment.slot > self.config.static_slots:
            raise ValueError(
                f"slot {assignment.slot} outside 1..{self.config.static_slots}")
        if assignment.cycle_repetition < 1 or (
                assignment.cycle_repetition & (assignment.cycle_repetition - 1)):
            raise ValueError("cycle_repetition must be a power of two")
        if assignment.cycle_repetition > self.config.max_cycle_repetition:
            raise ValueError("cycle_repetition exceeds the configured maximum")
        if not 0 <= assignment.base_cycle < assignment.cycle_repetition:
            raise ValueError("base_cycle must be within 0..cycle_repetition-1")
        for existing in self.assignments.values():
            if existing.slot != assignment.slot:
                continue
            if self._cycles_collide(existing, assignment):
                raise ValueError(
                    f"slot {assignment.slot} already used by "
                    f"{existing.message!r} in overlapping cycles")
        self.assignments[assignment.message] = assignment

    @staticmethod
    def _cycles_collide(first: SlotAssignment, second: SlotAssignment) -> bool:
        """Whether two assignments of the same slot share a cycle."""
        repetition = math.gcd(first.cycle_repetition, second.cycle_repetition)
        return first.base_cycle % repetition == second.base_cycle % repetition

    def effective_period(self, message: str) -> float:
        """Distance between two slots owned by the message (ms)."""
        assignment = self.assignments[message]
        return assignment.cycle_repetition * self.config.cycle_length

    def slot_start_offset(self, message: str) -> float:
        """Offset of the owned slot inside its cycle (ms)."""
        assignment = self.assignments[message]
        return (assignment.slot - 1) * self.config.slot_length

    def utilization(self) -> float:
        """Fraction of static slots actually owned per schedule round."""
        if not self.assignments:
            return 0.0
        total_cycles = max(a.cycle_repetition for a in self.assignments.values())
        owned = sum(total_cycles // a.cycle_repetition
                    for a in self.assignments.values())
        return owned / (self.config.static_slots * total_cycles)


def _repetition_for_period(period: float, config: FlexRayConfig) -> int:
    """Largest power-of-two repetition whose slot distance still meets the period."""
    repetition = 1
    while (repetition * 2 * config.cycle_length <= period
           and repetition * 2 <= config.max_cycle_repetition):
        repetition *= 2
    return repetition


def assign_slots(kmatrix: KMatrix | Sequence[CanMessage],
                 config: FlexRayConfig | None = None) -> StaticSchedule:
    """Greedy slot assignment for a message set migrated from CAN.

    Messages are sorted by period (fastest first, mirroring their importance)
    and placed into the first slot/base-cycle combination that is still free
    and whose slot distance does not exceed the message period.  Raises
    ``ValueError`` when the static segment is too small for the message set.
    """
    config = config or FlexRayConfig()
    schedule = StaticSchedule(config=config)
    messages = sorted(kmatrix, key=lambda m: (m.period, m.name))
    for message in messages:
        repetition = _repetition_for_period(message.period, config)
        placed = False
        while not placed:
            for slot in range(1, config.static_slots + 1):
                for base_cycle in range(repetition):
                    candidate = SlotAssignment(
                        message=message.name, slot=slot,
                        base_cycle=base_cycle, cycle_repetition=repetition)
                    try:
                        schedule.add(candidate)
                    except ValueError:
                        continue
                    placed = True
                    break
                if placed:
                    break
            if placed:
                break
            if repetition == 1:
                raise ValueError(
                    f"static segment exhausted: cannot place {message.name!r}")
            # Fall back to sending more often (smaller repetition) only if
            # that helps finding a free cycle; otherwise give up.
            repetition //= 2
    return schedule

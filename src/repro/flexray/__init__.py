"""FlexRay / time-triggered (TimeTable) bus analysis.

Section 5.2 mentions that the technology "is able to consider TimeTable
activation of messages and tasks, typically found in the automotive
industry".  The time-triggered counterpart of the CAN analysis is the static
segment of FlexRay (or a TTCAN-style schedule): messages are assigned slots
in a fixed communication cycle, and the timing question becomes slot-fitting
plus the sampling delay between queuing and the next owned slot.

* :mod:`repro.flexray.schedule` -- cycle/slot configuration, slot assignment
  heuristics and schedule validation;
* :mod:`repro.flexray.analysis` -- worst-case latency and jitter of messages
  in the static segment, plus a comparison helper against CAN.
"""

from repro.flexray.schedule import FlexRayConfig, SlotAssignment, StaticSchedule, assign_slots
from repro.flexray.analysis import FlexRayMessageTiming, analyze_static_segment

__all__ = [
    "FlexRayConfig",
    "SlotAssignment",
    "StaticSchedule",
    "assign_slots",
    "FlexRayMessageTiming",
    "analyze_static_segment",
]

"""repro: SymTA/S-style automotive network timing analysis.

A from-scratch reproduction of the analysis technology described in
Richter, Jersak, Ernst, "How OEMs and Suppliers can face the Network
Integration Challenges" (ERTS 2006): CAN schedulability analysis with jitter
and bus-error models, sensitivity/robustness analysis, genetic priority
optimization, compositional system-level analysis over ECUs and gateways, and
the OEM/supplier requirement-vs-guarantee methodology.

Quickstart
----------
>>> from repro import powertrain_system, analyze_schedulability
>>> kmatrix, bus, controllers = powertrain_system()
>>> report = analyze_schedulability(kmatrix, bus, controllers=controllers)
>>> report.all_deadlines_met
True

The subpackages group the functionality:

* :mod:`repro.events` -- standard event models (periodic, jitter, burst);
* :mod:`repro.can` -- CAN frames, K-Matrix, buses, controllers;
* :mod:`repro.errors` -- sporadic and burst bus-error models;
* :mod:`repro.analysis` -- load analysis and response-time analysis;
* :mod:`repro.sensitivity` -- jitter/error sensitivity and robustness;
* :mod:`repro.optimize` -- priority assignment baselines and the GA;
* :mod:`repro.ecu` -- OSEK-style task scheduling inside ECUs;
* :mod:`repro.gateway` -- store-and-forward gateways between buses;
* :mod:`repro.core` -- the compositional system-level analysis engine;
* :mod:`repro.service` -- the what-if analysis service: cached-kernel
  sessions, typed deltas with incremental re-analysis, scenario catalog and
  batch runner;
* :mod:`repro.server` -- the long-running analysis daemon: sharded session
  pool, job queue and worker pool, line-delimited JSON protocol over TCP or
  in-process, ``python -m repro.server`` CLI;
* :mod:`repro.whatif` -- system-level what-if analysis: typed topology
  deltas (move message, bus speed, gateway routes, ECU budgets),
  :class:`SystemSession` with incremental end-to-end path latency, and the
  topology scenario catalog;
* :mod:`repro.parallel` -- deterministic parallel evaluation of independent
  analysis units (bus segments, GA candidates, sweep points);
* :mod:`repro.sim` -- a discrete-event CAN simulator for cross-validation;
* :mod:`repro.monitor` -- the live conformance monitor: observed frame
  streams checked online against the analytic bounds (violation flagging,
  event-model refitting, declarative alert rules, windowed metrics
  history), served through the daemon's ``monitor_*`` ops;
* :mod:`repro.supplychain` -- data sheets, requirements and contracts;
* :mod:`repro.diagnostics` -- flashing and diagnostics traffic models;
* :mod:`repro.flexray` -- static-segment FlexRay/TimeTable analysis;
* :mod:`repro.workloads` -- the case-study network and synthetic workloads;
* :mod:`repro.reporting` -- helpers that print paper-shaped tables;
* :mod:`repro.obs` -- observability: the dependency-free metrics registry
  (counters, gauges, histograms) and request tracing (span trees,
  slowest-trace retention, slow-query log) wired through the serving tier.
"""

from repro.analysis import (
    CanBusAnalysis,
    SchedulabilityReport,
    analyze_schedulability,
    bus_load,
    message_loss_fraction,
    worst_case_response_time,
)
from repro.can import CanBus, CanMessage, KMatrix
from repro.cancel import Cancelled, CancelToken, DeadlineExceeded
from repro.errors import BurstErrorModel, NoErrors, SporadicErrorModel
from repro.events import (
    EmpiricalEventTrace,
    EventModel,
    PeriodicEventModel,
    PeriodicWithBurst,
    PeriodicWithJitter,
    fit_periodic_jitter,
)
from repro.obs import MetricsHistory, MetricsRegistry, Trace, TraceRing
from repro.optimize import optimize_priorities, paper_scenarios
from repro.parallel import parallel_map
from repro.sensitivity import jitter_sensitivity_all, max_tolerable_jitter_fraction
from repro.server import (
    AnalysisDaemon,
    ConnectionLost,
    DaemonError,
    DaemonServer,
    FaultInjector,
    InProcessClient,
    RetryPolicy,
    SessionPool,
    TcpClient,
    start_server,
)
from repro.service import (
    AddMessageDelta,
    AnalysisSession,
    BatchRunner,
    BusConfiguration,
    ErrorModelDelta,
    EventModelDelta,
    JitterDelta,
    PriorityDelta,
    QueryResult,
    RemoveMessageDelta,
    ScenarioCatalog,
    SessionStats,
    WhatIfScenario,
    builtin_catalog,
)
from repro.whatif import (
    AddGatewayRouteDelta,
    BusSpeedDelta,
    EcuTaskDelta,
    GatewayConfigDelta,
    MoveMessageDelta,
    RemoveGatewayRouteDelta,
    SegmentConfigDelta,
    SystemQueryResult,
    SystemScenario,
    SystemScenarioCatalog,
    SystemSession,
    apply_system_deltas,
    builtin_system_catalog,
)
from repro.core import EndToEndPath, PathLatency, path_latency
# After repro.core: the monitor pulls in the service layer, whose session
# module and the compositional engine import each other -- the engine side
# must initialize first (same reason repro.server precedes repro.service
# above).
from repro.monitor import (
    Alert,
    AlertEngine,
    AlertRule,
    ConformanceMonitor,
    IngestReport,
    MonitorConfig,
    ObservedFrame,
    ViolationRecord,
    frames_from_trace,
    inject_jitter_burst,
)
from repro.sim import (
    CanBusSimulator,
    NeverSentError,
    SimulationConfig,
    SimulationTrace,
    Simulator,
    TransmissionRecord,
    UnknownMessageError,
)
from repro.store import ResultStore
from repro.workloads import (
    WorkloadRegistry,
    builtin_registry,
    powertrain_kmatrix,
    powertrain_system,
)

__version__ = "1.4.0"

__all__ = [
    "__version__",
    "CanBus",
    "CanMessage",
    "KMatrix",
    "EventModel",
    "EmpiricalEventTrace",
    "PeriodicEventModel",
    "PeriodicWithJitter",
    "PeriodicWithBurst",
    "fit_periodic_jitter",
    "NoErrors",
    "SporadicErrorModel",
    "BurstErrorModel",
    "CanBusAnalysis",
    "SchedulabilityReport",
    "analyze_schedulability",
    "bus_load",
    "message_loss_fraction",
    "worst_case_response_time",
    "jitter_sensitivity_all",
    "max_tolerable_jitter_fraction",
    "optimize_priorities",
    "paper_scenarios",
    "parallel_map",
    "powertrain_kmatrix",
    "powertrain_system",
    "AnalysisSession",
    "QueryResult",
    "SessionStats",
    "BusConfiguration",
    "JitterDelta",
    "ErrorModelDelta",
    "EventModelDelta",
    "PriorityDelta",
    "AddMessageDelta",
    "RemoveMessageDelta",
    "WhatIfScenario",
    "ScenarioCatalog",
    "BatchRunner",
    "builtin_catalog",
    "AnalysisDaemon",
    "SessionPool",
    "InProcessClient",
    "TcpClient",
    "DaemonServer",
    "DaemonError",
    "ConnectionLost",
    "RetryPolicy",
    "FaultInjector",
    "CancelToken",
    "Cancelled",
    "DeadlineExceeded",
    "MetricsHistory",
    "MetricsRegistry",
    "Trace",
    "TraceRing",
    "start_server",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "ConformanceMonitor",
    "IngestReport",
    "MonitorConfig",
    "ObservedFrame",
    "ViolationRecord",
    "frames_from_trace",
    "inject_jitter_burst",
    "CanBusSimulator",
    "Simulator",
    "SimulationConfig",
    "SimulationTrace",
    "TransmissionRecord",
    "NeverSentError",
    "UnknownMessageError",
    "AddGatewayRouteDelta",
    "BusSpeedDelta",
    "EcuTaskDelta",
    "EndToEndPath",
    "GatewayConfigDelta",
    "MoveMessageDelta",
    "PathLatency",
    "RemoveGatewayRouteDelta",
    "SegmentConfigDelta",
    "SystemQueryResult",
    "SystemScenario",
    "SystemScenarioCatalog",
    "SystemSession",
    "apply_system_deltas",
    "builtin_system_catalog",
    "path_latency",
    "ResultStore",
    "WorkloadRegistry",
    "builtin_registry",
]

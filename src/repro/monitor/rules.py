"""Declarative alert rules over monitor and registry metrics.

A rule is a threshold predicate in a one-line syntax::

    observed_slack_ms < 0.1*deadline for 3 windows
    observed_max_ms >= 0.9*bound
    violations > 0

``metric`` names a windowed monitor series (per message) or a registry
metric (global); the optional ``*deadline`` / ``*bound`` factor scales the
threshold by the subject message's current analytic deadline or bound, so a
rule stays meaningful across messages with wildly different periods; the
optional ``for N windows`` clause demands the predicate hold in N
consecutive windows before the alert fires (edge-triggered: one alert per
excursion, re-armed when the predicate clears).

The engine is deliberately pure: the monitor hands it one sample per closed
window (``{subject: {metric: value}}``) plus the per-message scale
quantities, and gets back the alerts that fired.  That keeps rule semantics
unit-testable without a daemon, a session, or a clock.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Sequence

_OPS = {
    "<": lambda value, limit: value < limit,
    "<=": lambda value, limit: value <= limit,
    ">": lambda value, limit: value > limit,
    ">=": lambda value, limit: value >= limit,
}

_SCALES = ("deadline", "bound")

_EXPR = re.compile(
    r"^\s*(?P<metric>[A-Za-z_][\w.]*)\s*"
    r"(?P<op><=|>=|<|>)\s*"
    r"(?P<number>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)\s*"
    r"(?:\*\s*(?P<scale>[A-Za-z_]\w*))?\s*"
    r"(?:for\s+(?P<windows>\d+)\s+windows?)?\s*$"
)


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold predicate (see the module docstring)."""

    name: str
    metric: str
    op: str
    threshold: float
    scale: str | None = None
    for_windows: int = 1
    message: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alert rules need a name")
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r}; use one of {sorted(_OPS)}")
        if self.scale is not None and self.scale not in _SCALES:
            raise ValueError(f"unknown scale {self.scale!r}; use one of {_SCALES}")
        if self.for_windows < 1:
            raise ValueError("for_windows must be >= 1")

    @classmethod
    def parse(cls, name: str, expr: str, message: str | None = None) -> "AlertRule":
        """Parse the one-line rule syntax into a rule."""
        match = _EXPR.match(expr)
        if match is None:
            raise ValueError(
                f"cannot parse alert expression {expr!r}; expected "
                f"'<metric> <op> <number>[*deadline|*bound] "
                f"[for <N> windows]'"
            )
        scale = match.group("scale")
        if scale is not None and scale not in _SCALES:
            raise ValueError(f"unknown scale {scale!r} in {expr!r}; use one of {_SCALES}")
        windows = match.group("windows")
        return cls(
            name=name,
            metric=match.group("metric"),
            op=match.group("op"),
            threshold=float(match.group("number")),
            scale=scale,
            for_windows=int(windows) if windows else 1,
            message=message,
        )

    def describe(self) -> str:
        """Canonical one-line form of the rule."""
        factor = f"*{self.scale}" if self.scale else ""
        suffix = f" for {self.for_windows} windows" if self.for_windows > 1 else ""
        return f"{self.metric} {self.op} {self.threshold:g}{factor}{suffix}"

    def to_json(self) -> dict:
        payload = {
            "name": self.name,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "for_windows": self.for_windows,
        }
        if self.scale is not None:
            payload["scale"] = self.scale
        if self.message is not None:
            payload["message"] = self.message
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "AlertRule":
        """Rule from a JSON object: structured fields, or ``expr`` syntax."""
        if "expr" in payload:
            return cls.parse(
                str(payload["name"]),
                str(payload["expr"]),
                message=payload.get("message"),
            )
        return cls(
            name=str(payload["name"]),
            metric=str(payload["metric"]),
            op=str(payload["op"]),
            threshold=float(payload["threshold"]),
            scale=payload.get("scale"),
            for_windows=int(payload.get("for_windows", 1)),
            message=payload.get("message"),
        )


@dataclass(frozen=True)
class Alert:
    """One fired alert: which rule, on which subject, in which window."""

    rule: str
    subject: str | None
    window: int
    value: float
    threshold: float
    expr: str

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "subject": self.subject,
            "window": self.window,
            "value": self.value,
            "threshold": self.threshold,
            "expr": self.expr,
        }


class AlertEngine:
    """Evaluates rules against per-window samples, tracking streaks.

    One streak counter per ``(rule, subject)``: the predicate must hold in
    ``for_windows`` *consecutive* windows to fire, fires exactly once per
    excursion, and re-arms as soon as the predicate clears (or the subject
    stops reporting the metric).
    """

    def __init__(self, rules: Sequence[AlertRule], max_fired: int = 256) -> None:
        self.rules = tuple(rules)
        self._streaks: dict[tuple[str, str | None], int] = {}
        self._active: set[tuple[str, str | None]] = set()
        self.fired: deque[Alert] = deque(maxlen=max_fired)

    @property
    def active(self) -> list[tuple[str, str | None]]:
        """Currently firing ``(rule, subject)`` pairs, sorted."""
        return sorted(self._active, key=lambda pair: (pair[0], pair[1] or ""))

    def evaluate(
        self,
        window: int,
        sample: Mapping[str | None, Mapping[str, float]],
        scales: Mapping[str, Mapping[str, float]] | None = None,
    ) -> list[Alert]:
        """Evaluate every rule against one closed window's sample.

        ``sample`` maps subject (message name, or ``None`` for global
        metrics) to that subject's metric values; ``scales`` maps message
        names to their current ``deadline`` / ``bound`` for scaled
        thresholds.  Returns the alerts that fired this window.
        """
        scales = scales or {}
        alerts: list[Alert] = []
        for rule in self.rules:
            if rule.message is not None:
                subjects = [rule.message]
            else:
                subjects = [s for s, values in sample.items() if rule.metric in values]
            # A subject that stops reporting the metric resets its streak,
            # exactly as a pinned subject with a missing value would.
            seen = set(subjects)
            for name, subject in list(self._streaks):
                if name == rule.name and subject not in seen:
                    self._streaks[name, subject] = 0
                    self._active.discard((name, subject))
            for subject in subjects:
                key = (rule.name, subject)
                value = sample.get(subject, {}).get(rule.metric)
                limit = self._resolve_threshold(rule, subject, scales)
                if value is None or limit is None:
                    self._streaks[key] = 0
                    self._active.discard(key)
                    continue
                if _OPS[rule.op](value, limit):
                    streak = self._streaks.get(key, 0) + 1
                    self._streaks[key] = streak
                    if streak >= rule.for_windows and key not in self._active:
                        self._active.add(key)
                        alert = Alert(
                            rule=rule.name,
                            subject=subject,
                            window=window,
                            value=value,
                            threshold=limit,
                            expr=rule.describe(),
                        )
                        self.fired.append(alert)
                        alerts.append(alert)
                else:
                    self._streaks[key] = 0
                    self._active.discard(key)
        return alerts

    def _resolve_threshold(
        self,
        rule: AlertRule,
        subject: str | None,
        scales: Mapping[str, Mapping[str, float]],
    ) -> float | None:
        if rule.scale is None:
            return rule.threshold
        if subject is None:
            return None
        quantity = scales.get(subject, {}).get(rule.scale)
        if quantity is None:
            return None
        return rule.threshold * quantity

    def recent(self, last: int | None = None) -> list[Alert]:
        """Most recent fired alerts, oldest first."""
        alerts = list(self.fired)
        if last is not None and last >= 0:
            alerts = alerts[len(alerts) - min(last, len(alerts)) :]
        return alerts

"""Observed frame streams: the monitor's wire-level input.

An :class:`ObservedFrame` is the minimal fact the conformance monitor needs
about one bus transmission: which message, when it was queued, when it
finished, whether it succeeded, and which attempt it was.  Streams come from
two places:

* live from the simulator (or, in a real deployment, a bus tap):
  :func:`frames_from_trace` flattens a recorded
  :class:`~repro.sim.trace.SimulationTrace` into queue-order frames;
* replayed over the daemon protocol: :func:`chunked` splits a stream into
  bounded ``monitor_ingest`` requests.

:func:`inject_jitter_burst` perturbs a clean stream deterministically -- it
is how the tests and the ``examples/live_monitor.py`` demo manufacture a
replay whose observed jitter escapes the registered event model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class ObservedFrame:
    """One observed (attempted or completed) frame transmission.

    ``queued_at`` / ``finished_at`` are milliseconds on the observer's
    clock; ``attempt`` counts retransmissions of the same instance, so
    arrival envelopes are built from first attempts only while response
    times come from successful completions.
    """

    message: str
    queued_at: float
    finished_at: float
    success: bool = True
    attempt: int = 1

    @property
    def response_time(self) -> float:
        """Observed response time (completion minus queuing instant)."""
        return self.finished_at - self.queued_at

    def to_json(self) -> list:
        """Compact array form used by the ``monitor_ingest`` op."""
        return [
            self.message,
            self.queued_at,
            self.finished_at,
            self.success,
            self.attempt,
        ]

    @classmethod
    def from_json(cls, payload: Sequence) -> "ObservedFrame":
        message, queued_at, finished_at, success, attempt = payload
        return cls(
            message=str(message),
            queued_at=float(queued_at),
            finished_at=float(finished_at),
            success=bool(success),
            attempt=int(attempt),
        )


def frames_from_trace(trace) -> list[ObservedFrame]:
    """Flatten a :class:`~repro.sim.trace.SimulationTrace` into a stream.

    One frame per transmission record (failed attempts included, so the
    monitor sees retransmissions), sorted by queuing instant then completion
    -- the order a bus tap would emit them.
    """
    frames = [
        ObservedFrame(
            message=record.message,
            queued_at=record.queued_at,
            finished_at=record.finished_at,
            success=record.success,
            attempt=record.attempt,
        )
        for record in trace.transmissions
    ]
    frames.sort(key=lambda f: (f.finished_at, f.queued_at, f.message))
    return frames


def chunked(frames: Iterable[ObservedFrame], size: int = 256) -> Iterator[list[ObservedFrame]]:
    """Split a stream into bounded chunks for ``monitor_ingest`` requests."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    chunk: list[ObservedFrame] = []
    for frame in frames:
        chunk.append(frame)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def inject_jitter_burst(
    frames: Sequence[ObservedFrame],
    message: str,
    *,
    start: float,
    count: int,
    shift: float,
) -> list[ObservedFrame]:
    """Deterministically perturb one message's frames into a jitter burst.

    The first ``count`` frames of ``message`` queued at or after ``start``
    get their queuing instants moved *earlier* by a linear ramp up to
    ``shift`` milliseconds (the i-th affected frame by ``shift * (i + 1) /
    count``).  Completion times are untouched, so each affected observed
    response time grows by its ramp amount, and consecutive queuing gaps
    shrink -- exactly the signature of a source whose real jitter exceeds
    what the K-Matrix registered.  Frames are re-sorted by completion so the
    result is still a valid stream.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if shift < 0:
        raise ValueError("shift must be non-negative")
    affected = 0
    result = []
    for frame in frames:
        if affected < count and frame.message == message and frame.queued_at >= start:
            affected += 1
            delta = shift * affected / count
            frame = replace(frame, queued_at=max(frame.queued_at - delta, 0.0))
        result.append(frame)
    result.sort(key=lambda f: (f.finished_at, f.queued_at, f.message))
    return result

"""Online conformance monitoring: observed streams vs analytic bounds.

The missing half of "simulation and test" vs analysis (paper Section 2):
this package closes the loop by streaming *observed* frame completions --
live from :mod:`repro.sim`, or replayed from recorded traces -- into the
serving tier and continuously checking them against the *analytic* bounds
the sessions serve.  See :mod:`repro.monitor.conformance` for the
conformance semantics, :mod:`repro.monitor.rules` for the declarative alert
layer, and :mod:`repro.monitor.stream` for the frame-stream input format.
"""

from repro.monitor.conformance import (
    ConformanceMonitor,
    IngestReport,
    MonitorConfig,
    ViolationRecord,
)
from repro.monitor.rules import Alert, AlertEngine, AlertRule
from repro.monitor.stream import (
    ObservedFrame,
    chunked,
    frames_from_trace,
    inject_jitter_burst,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "ConformanceMonitor",
    "IngestReport",
    "MonitorConfig",
    "ObservedFrame",
    "ViolationRecord",
    "chunked",
    "frames_from_trace",
    "inject_jitter_burst",
]

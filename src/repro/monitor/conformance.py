"""The online conformance monitor.

A :class:`ConformanceMonitor` is bound to one registered bus target and its
store-backed :class:`~repro.service.session.AnalysisSession`.  It ingests
observed frame streams (live from the simulator, or replayed in chunks over
the daemon's ``monitor_ingest`` op) and continuously checks three
conformance properties per message:

* **observed response vs analytic bound** -- every observed response time
  must stay at or below the current analytic worst case; an excursion means
  the analysis assumptions no longer describe the bus;
* **observed response vs deadline** -- the operational property the paper
  verifies analytically, checked against what actually happened;
* **arrival envelope vs registered event model** -- the observed
  ``empirical_eta_minus`` envelope must dominate the registered model's
  lower curve.  When it escapes (equivalently, by the eta/delta duality:
  the minimal conservative fitted jitter exceeds the registered jitter),
  the monitor *re-derives* the bounds by issuing an
  :class:`~repro.service.deltas.EventModelDelta` with the fitted model to
  the session -- so a flagged bound is always the current analytic answer
  for the observed behaviour, never a stale one, and bit-matches a
  from-scratch ``analyze_all`` of the overridden configuration (the
  session contract).

Time is sliced into fixed windows (``MonitorConfig.window_ms``).  At each
window close the monitor records per-message series into a
:class:`~repro.obs.MetricsHistory` ring, runs the declarative
:class:`~repro.monitor.rules.AlertEngine`, and re-checks arrival envelopes.
Violations feed the registry counters, the trace ring (one span-tree record
per violation, retained by overshoot severity) and the slow-query log.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.events.curves import EmpiricalEventTrace, fit_periodic_jitter
from repro.events.model import EventModel
from repro.monitor.rules import Alert, AlertEngine, AlertRule
from repro.monitor.stream import ObservedFrame
from repro.obs import MetricsHistory, Trace
from repro.service.deltas import EventModelDelta
from repro.sim.trace import UnknownMessageError

#: Absolute slack (ms) granted before an observed response time counts as
#: over a bound/deadline -- the same guard band the schedulability verdicts
#: use, absorbing float fuzz without hiding real excursions.
_VIOLATION_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables of one conformance monitor."""

    window_ms: float = 100.0
    history_windows: int = 128
    max_arrivals: int = 4096
    fit_max_n: int = 64
    jitter_tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if self.history_windows < 1:
            raise ValueError("history_windows must be >= 1")
        if self.max_arrivals < 2:
            raise ValueError("max_arrivals must be >= 2")
        if self.fit_max_n < 2:
            raise ValueError("fit_max_n must be >= 2")


@dataclass(frozen=True)
class ViolationRecord:
    """One flagged conformance violation."""

    message: str
    kind: str  # "observed-over-bound" | "observed-over-deadline"
    window: int
    observed: float
    bound: float | None
    deadline: float
    queued_at: float

    @property
    def overshoot(self) -> float:
        """How far past the violated limit the observation landed (ms)."""
        if self.kind == "observed-over-bound" and self.bound is not None:
            return self.observed - self.bound
        return self.observed - self.deadline

    def to_json(self) -> dict:
        return {
            "message": self.message,
            "kind": self.kind,
            "window": self.window,
            "observed": self.observed,
            "bound": self.bound,
            "deadline": self.deadline,
            "queued_at": self.queued_at,
            "overshoot": self.overshoot,
        }


@dataclass
class IngestReport:
    """What one ``ingest`` call observed and concluded."""

    frames: int = 0
    windows_closed: int = 0
    refits: int = 0
    violations: list[ViolationRecord] = field(default_factory=list)
    alerts: list[Alert] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "frames": self.frames,
            "windows_closed": self.windows_closed,
            "refits": self.refits,
            "violations": [v.to_json() for v in self.violations],
            "alerts": [a.to_json() for a in self.alerts],
        }


class _MessageState:
    """Mutable monitoring state of one registered message."""

    __slots__ = (
        "name",
        "period",
        "registered_jitter",
        "deadline",
        "bound",
        "bounded",
        "arrivals",
        "override",
        "frames",
        "completed",
        "observed_max",
        "violations",
        "window_arrivals",
        "window_completed",
        "window_max",
    )

    def __init__(self, name: str, period: float, registered_jitter: float) -> None:
        self.name = name
        self.period = period
        self.registered_jitter = registered_jitter
        self.deadline = 0.0
        self.bound: float | None = None
        self.bounded = False
        self.arrivals = EmpiricalEventTrace()
        self.override: EventModel | None = None
        self.frames = 0
        self.completed = 0
        self.observed_max = 0.0
        self.violations = 0
        self.window_arrivals = 0
        self.window_completed = 0
        self.window_max = 0.0

    @property
    def current_jitter(self) -> float:
        """Jitter of the model currently backing this message's bound."""
        if self.override is not None:
            return self.override.jitter
        return self.registered_jitter

    def reset_window(self) -> None:
        self.window_arrivals = 0
        self.window_completed = 0
        self.window_max = 0.0


class ConformanceMonitor:
    """Checks an observed frame stream against live analytic bounds."""

    def __init__(
        self,
        session,
        *,
        target: str = "bus",
        config: MonitorConfig | None = None,
        rules: Sequence[AlertRule] = (),
        metrics=None,
        trace_ring=None,
        slow_log=None,
    ) -> None:
        self.session = session
        self.target = target
        self.config = config or MonitorConfig()
        self.history = MetricsHistory(self.config.history_windows)
        self.engine = AlertEngine(rules)
        self.trace_ring = trace_ring
        self.slow_log = slow_log
        self._lock = threading.Lock()
        self._overrides: dict[str, EventModel] = {}
        self._window = 0
        self._frames = 0
        self._refits = 0
        self._violations_total = 0
        self._window_violations = 0
        base_config = session.base_config
        self._states: dict[str, _MessageState] = {}
        for message in base_config.kmatrix:
            model = base_config.effective_event_model(message.name)
            self._states[message.name] = _MessageState(message.name, message.period, model.jitter)
        # Baseline bounds and policy-resolved deadlines from the session's
        # own report; every refit refreshes both through the same path.
        self._warm = session.query((), label="monitor-baseline")
        self._apply_query_result(self._warm)
        self.metrics = metrics
        if metrics is not None:
            self._frames_total = metrics.counter("monitor_frames_total", target=target)
            self._windows_total = metrics.counter("monitor_windows_total", target=target)
            self._refits_total = metrics.counter("monitor_refits_total", target=target)
            self._violation_counters = {
                name: metrics.counter("monitor_violations_total", message=name)
                for name in self._states
            }
            self._alert_counters = {
                rule.name: metrics.counter("monitor_alerts_total", rule=rule.name)
                for rule in self.engine.rules
            }

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, frames: Iterable[ObservedFrame], cancel=None) -> IngestReport:
        """Feed a chunk of observed frames; returns what was concluded.

        Frames are processed in completion order; windows strictly before
        the newest completion are closed along the way (alert evaluation,
        history recording, envelope re-checks).  Raises
        :class:`~repro.sim.trace.UnknownMessageError` for frames naming a
        message the registered system does not define.
        """
        ordered = sorted(frames, key=lambda f: (f.finished_at, f.queued_at, f.message))
        report = IngestReport()
        with self._lock:
            for index, frame in enumerate(ordered):
                if cancel is not None and index % 256 == 0:
                    cancel.check()
                state = self._states.get(frame.message)
                if state is None:
                    raise UnknownMessageError(frame.message, self._states)
                self._advance_windows(frame.finished_at, report, cancel)
                self._ingest_frame(state, frame, report, cancel)
            # One batched increment per chunk: same total at every request
            # boundary, without a lock round-trip per frame.
            if self.metrics is not None and report.frames:
                self._frames_total.inc(report.frames)
        return report

    def _ingest_frame(
        self,
        state: _MessageState,
        frame: ObservedFrame,
        report: IngestReport,
        cancel,
    ) -> None:
        report.frames += 1
        self._frames += 1
        state.frames += 1
        if frame.attempt == 1:
            state.arrivals.add(frame.queued_at)
            state.window_arrivals += 1
        if not frame.success:
            return
        observed = frame.response_time
        state.completed += 1
        state.window_completed += 1
        if observed > state.window_max:
            state.window_max = observed
        if observed > state.observed_max:
            state.observed_max = observed
        bound = state.bound if state.bounded else None
        over_bound = bound is not None and observed > bound + _VIOLATION_TOLERANCE
        over_deadline = observed > state.deadline + _VIOLATION_TOLERANCE
        if over_bound or over_deadline:
            # Re-derive before flagging, so the record carries the current
            # analytic answer for the observed arrivals, never a stale one.
            if self._refit_if_escaped((state,), cancel):
                report.refits += 1
            self._flag_violations(state, frame, observed, report)

    def _flag_violations(
        self,
        state: _MessageState,
        frame: ObservedFrame,
        observed: float,
        report: IngestReport,
    ) -> None:
        kinds = []
        if (
            state.bounded
            and state.bound is not None
            and observed > state.bound + _VIOLATION_TOLERANCE
        ):
            kinds.append("observed-over-bound")
        if observed > state.deadline + _VIOLATION_TOLERANCE:
            kinds.append("observed-over-deadline")
        for kind in kinds:
            violation = ViolationRecord(
                message=state.name,
                kind=kind,
                window=self._window,
                observed=observed,
                bound=state.bound if state.bounded else None,
                deadline=state.deadline,
                queued_at=frame.queued_at,
            )
            state.violations += 1
            self._violations_total += 1
            self._window_violations += 1
            report.violations.append(violation)
            if self.metrics is not None:
                self._violation_counters[state.name].inc()
            self._record_violation_trace(violation)

    def _record_violation_trace(self, violation: ViolationRecord) -> None:
        if self.trace_ring is None and self.slow_log is None:
            return
        trace = Trace(
            op="monitor_violation",
            target=f"{self.target}/{violation.message}",
        )
        trace.record("observed_ms", violation.observed)
        if violation.bound is not None:
            trace.record("bound_ms", violation.bound)
        trace.record("deadline_ms", violation.deadline)
        trace.record(violation.kind, violation.overshoot)
        # Retention in the ring is by duration; a violation's severity is
        # its overshoot, so the worst excursions are the ones kept.
        trace.duration_ms = violation.overshoot
        if self.trace_ring is not None:
            self.trace_ring.add(trace)
        if self.slow_log is not None:
            self.slow_log.maybe_log(trace, fingerprint=f"violation:{violation.message}")

    # ------------------------------------------------------------------ #
    # Windows, envelopes, re-derivation
    # ------------------------------------------------------------------ #
    def _advance_windows(self, now: float, report: IngestReport, cancel) -> None:
        target_window = int(now // self.config.window_ms)
        while self._window < target_window:
            self._close_window(report, cancel)
            self._window += 1

    def _close_window(self, report: IngestReport, cancel) -> None:
        window = self._window
        report.windows_closed += 1
        if self.metrics is not None:
            self._windows_total.inc()
        escaped = [state for state in self._states.values() if state.window_arrivals]
        if self._refit_if_escaped(escaped, cancel):
            report.refits += 1
        sample: dict[str | None, dict[str, float]] = {}
        scales: dict[str, dict[str, float]] = {}
        # Tracked on the monitor, not the report: one window may span
        # several ingest chunks.
        window_violations = self._window_violations
        self._window_violations = 0
        for state in self._states.values():
            name = state.name
            values: dict[str, float] = {
                "frames": float(state.window_completed),
                "arrivals": float(state.window_arrivals),
            }
            self.history.record(window, "monitor_frames", state.window_completed, message=name)
            self.history.record(window, "monitor_arrivals", state.window_arrivals, message=name)
            if state.window_completed:
                slack = state.deadline - state.window_max
                values["observed_max_ms"] = state.window_max
                values["observed_slack_ms"] = slack
                self.history.record(window, "observed_max_ms", state.window_max, message=name)
                self.history.record(window, "observed_slack_ms", slack, message=name)
            sample[name] = values
            scale: dict[str, float] = {"deadline": state.deadline}
            if state.bounded and state.bound is not None:
                scale["bound"] = state.bound
            scales[name] = scale
            state.reset_window()
        self.history.record(window, "monitor_violations", window_violations)
        global_values: dict[str, float] = {"violations": float(window_violations)}
        if self.metrics is not None:
            for rule in self.engine.rules:
                if rule.metric not in global_values:
                    value = self.metrics.value(rule.metric)
                    if value is not None:
                        global_values[rule.metric] = value
        sample[None] = global_values
        fired = self.engine.evaluate(window, sample, scales)
        report.alerts.extend(fired)
        if self.metrics is not None:
            for alert in fired:
                counter = self._alert_counters.get(alert.rule)
                if counter is not None:
                    counter.inc()

    def _refit_if_escaped(self, states: Iterable[_MessageState], cancel) -> bool:
        """Re-derive bounds when any state's arrival envelope escaped.

        Escape test: fit the tightest conservative periodic-with-jitter
        model to the observed arrivals; a fitted jitter above the current
        model's is, by the eta/delta duality, exactly an
        ``empirical_eta_minus`` curve dipping below the model's
        ``eta_minus`` on some horizon.  All escaped messages are folded
        into one :class:`EventModelDelta` so interference coupling is
        re-solved once, and every message's bound/deadline refreshes from
        the same query.
        """
        changed = False
        for state in states:
            if len(state.arrivals) < 2:
                continue
            fitted = fit_periodic_jitter(state.arrivals, state.period, max_n=self.config.fit_max_n)
            if fitted.jitter > state.current_jitter + self.config.jitter_tolerance:
                self._overrides[state.name] = fitted
                state.override = fitted
                changed = True
        if not changed:
            return False
        delta = EventModelDelta.from_mapping(dict(self._overrides))
        result = self.session.query(
            (delta,),
            warm_from=self._warm,
            label="monitor-refit",
            cancel=cancel,
        )
        self._warm = result
        self._apply_query_result(result)
        self._refits += 1
        if self.metrics is not None:
            self._refits_total.inc()
        self._trim_arrivals()
        return True

    def _apply_query_result(self, result) -> None:
        for verdict in result.report.verdicts:
            state = self._states[verdict.name]
            state.deadline = verdict.deadline
            state.bound = verdict.worst_case_response
            state.bounded = result.results[verdict.name].bounded

    def _trim_arrivals(self) -> None:
        limit = self.config.max_arrivals
        for state in self._states.values():
            if len(state.arrivals) > limit:
                state.arrivals.timestamps = state.arrivals.timestamps[-limit:]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def flush(self, cancel=None) -> IngestReport:
        """Close the window in progress (end-of-replay bookkeeping)."""
        report = IngestReport()
        with self._lock:
            self._close_window(report, cancel)
            self._window += 1
        return report

    @property
    def overrides(self) -> dict[str, EventModel]:
        """Current fitted event-model overrides (name -> model)."""
        with self._lock:
            return dict(self._overrides)

    def status(self) -> dict:
        """JSON-shaped snapshot of the monitor's state."""
        with self._lock:
            messages = {}
            for name in sorted(self._states):
                state = self._states[name]
                entry = {
                    "bound": state.bound if state.bounded else None,
                    "deadline": state.deadline,
                    "frames": state.frames,
                    "completed": state.completed,
                    "violations": state.violations,
                    "registered_jitter": state.registered_jitter,
                }
                if state.completed:
                    entry["observed_max"] = state.observed_max
                if state.override is not None:
                    entry["fitted_jitter"] = state.override.jitter
                messages[name] = entry
            return {
                "target": self.target,
                "window_ms": self.config.window_ms,
                "window": self._window,
                "frames": self._frames,
                "violations": self._violations_total,
                "refits": self._refits,
                "overrides": sorted(self._overrides),
                "active_alerts": [
                    {"rule": rule, "subject": subject} for rule, subject in self.engine.active
                ],
                "messages": messages,
            }

    @property
    def violations_total(self) -> int:
        with self._lock:
            return self._violations_total

    def alerts(self, last: int | None = None) -> dict:
        """Recent fired alerts plus the currently active set."""
        with self._lock:
            return {
                "target": self.target,
                "fired": [a.to_json() for a in self.engine.recent(last)],
                "active": [
                    {"rule": rule, "subject": subject} for rule, subject in self.engine.active
                ],
            }

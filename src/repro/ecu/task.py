"""Tasks, interrupts, OSEK overheads and the ECU container.

The model follows what an OSEK/OSEKtime implementation exposes to a timing
analyst:

* *interrupt service routines* preempt every task;
* *preemptive tasks* are scheduled by fixed priority and can preempt lower
  priority tasks at any time;
* *cooperative tasks* only yield at schedule points, so they add blocking to
  higher-priority cooperative/preemptive tasks (bounded by their longest
  non-preemptable region);
* every activation pays OS overhead (activate + terminate + a share of the
  schedule-table/ISR bookkeeping);
* activation is either event-driven (an :class:`~repro.events.EventModel`,
  e.g. "when message X arrives") or time-driven through a :class:`TimeTable`
  (OSEKtime-style dispatcher table), which is simply a periodic event model
  with a table-defined offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from repro.events.model import EventModel, PeriodicEventModel, event_model_from_parameters


class TaskKind(str, Enum):
    """Scheduling class of a task."""

    PREEMPTIVE = "preemptive"
    COOPERATIVE = "cooperative"
    INTERRUPT = "interrupt"


@dataclass(frozen=True)
class OsekOverheads:
    """Per-activation operating-system overheads in milliseconds.

    The defaults correspond to a small 16/32-bit automotive micro running a
    commercial OSEK: a few microseconds per context switch.
    """

    activation: float = 0.004
    termination: float = 0.003
    isr_entry: float = 0.002
    schedule_point: float = 0.002

    def __post_init__(self) -> None:
        for name in ("activation", "termination", "isr_entry", "schedule_point"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} overhead must be non-negative")

    def per_activation(self, kind: TaskKind) -> float:
        """Total bookkeeping added to one activation of a task of ``kind``."""
        if kind == TaskKind.INTERRUPT:
            return self.isr_entry + self.termination
        if kind == TaskKind.COOPERATIVE:
            return self.activation + self.termination + self.schedule_point
        return self.activation + self.termination


@dataclass(frozen=True)
class TimeTableEntry:
    """One slot of a time-triggered dispatcher table."""

    task_name: str
    offset: float

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset must be non-negative")


@dataclass(frozen=True)
class TimeTable:
    """OSEKtime-style dispatcher table: entries repeated every ``period``."""

    period: float
    entries: tuple[TimeTableEntry, ...] = ()

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("TimeTable period must be positive")
        for entry in self.entries:
            if entry.offset >= self.period:
                raise ValueError(
                    f"entry for {entry.task_name!r} has offset {entry.offset} "
                    f">= table period {self.period}")

    def activations_of(self, task_name: str) -> tuple[TimeTableEntry, ...]:
        """Entries dispatching the given task."""
        return tuple(e for e in self.entries if e.task_name == task_name)

    def event_model_for(self, task_name: str) -> EventModel:
        """Activation event model the table implies for one task.

        A task dispatched ``k`` times per table round has an average period
        of ``period / k``; irregular spacing inside the round appears as
        jitter relative to that average grid.
        """
        offsets = sorted(e.offset for e in self.activations_of(task_name))
        if not offsets:
            raise KeyError(task_name)
        count = len(offsets)
        average_period = self.period / count
        if count == 1:
            return PeriodicEventModel(period=self.period)
        # Jitter: worst deviation of an actual dispatch from the average grid.
        jitter = max(
            abs(offset - (offsets[0] + index * average_period))
            for index, offset in enumerate(offsets))
        min_distance = min(
            (b - a) for a, b in zip(offsets, offsets[1:])) if count > 1 else 0.0
        return event_model_from_parameters(
            period=average_period, jitter=jitter, min_distance=min_distance)


@dataclass(frozen=True)
class Task:
    """One schedulable entity on an ECU.

    Attributes
    ----------
    name:
        Unique task name within its ECU.
    priority:
        Fixed priority; smaller numbers mean higher priority (interrupts
        should use the smallest numbers).
    wcet / bcet:
        Worst-/best-case execution time in milliseconds (without OS
        overhead).
    kind:
        Scheduling class, see :class:`TaskKind`.
    activation:
        Activation event model (event-driven tasks); ``None`` when the task
        is dispatched from the ECU's :class:`TimeTable`.
    sends_messages:
        Names of K-Matrix messages queued at the *end* of each execution of
        this task; their send jitter is derived from the task's response-time
        interval.
    non_preemptable_region:
        Longest code section executed with preemption disabled (ms); for
        cooperative tasks this defaults to the whole WCET.
    """

    name: str
    priority: int
    wcet: float
    bcet: float = 0.0
    kind: TaskKind = TaskKind.PREEMPTIVE
    activation: Optional[EventModel] = None
    sends_messages: tuple[str, ...] = ()
    non_preemptable_region: float = 0.0

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise ValueError(f"task {self.name!r}: wcet must be positive")
        if self.bcet < 0 or self.bcet > self.wcet:
            raise ValueError(
                f"task {self.name!r}: bcet must satisfy 0 <= bcet <= wcet")
        if self.non_preemptable_region < 0:
            raise ValueError("non_preemptable_region must be non-negative")
        if self.non_preemptable_region > self.wcet:
            raise ValueError("non_preemptable_region cannot exceed the wcet")

    @property
    def effective_non_preemptable_region(self) -> float:
        """Blocking a lower-priority instance of this task can cause."""
        if self.kind == TaskKind.COOPERATIVE and self.non_preemptable_region == 0:
            return self.wcet
        return self.non_preemptable_region

    def with_activation(self, activation: EventModel) -> "Task":
        """Copy of this task with a different activation model."""
        return replace(self, activation=activation)


@dataclass
class EcuModel:
    """One ECU: a set of tasks plus OS configuration.

    Attributes
    ----------
    name:
        ECU name matching the K-Matrix sender/receiver names.
    tasks:
        All tasks and ISRs of the ECU.
    overheads:
        OSEK overhead parameters.
    timetable:
        Optional time-triggered dispatcher table; tasks without an explicit
        activation model must appear in it.
    """

    name: str
    tasks: list[Task] = field(default_factory=list)
    overheads: OsekOverheads = field(default_factory=OsekOverheads)
    timetable: Optional[TimeTable] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check name/priority uniqueness and activation completeness."""
        names = [task.name for task in self.tasks]
        if len(names) != len(set(names)):
            raise ValueError(f"ECU {self.name!r} has duplicate task names")
        priorities = [task.priority for task in self.tasks]
        if len(priorities) != len(set(priorities)):
            raise ValueError(f"ECU {self.name!r} has duplicate task priorities")
        for task in self.tasks:
            if task.activation is None:
                if self.timetable is None or not self.timetable.activations_of(
                        task.name):
                    raise ValueError(
                        f"task {task.name!r} on ECU {self.name!r} has neither "
                        "an activation event model nor a TimeTable entry")

    def analysis_key(self) -> tuple:
        """Hashable fingerprint of every analysis-relevant input.

        Two ECU models with equal keys produce bit-identical task analyses
        and send models; like :meth:`GatewayModel.analysis_key` this is the
        value caches must key on, because the container itself is mutable.
        """
        return (self.name, tuple(self.tasks), self.overheads, self.timetable)

    def task(self, name: str) -> Task:
        """Return the task with the given name."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(name)

    def add_task(self, task: Task) -> None:
        """Add a task, re-validating the ECU."""
        self.tasks.append(task)
        try:
            self.validate()
        except ValueError:
            self.tasks.pop()
            raise

    def activation_of(self, task: Task) -> EventModel:
        """Effective activation model (explicit or from the TimeTable)."""
        if task.activation is not None:
            return task.activation
        assert self.timetable is not None  # guaranteed by validate()
        return self.timetable.event_model_for(task.name)

    def higher_priority_tasks(self, task: Task) -> list[Task]:
        """Tasks that can preempt ``task`` (interrupts always qualify)."""
        result = []
        for other in self.tasks:
            if other.name == task.name:
                continue
            if other.kind == TaskKind.INTERRUPT and task.kind != TaskKind.INTERRUPT:
                result.append(other)
            elif other.priority < task.priority and not (
                    task.kind == TaskKind.INTERRUPT
                    and other.kind != TaskKind.INTERRUPT):
                result.append(other)
        return result

    def lower_priority_tasks(self, task: Task) -> list[Task]:
        """Tasks that ``task`` can preempt (used for blocking terms)."""
        higher = {t.name for t in self.higher_priority_tasks(task)}
        return [t for t in self.tasks
                if t.name != task.name and t.name not in higher]

    def sender_task_of(self, message_name: str) -> Optional[Task]:
        """Task that queues the given K-Matrix message, if any."""
        for task in self.tasks:
            if message_name in task.sends_messages:
                return task
        return None

    def utilization(self) -> float:
        """Processor utilization of the ECU including per-activation overhead."""
        total = 0.0
        for task in self.tasks:
            activation = self.activation_of(task)
            cost = task.wcet + self.overheads.per_activation(task.kind)
            total += cost / activation.period
        return total

"""Fixed-priority response-time analysis of ECU tasks.

The analysis mirrors the bus-level one but for preemptive/cooperative tasks
with OSEK overheads:

* blocking: the longest non-preemptable region of any lower-priority task
  (cooperative tasks are non-preemptable for their whole WCET);
* interference: higher-priority tasks and ISRs according to their activation
  event models (periodic, jitter or burst);
* multi-instance busy-period analysis when the busy window exceeds the
  activation period.

From the task response-time intervals the module derives the *output event
models* of the messages each task queues -- the send jitters the OEM usually
has to guess (Section 3.3) and which the compositional engine of
:mod:`repro.core` propagates onto the bus analysis instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.ecu.task import EcuModel, Task
from repro.events.model import EventModel
from repro.events.operations import output_event_model


_MAX_ITERATIONS = 100_000
_CONVERGENCE_EPS = 1e-9
_MAX_BUSY_FACTOR = 1000.0


@dataclass(frozen=True)
class TaskResponseTime:
    """Analysis result for one task."""

    name: str
    worst_case: float
    best_case: float
    blocking: float
    busy_period: float
    instances_analyzed: int
    bounded: bool = True

    @property
    def response_interval(self) -> float:
        """Width of the response-time interval (drives output jitter)."""
        if not self.bounded:
            return math.inf
        return self.worst_case - self.best_case

    def describe(self) -> str:
        """One-line summary used in reports."""
        wc = f"{self.worst_case:.3f}" if self.bounded else "unbounded"
        return f"{self.name}: R=[{self.best_case:.3f}, {wc}] ms"


class EcuAnalysis:
    """Response-time analysis of all tasks on one ECU."""

    def __init__(self, ecu: EcuModel) -> None:
        self.ecu = ecu
        self._costs = {
            task.name: task.wcet + ecu.overheads.per_activation(task.kind)
            for task in ecu.tasks
        }
        self._best_costs = {
            task.name: max(task.bcet, 0.0)
            + ecu.overheads.per_activation(task.kind)
            for task in ecu.tasks
        }

    # ------------------------------------------------------------------ #
    # Terms of the RTA
    # ------------------------------------------------------------------ #
    def blocking(self, task: Task) -> float:
        """Longest non-preemptable region among lower-priority tasks."""
        lower = self.ecu.lower_priority_tasks(task)
        return max((t.effective_non_preemptable_region for t in lower),
                   default=0.0)

    def _interference(self, window: float, task: Task) -> float:
        """Interference from higher-priority tasks in a window."""
        total = 0.0
        for other in self.ecu.higher_priority_tasks(task):
            model = self.ecu.activation_of(other)
            total += model.eta_plus(window) * self._costs[other.name]
        return total

    def _horizon(self) -> float:
        periods = [self.ecu.activation_of(task).period for task in self.ecu.tasks]
        return _MAX_BUSY_FACTOR * max(periods)

    def _busy_period(self, task: Task) -> tuple[float, bool]:
        """Level-i busy period including the task's own activations."""
        model = self.ecu.activation_of(task)
        cost = self._costs[task.name]
        blocking = self.blocking(task)
        horizon = self._horizon()
        t = cost + blocking
        for _ in range(_MAX_ITERATIONS):
            own = max(model.eta_plus(t), 1)
            new_t = blocking + own * cost + self._interference(t, task)
            if new_t > horizon:
                return new_t, False
            if abs(new_t - t) < _CONVERGENCE_EPS:
                return new_t, True
            t = new_t
        return t, False

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def response_time(self, task: Task) -> TaskResponseTime:
        """Worst- and best-case response time of one task."""
        model = self.ecu.activation_of(task)
        cost = self._costs[task.name]
        blocking = self.blocking(task)
        horizon = self._horizon()

        busy, busy_bounded = self._busy_period(task)
        if not busy_bounded:
            return TaskResponseTime(
                name=task.name, worst_case=math.inf,
                best_case=self._best_costs[task.name], blocking=blocking,
                busy_period=busy, instances_analyzed=0, bounded=False)

        instances = max(model.eta_plus(busy), 1)
        worst = 0.0
        bounded = True
        for q in range(instances):
            # For a preemptive task the finish time of instance q includes its
            # own q prior instances plus its own execution.
            w = blocking + (q + 1) * cost
            for _ in range(_MAX_ITERATIONS):
                new_w = (blocking + (q + 1) * cost
                         + self._interference(w, task))
                if new_w > horizon:
                    bounded = False
                    break
                if abs(new_w - w) < _CONVERGENCE_EPS:
                    w = new_w
                    break
                w = new_w
            if not bounded:
                worst = math.inf
                break
            arrival_offset = model.delta_minus(q + 1)
            response = model.jitter + w - arrival_offset
            worst = max(worst, response)

        return TaskResponseTime(
            name=task.name,
            worst_case=worst,
            best_case=self._best_costs[task.name],
            blocking=blocking,
            busy_period=busy,
            instances_analyzed=instances,
            bounded=bounded,
        )

    def analyze_all(self) -> dict[str, TaskResponseTime]:
        """Response times of every task on the ECU, keyed by task name."""
        return {task.name: self.response_time(task) for task in self.ecu.tasks}

    def is_schedulable(self, deadlines: Mapping[str, float] | None = None) -> bool:
        """Whether all tasks finish within their deadline.

        Without explicit ``deadlines`` each task must finish within its
        activation period (implicit deadlines).
        """
        results = self.analyze_all()
        for task in self.ecu.tasks:
            deadline = (deadlines or {}).get(
                task.name, self.ecu.activation_of(task).period)
            if results[task.name].worst_case > deadline + 1e-9:
                return False
        return True


def message_output_models(
    ecu: EcuModel,
    min_output_distance: float = 0.0,
) -> dict[str, EventModel]:
    """Derive send event models for every message queued by the ECU's tasks.

    A message queued at the end of a task inherits the task's activation
    period and gains jitter equal to the task's activation jitter plus its
    response-time interval -- exactly the "send jitter" an OEM would ask the
    supplier to guarantee (Figure 6).

    Parameters
    ----------
    ecu:
        The ECU whose tasks queue the messages.
    min_output_distance:
        Physical lower bound between two queuings of the same message, e.g.
        the frame transmission time of the attached bus.
    """
    analysis = EcuAnalysis(ecu)
    results = analysis.analyze_all()
    models: dict[str, EventModel] = {}
    for task in ecu.tasks:
        if not task.sends_messages:
            continue
        activation = ecu.activation_of(task)
        result = results[task.name]
        model = output_event_model(
            input_model=activation,
            best_case_response=result.best_case,
            worst_case_response=result.worst_case,
            min_output_distance=min_output_distance,
        )
        for message_name in task.sends_messages:
            models[message_name] = model
    return models

"""ECU-internal scheduling substrate (OSEK-style).

The paper's Section 5.2 notes that SymTA/S "considers operating system (OSEK)
overhead, complex priority schemes with cooperative and preemptive tasks as
well as hardware interrupts" and TimeTable (time-triggered) activation.  The
message send jitters the bus analysis consumes are *produced* by exactly this
ECU-level scheduling, so a faithful reproduction needs the ECU substrate:

* :mod:`repro.ecu.task` -- tasks (preemptive / cooperative / interrupt),
  OSEK overheads, TimeTable activation and the ECU container;
* :mod:`repro.ecu.analysis` -- fixed-priority response-time analysis with
  blocking from cooperative tasks, plus the derivation of message output
  event models (send jitter) from task response-time intervals.
"""

from repro.ecu.task import (
    EcuModel,
    OsekOverheads,
    Task,
    TaskKind,
    TimeTable,
    TimeTableEntry,
)
from repro.ecu.analysis import (
    EcuAnalysis,
    TaskResponseTime,
    message_output_models,
)

__all__ = [
    "Task",
    "TaskKind",
    "OsekOverheads",
    "TimeTable",
    "TimeTableEntry",
    "EcuModel",
    "EcuAnalysis",
    "TaskResponseTime",
    "message_output_models",
]

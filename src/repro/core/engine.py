"""The compositional fixed-point iteration.

One global iteration performs three local analysis sweeps and one
propagation step:

1. **ECUs**: every detailed ECU model is analysed with
   :class:`~repro.ecu.analysis.EcuAnalysis`; the response-time intervals of
   its sender tasks yield *send* event models for the messages they queue.
2. **Buses**: every bus is analysed with
   :class:`~repro.analysis.response_time.CanBusAnalysis`, using the
   propagated send models where available and the K-Matrix assumptions
   everywhere else; the message response-time intervals yield *arrival*
   event models at the receivers.
3. **Gateways**: every gateway turns the arrival models of its source
   messages into send models of its destination messages (adding forwarding
   latency and jitter), which feed the next iteration's bus analyses.

The iteration stops when no event model changed (fixed point) or when the
iteration limit is reached (reported as non-convergence -- the system is
overloaded or has a cyclic dependency that keeps amplifying jitter).

Two performance levers keep large systems in the "within minutes" envelope:

* independent bus segments inside one global iteration are analysed through
  :func:`repro.parallel.parallel_map` (results are merged in segment order,
  so parallelism never changes a result);
* each global iteration's bus analyses are **warm-started** from the
  previous iteration's response times whenever the propagated event models
  only grew (jitter non-decreasing, periods unchanged, burst distances not
  tightened) -- the monotone case that dominates converging systems.  See
  the warm-start contract in :mod:`repro.analysis.response_time`; when an
  event model shrank (e.g. an oscillating gateway), the affected segment
  falls back to a cold start to preserve exactness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.response_time import CanBusAnalysis, MessageResponseTime
from repro.analysis.schedulability import report_from_results
from repro.core.results import SystemAnalysisResult
from repro.core.system import SystemModel
from repro.ecu.analysis import EcuAnalysis, message_output_models
from repro.events.model import EventModel
from repro.events.operations import output_event_model
from repro.gateway.model import GatewayAnalysis
from repro.parallel import parallel_map


_MODEL_EPS = 1e-6

#: Base arrival curve implementation; used to recognise event models whose
#: eta_plus semantics are fully described by (period, jitter, min_distance).
_BASE_ETA_PLUS = EventModel.eta_plus


def _models_equal(first: Mapping[str, EventModel],
                  second: Mapping[str, EventModel]) -> bool:
    """Whether two event-model maps are (numerically) identical.

    Models of different classes are never equal even with identical
    parameters: a :class:`SporadicEventModel` and a periodic model with the
    same ``(period, jitter, min_distance)`` bound different event streams,
    and treating them as equal could terminate the global fixed point early.
    """
    if first.keys() != second.keys():
        return False
    for name, model in first.items():
        other = second[name]
        if type(model) is not type(other):
            return False
        if abs(model.period - other.period) > _MODEL_EPS:
            return False
        if abs(model.jitter - other.jitter) > _MODEL_EPS:
            return False
        if abs(model.min_distance - other.min_distance) > _MODEL_EPS:
            return False
    return True


def _warm_seed_valid(previous: Mapping[str, EventModel],
                     current: Mapping[str, EventModel]) -> bool:
    """Whether the previous iteration's response times lower-bound the new
    ones, i.e. every event model only became (weakly) more demanding.

    This is the segment-level guard for the warm-start contract of
    :mod:`repro.analysis.response_time`: jitters must not shrink, periods
    must not change, and a burst-limiting minimum distance must not grow
    (a larger minimum distance caps ``eta_plus`` harder).  Models with a
    custom ``eta_plus`` are only accepted when literally unchanged.
    """
    if previous.keys() != current.keys():
        return False
    for name, old in previous.items():
        new = current[name]
        if (type(old).eta_plus is not _BASE_ETA_PLUS
                or type(new).eta_plus is not _BASE_ETA_PLUS):
            if type(old) is not type(new) or old != new:
                return False
            continue
        if new.period != old.period or new.jitter < old.jitter:
            return False
        if new.min_distance != old.min_distance:
            # Dropping the cap (to zero) only raises eta_plus; any other
            # change is safe only when the cap tightened.
            if new.min_distance != 0.0 and not (
                    0.0 < new.min_distance <= old.min_distance
                    and old.min_distance > 0.0):
                return False
    return True


def _analyze_segment_job(args: tuple) -> tuple:
    """Analyse one bus segment (top-level so ``process`` pools can pickle it).

    ``args`` is ``(segment, controllers, send_models, previous)`` where
    ``previous`` carries the segment's (event models, results) from the last
    global iteration for warm starting.
    """
    segment, controllers, send_models, previous = args
    overrides = {
        name: model for name, model in send_models.items()
        if name in segment.kmatrix}
    analysis = CanBusAnalysis(
        kmatrix=segment.kmatrix,
        bus=segment.bus,
        error_model=segment.error_model,
        assumed_jitter_fraction=segment.assumed_jitter_fraction,
        controllers=controllers,
        event_models=overrides,
    )
    models = {m.name: analysis.event_model(m) for m in segment.kmatrix}
    seeds = None
    if previous is not None:
        previous_models, previous_results = previous
        if _warm_seed_valid(previous_models, models):
            seeds = previous_results
    results = analysis.analyze_all(warm_start=seeds)
    arrival_models: dict[str, EventModel] = {}
    for message in segment.kmatrix:
        result = results[message.name]
        input_model = models[message.name]
        if not result.bounded:
            # Represent divergence as a very large jitter so that the
            # fixed point reports non-convergence instead of hiding it.
            arrival_models[message.name] = input_model.with_jitter(
                input_model.jitter + 100.0 * message.period)
            continue
        arrival_models[message.name] = output_event_model(
            input_model=input_model,
            best_case_response=result.best_case,
            worst_case_response=result.worst_case,
            min_output_distance=result.transmission_time,
        )
    report = report_from_results(
        segment.kmatrix, analysis, results, segment.deadline_policy)
    return results, arrival_models, report, models


class CompositionalAnalysis:
    """Global analysis of a :class:`~repro.core.system.SystemModel`."""

    def __init__(self, system: SystemModel, max_iterations: int = 50) -> None:
        problems = system.validate()
        if problems:
            raise ValueError(
                "inconsistent system model:\n  " + "\n  ".join(problems))
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.system = system
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------ #
    # Local sweeps
    # ------------------------------------------------------------------ #
    def _ecu_sweep(self) -> tuple[dict[str, EventModel], dict[str, object]]:
        """Analyse all detailed ECUs; return send models and task results."""
        send_models: dict[str, EventModel] = {}
        task_results: dict[str, object] = {}
        for ecu_name, ecu in self.system.ecus.items():
            analysis = EcuAnalysis(ecu)
            results = analysis.analyze_all()
            for task_name, result in results.items():
                task_results[f"{ecu_name}.{task_name}"] = result
            # Minimum output distance: the transmission time of the shortest
            # frame the ECU sends on its bus keeps burst models physical.
            min_distance = 0.0
            for message_name in {
                    m for task in ecu.tasks for m in task.sends_messages}:
                try:
                    segment = self.system.bus_of_message(message_name)
                except KeyError:
                    continue
                message = segment.kmatrix.get(message_name)
                tx = segment.bus.best_case_transmission_time(message)
                min_distance = min(min_distance, tx) if min_distance else tx
            send_models.update(message_output_models(
                ecu, min_output_distance=min_distance))
        return send_models, task_results

    def _bus_sweep(
        self,
        send_models: Mapping[str, EventModel],
        previous_sweep: Mapping[str, tuple] | None = None,
    ) -> tuple[dict[str, MessageResponseTime], dict[str, EventModel], dict,
               dict[str, tuple]]:
        """Analyse all buses with the given send models.

        Independent segments run through :func:`repro.parallel.parallel_map`
        as picklable job tuples for the top-level
        :func:`_analyze_segment_job` (so ``REPRO_PARALLEL=process`` works);
        results are merged in segment order, so the sweep is deterministic.
        ``previous_sweep`` carries each segment's (event models, results)
        from the last global iteration for warm starting.
        """
        segments = list(self.system.buses.values())
        previous_sweep = previous_sweep or {}
        controllers = dict(self.system.controllers)
        outcomes = parallel_map(
            _analyze_segment_job,
            [(segment, controllers, dict(send_models),
              previous_sweep.get(segment.name)) for segment in segments])
        message_results: dict[str, MessageResponseTime] = {}
        arrival_models: dict[str, EventModel] = {}
        bus_reports = {}
        sweep_state: dict[str, tuple] = {}
        for segment, (results, arrivals, report, models) in zip(
                segments, outcomes):
            message_results.update(results)
            arrival_models.update(arrivals)
            bus_reports[segment.name] = report
            sweep_state[segment.name] = (models, results)
        return message_results, arrival_models, bus_reports, sweep_state

    def _gateway_sweep(
        self,
        arrival_models: Mapping[str, EventModel],
    ) -> dict[str, EventModel]:
        """Propagate arrival models through all gateways."""
        forwarded: dict[str, EventModel] = {}
        for gateway in self.system.gateways.values():
            analysis = GatewayAnalysis(gateway)
            min_distance = 0.0
            for route in gateway.routes:
                try:
                    segment = self.system.bus_of_message(route.destination_message)
                except KeyError:
                    continue
                message = segment.kmatrix.get(route.destination_message)
                tx = segment.bus.best_case_transmission_time(message)
                min_distance = min(min_distance, tx) if min_distance else tx
            forwarded.update(analysis.output_event_models(
                arrival_models, min_output_distance=min_distance))
        return forwarded

    # ------------------------------------------------------------------ #
    # Fixed point
    # ------------------------------------------------------------------ #
    def run(self) -> SystemAnalysisResult:
        """Iterate local analyses and propagation until a global fixed point."""
        ecu_send_models, task_results = self._ecu_sweep()
        send_models: dict[str, EventModel] = dict(ecu_send_models)

        previous_send: dict[str, EventModel] = {}
        message_results: dict[str, MessageResponseTime] = {}
        arrival_models: dict[str, EventModel] = {}
        bus_reports: dict = {}
        converged = False
        iterations = 0

        previous_sweep: dict[str, tuple] = {}
        for iteration in range(1, self.max_iterations + 1):
            iterations = iteration
            (message_results, arrival_models, bus_reports,
             previous_sweep) = self._bus_sweep(send_models, previous_sweep)
            forwarded = self._gateway_sweep(arrival_models)
            new_send = dict(ecu_send_models)
            new_send.update(forwarded)
            if _models_equal(new_send, send_models) and iteration > 1:
                converged = True
                break
            if _models_equal(new_send, previous_send):
                # Oscillation between two states: treat the larger-jitter one
                # as the conservative fixed point.
                converged = True
                send_models = new_send
                break
            previous_send = send_models
            send_models = new_send
        else:
            converged = False

        if not self.system.gateways and not self.system.ecus:
            # A single-bus system without propagation converges trivially.
            converged = True

        return SystemAnalysisResult(
            converged=converged,
            iterations=iterations,
            message_results=message_results,
            task_results=task_results,
            bus_reports=bus_reports,
            send_models=send_models,
            arrival_models=arrival_models,
        )

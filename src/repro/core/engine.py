"""The compositional fixed-point iteration.

One global iteration performs three local analysis sweeps and one
propagation step:

1. **ECUs**: every detailed ECU model is analysed with
   :class:`~repro.ecu.analysis.EcuAnalysis`; the response-time intervals of
   its sender tasks yield *send* event models for the messages they queue.
2. **Buses**: every bus is analysed with
   :class:`~repro.analysis.response_time.CanBusAnalysis`, using the
   propagated send models where available and the K-Matrix assumptions
   everywhere else; the message response-time intervals yield *arrival*
   event models at the receivers.
3. **Gateways**: every gateway turns the arrival models of its source
   messages into send models of its destination messages (adding forwarding
   latency and jitter), which feed the next iteration's bus analyses.

The iteration stops when no event model changed (fixed point) or when the
iteration limit is reached (reported as non-convergence -- the system is
overloaded or has a cyclic dependency that keeps amplifying jitter).

Two performance levers keep large systems in the "within minutes" envelope:

* independent bus segments inside one global iteration are analysed through
  :func:`repro.parallel.parallel_map` (results are merged in segment order,
  so parallelism never changes a result);
* successive global iterations are **incremental**: every bus segment is
  owned by a per-segment
  :class:`~repro.service.session.AnalysisSession`, and each iteration
  issues the propagated send models as one
  :class:`~repro.service.deltas.EventModelDelta` to that session.  The
  session's planner then decides *per message* whether the cached fixed
  point can be reused outright (nothing at or above the message's priority
  changed), warm-started (its inputs only grew -- the monotone case that
  dominates converging systems; see the warm-start contract in
  :mod:`repro.analysis.response_time`), or must be re-solved cold (an
  oscillating gateway shrank a jitter).  All three paths are bit-identical
  to rebuilding the :class:`~repro.analysis.response_time.CanBusAnalysis`
  from scratch each iteration, which remains available as
  ``incremental=False`` (and is what ``REPRO_PARALLEL=process`` uses:
  sessions are in-process state, so process pools fall back to the
  picklable explicit-warm-seed jobs).
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.backend import resolve_backend
from repro.analysis.response_time import CanBusAnalysis, MessageResponseTime
from repro.analysis.schedulability import report_from_results
from repro.cancel import CancelToken
from repro.core.results import SystemAnalysisResult
from repro.core.system import BusSegment, SystemModel
from repro.ecu.analysis import EcuAnalysis, message_output_models
from repro.events.model import EventModel
from repro.events.operations import output_event_model
from repro.gateway.model import GatewayAnalysis
from repro.parallel import parallel_map, resolve_mode
from repro.service.deltas import EventModelDelta
from repro.service.session import AnalysisSession, QueryResult


_MODEL_EPS = 1e-6

#: Base arrival curve implementation; used to recognise event models whose
#: eta_plus semantics are fully described by (period, jitter, min_distance).
_BASE_ETA_PLUS = EventModel.eta_plus


def _models_equal(first: Mapping[str, EventModel],
                  second: Mapping[str, EventModel]) -> bool:
    """Whether two event-model maps are (numerically) identical.

    Models of different classes are never equal even with identical
    parameters: a :class:`SporadicEventModel` and a periodic model with the
    same ``(period, jitter, min_distance)`` bound different event streams,
    and treating them as equal could terminate the global fixed point early.
    """
    if first.keys() != second.keys():
        return False
    for name, model in first.items():
        other = second[name]
        if type(model) is not type(other):
            return False
        if abs(model.period - other.period) > _MODEL_EPS:
            return False
        if abs(model.jitter - other.jitter) > _MODEL_EPS:
            return False
        if abs(model.min_distance - other.min_distance) > _MODEL_EPS:
            return False
    return True


def _warm_seed_valid(previous: Mapping[str, EventModel],
                     current: Mapping[str, EventModel]) -> bool:
    """Whether the previous iteration's response times lower-bound the new
    ones, i.e. every event model only became (weakly) more demanding.

    This is the segment-level guard for the warm-start contract of
    :mod:`repro.analysis.response_time`: jitters must not shrink, periods
    must not change, and a burst-limiting minimum distance must not grow
    (a larger minimum distance caps ``eta_plus`` harder).  Models with a
    custom ``eta_plus`` are only accepted when literally unchanged.
    """
    if previous.keys() != current.keys():
        return False
    for name, old in previous.items():
        new = current[name]
        if (type(old).eta_plus is not _BASE_ETA_PLUS
                or type(new).eta_plus is not _BASE_ETA_PLUS):
            if type(old) is not type(new) or old != new:
                return False
            continue
        if new.period != old.period or new.jitter < old.jitter:
            return False
        if new.min_distance != old.min_distance:
            # Dropping the cap (to zero) only raises eta_plus; any other
            # change is safe only when the cap tightened.
            if new.min_distance != 0.0 and not (
                    0.0 < new.min_distance <= old.min_distance
                    and old.min_distance > 0.0):
                return False
    return True


def _segment_arrival_models(
    kmatrix,
    models: Mapping[str, EventModel],
    results: Mapping[str, MessageResponseTime],
) -> dict[str, EventModel]:
    """Arrival event models of one analysed segment.

    Shared by the incremental (session) and rebuild sweeps so both derive
    the propagated models through literally the same arithmetic.
    """
    arrival_models: dict[str, EventModel] = {}
    for message in kmatrix:
        result = results[message.name]
        input_model = models[message.name]
        if not result.bounded:
            # Represent divergence as a very large jitter so that the
            # fixed point reports non-convergence instead of hiding it.
            arrival_models[message.name] = input_model.with_jitter(
                input_model.jitter + 100.0 * message.period)
            continue
        arrival_models[message.name] = output_event_model(
            input_model=input_model,
            best_case_response=result.best_case,
            worst_case_response=result.worst_case,
            min_output_distance=result.transmission_time,
        )
    return arrival_models


def _analyze_segment_job(args: tuple) -> tuple:
    """Analyse one bus segment (top-level so ``process`` pools can pickle it).

    ``args`` is ``(segment, controllers, send_models, previous, backend)``
    where ``previous`` carries the segment's (event models, results) from the
    last global iteration for warm starting and ``backend`` selects the
    fixed-point execution backend (resolved in the worker, so a process pool
    without numpy degrades to scalar on its own).
    """
    segment, controllers, send_models, previous, backend = args
    overrides = {
        name: model for name, model in send_models.items()
        if name in segment.kmatrix}
    analysis = CanBusAnalysis(
        kmatrix=segment.kmatrix,
        bus=segment.bus,
        error_model=segment.error_model,
        assumed_jitter_fraction=segment.assumed_jitter_fraction,
        controllers=controllers,
        event_models=overrides,
        backend=backend,
    )
    models = {m.name: analysis.event_model(m) for m in segment.kmatrix}
    seeds = None
    if previous is not None:
        previous_models, previous_results = previous
        if _warm_seed_valid(previous_models, models):
            seeds = previous_results
    results = analysis.analyze_all(warm_start=seeds)
    arrival_models = _segment_arrival_models(segment.kmatrix, models, results)
    report = report_from_results(
        segment.kmatrix, analysis, results, segment.deadline_policy)
    return results, arrival_models, report, models


#: LRU bound of each engine-owned segment session: successive global
#: iterations only ever chain off the previous configuration and the base,
#: so a small cache keeps memory flat on hundreds-of-messages segments.
_SESSION_CACHE_PER_SEGMENT = 8


class CompositionalAnalysis:
    """Global analysis of a :class:`~repro.core.system.SystemModel`.

    Parameters
    ----------
    system:
        The integration model to analyse.
    max_iterations:
        Bound on global fixed-point iterations.
    sessions:
        Optional mapping of bus name to an existing
        :class:`~repro.service.session.AnalysisSession` for that segment
        (the analysis daemon shares its sharded session pool this way, so
        repeated system analyses hit warm caches across requests).  Missing
        segments get a private session on first use.  Each provided session
        must have been built over exactly the segment's configuration
        (e.g. via :meth:`AnalysisSession.from_segment` with the system's
        controllers).
    incremental:
        When ``True`` (default), bus sweeps run on the per-segment sessions
        (reuse / warm-start per message).  ``False`` forces the
        rebuild-per-iteration path; both produce bit-identical results, and
        ``REPRO_PARALLEL=process`` implies the rebuild path because
        sessions are in-process state that cannot follow a job into a
        worker process.
    analysis_backend:
        Fixed-point execution backend for every analysis this engine builds
        (``"auto"``/``None``, ``"numpy"`` or ``"scalar"``; see
        :mod:`repro.analysis.backend`).  Results are backend-independent
        bit for bit.
    """

    def __init__(self, system: SystemModel, max_iterations: int = 50,
                 sessions: Mapping[str, AnalysisSession] | None = None,
                 incremental: bool = True,
                 analysis_backend: str | None = None) -> None:
        problems = system.validate()
        if problems:
            raise ValueError(
                "inconsistent system model:\n  " + "\n  ".join(problems))
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.system = system
        self.max_iterations = max_iterations
        self.incremental = incremental
        self.analysis_backend = resolve_backend(analysis_backend)
        # Per-segment sweep state of the *last* run, retained across runs:
        # every reuse it enables is fingerprint-guarded (the incremental
        # path carries arrival models over only on an exact query-key
        # match; the rebuild path keys each retained seed on the segment's
        # full configuration and additionally vets the event models via
        # _warm_seed_valid), so a persistent engine re-analysing after an
        # in-place segment, ECU or gateway edit stays bit-identical -- the
        # memo invalidates by fingerprint, never by object identity.
        self._sweep_state: dict[str, object] = {}
        self._sessions: dict[str, AnalysisSession] = dict(sessions or {})
        unknown = set(self._sessions) - set(system.buses)
        if unknown:
            raise ValueError(
                f"sessions for unknown buses: {sorted(unknown)}")

    # ------------------------------------------------------------------ #
    # Session pool access
    # ------------------------------------------------------------------ #
    def session_for(self, bus_name: str) -> AnalysisSession:
        """The per-segment session of one bus (created on first use)."""
        return self._session_for(self.system.buses[bus_name])

    def session_stats(self) -> list:
        """Statistics of every segment session created so far."""
        return [self._sessions[name].stats() for name in sorted(self._sessions)]

    def _session_for(self, segment: BusSegment) -> AnalysisSession:
        session = self._sessions.get(segment.name)
        if session is not None and not self._session_matches(session, segment):
            # The segment was reconfigured between runs (the system model is
            # mutable); a stale base configuration would silently answer for
            # the old matrix, so the session is rebuilt.  Unchanged segments
            # keep their warm caches, which is what makes re-analysis after
            # a local edit incremental.
            session = None
        if session is None:
            session = AnalysisSession.from_segment(
                segment,
                controllers=dict(self.system.controllers) or None,
                max_cached_configs=_SESSION_CACHE_PER_SEGMENT,
                name=f"engine:{segment.name}",
                backend=self.analysis_backend)
            self._sessions[segment.name] = session
        return session

    def _session_matches(self, session: AnalysisSession,
                         segment: BusSegment) -> bool:
        base = session.base_config
        return (base.kmatrix == segment.kmatrix
                and base.bus == segment.bus
                and base.error_model == segment.error_model
                and base.assumed_jitter_fraction
                == segment.assumed_jitter_fraction
                and base.deadline_policy == segment.deadline_policy
                and dict(base.controllers or {})
                == dict(self.system.controllers))

    # ------------------------------------------------------------------ #
    # Local sweeps
    # ------------------------------------------------------------------ #
    def _ecu_sweep(self) -> tuple[dict[str, EventModel], dict[str, object]]:
        """Analyse all detailed ECUs; return send models and task results."""
        send_models: dict[str, EventModel] = {}
        task_results: dict[str, object] = {}
        for ecu_name, ecu in self.system.ecus.items():
            analysis = EcuAnalysis(ecu)
            results = analysis.analyze_all()
            for task_name, result in results.items():
                task_results[f"{ecu_name}.{task_name}"] = result
            # Minimum output distance: the transmission time of the shortest
            # frame the ECU sends on its bus keeps burst models physical.
            min_distance = 0.0
            for message_name in {
                    m for task in ecu.tasks for m in task.sends_messages}:
                try:
                    segment = self.system.bus_of_message(message_name)
                except KeyError:
                    continue
                message = segment.kmatrix.get(message_name)
                tx = segment.bus.best_case_transmission_time(message)
                min_distance = min(min_distance, tx) if min_distance else tx
            send_models.update(message_output_models(
                ecu, min_output_distance=min_distance))
        return send_models, task_results

    def _query_segment_session(
        self,
        segment: BusSegment,
        send_models: Mapping[str, EventModel],
        previous: object,
        cancel: CancelToken | None = None,
    ) -> tuple:
        """One incremental segment analysis: issue the propagated send
        models as an :class:`EventModelDelta` to the segment's session.

        ``previous`` is the segment's ``(query, arrival models)`` pair from
        the last iteration; when the new query lands on the same
        configuration fingerprint the arrival models are carried over
        verbatim (same analysis inputs imply the same outputs), so converged
        segments cost a cache lookup per iteration, not a propagation pass.
        """
        session = self._session_for(segment)
        overrides = {
            name: model for name, model in send_models.items()
            if name in segment.kmatrix}
        deltas: tuple = ()
        if overrides:
            deltas = (EventModelDelta.from_mapping(
                overrides, replace_all=True),)
        prev_query = prev_arrivals = None
        if isinstance(previous, tuple) and len(previous) == 2 \
                and isinstance(previous[0], QueryResult):
            prev_query, prev_arrivals = previous
        query = session.query(deltas, warm_from=prev_query, cancel=cancel)
        if prev_query is not None and query.key == prev_query.key:
            arrivals = prev_arrivals
        else:
            models = session.input_models(deltas)
            arrivals = _segment_arrival_models(
                segment.kmatrix, models, query.results)
        return query.results, arrivals, query.report, (query, arrivals)

    def _bus_sweep(
        self,
        send_models: Mapping[str, EventModel],
        previous_sweep: Mapping[str, object] | None = None,
        cancel: CancelToken | None = None,
    ) -> tuple[dict[str, MessageResponseTime], dict[str, EventModel], dict,
               dict[str, object]]:
        """Analyse all buses with the given send models.

        On the incremental path every segment's query runs against its
        cached session (deltas planned per message); independent segments
        still evaluate through :func:`repro.parallel.parallel_map` and merge
        in segment order, so the sweep stays deterministic.  Under
        ``REPRO_PARALLEL=process`` (or ``incremental=False``) the sweep
        instead submits picklable job tuples to the top-level
        :func:`_analyze_segment_job`, warm-seeded with each segment's
        (event models, results) from the previous iteration.
        """
        segments = list(self.system.buses.values())
        previous_sweep = previous_sweep or {}
        mode = resolve_mode("auto", len(segments))
        message_results: dict[str, MessageResponseTime] = {}
        arrival_models: dict[str, EventModel] = {}
        bus_reports = {}
        sweep_state: dict[str, object] = {}
        if self.incremental and mode != "process":
            def job(segment: BusSegment) -> tuple:
                return self._query_segment_session(
                    segment, send_models, previous_sweep.get(segment.name),
                    cancel=cancel)
            outcomes = parallel_map(job, segments, mode=mode)
            for segment, (results, arrivals, report, state) in zip(
                    segments, outcomes):
                message_results.update(results)
                arrival_models.update(arrivals)
                bus_reports[segment.name] = report
                sweep_state[segment.name] = state
        else:
            controllers = dict(self.system.controllers)
            controller_key = tuple(sorted(controllers.items()))
            jobs = []
            keys: dict[str, tuple] = {}
            for segment in segments:
                # Everything a warm seed's validity depends on *besides*
                # the event models (_warm_seed_valid checks those):
                # structure/priorities, bus timing, error model,
                # assumed jitter, controllers.  A retained seed whose
                # configuration key no longer matches -- an in-place
                # bit-rate edit, priority swap or error-model change
                # between runs -- could overshoot the new least fixed
                # point, so it is discarded instead of reused.
                key = (tuple(segment.kmatrix.messages), segment.bus,
                       segment.error_model,
                       segment.assumed_jitter_fraction, controller_key)
                keys[segment.name] = key
                previous = previous_sweep.get(segment.name)
                if isinstance(previous, tuple) and len(previous) == 3 \
                        and previous[0] == key:
                    previous = previous[1:]
                else:
                    previous = None
                jobs.append((segment, controllers, dict(send_models),
                             previous, self.analysis_backend))
            outcomes = parallel_map(_analyze_segment_job, jobs)
            for segment, (results, arrivals, report, models) in zip(
                    segments, outcomes):
                message_results.update(results)
                arrival_models.update(arrivals)
                bus_reports[segment.name] = report
                sweep_state[segment.name] = (keys[segment.name], models,
                                             results)
        return message_results, arrival_models, bus_reports, sweep_state

    def _gateway_sweep(
        self,
        arrival_models: Mapping[str, EventModel],
    ) -> dict[str, EventModel]:
        """Propagate arrival models through all gateways."""
        forwarded: dict[str, EventModel] = {}
        for gateway in self.system.gateways.values():
            analysis = GatewayAnalysis(gateway)
            min_distance = 0.0
            for route in gateway.routes:
                try:
                    segment = self.system.bus_of_message(route.destination_message)
                except KeyError:
                    continue
                message = segment.kmatrix.get(route.destination_message)
                tx = segment.bus.best_case_transmission_time(message)
                min_distance = min(min_distance, tx) if min_distance else tx
            forwarded.update(analysis.output_event_models(
                arrival_models, min_output_distance=min_distance))
        return forwarded

    # ------------------------------------------------------------------ #
    # Fixed point
    # ------------------------------------------------------------------ #
    def run(self, cancel: CancelToken | None = None) -> SystemAnalysisResult:
        """Iterate local analyses and propagation until a global fixed point.

        ``cancel`` (see :mod:`repro.cancel`) is threaded into every
        incremental segment query's fixed-point loops and additionally
        checked between global iterations, which also bounds the
        ``REPRO_PARALLEL=process`` rebuild path (tokens cannot follow a job
        into a worker process, so there each *global* iteration is the
        cancellation granule).  A fired token raises out of ``run`` without
        corrupting the retained sweep state: it is only replaced by
        completed sweeps.
        """
        ecu_send_models, task_results = self._ecu_sweep()
        send_models: dict[str, EventModel] = dict(ecu_send_models)

        previous_send: dict[str, EventModel] = {}
        message_results: dict[str, MessageResponseTime] = {}
        arrival_models: dict[str, EventModel] = {}
        bus_reports: dict = {}
        converged = False
        iterations = 0

        previous_sweep = self._sweep_state
        for iteration in range(1, self.max_iterations + 1):
            iterations = iteration
            if cancel is not None:
                cancel.check()
            (message_results, arrival_models, bus_reports,
             previous_sweep) = self._bus_sweep(send_models, previous_sweep,
                                               cancel=cancel)
            self._sweep_state = previous_sweep
            forwarded = self._gateway_sweep(arrival_models)
            new_send = dict(ecu_send_models)
            new_send.update(forwarded)
            if _models_equal(new_send, send_models) and iteration > 1:
                converged = True
                break
            if _models_equal(new_send, previous_send):
                # Oscillation between two states: treat the larger-jitter one
                # as the conservative fixed point.
                converged = True
                send_models = new_send
                break
            previous_send = send_models
            send_models = new_send
        else:
            converged = False

        if not self.system.gateways and not self.system.ecus:
            # A single-bus system without propagation converges trivially.
            converged = True

        return SystemAnalysisResult(
            converged=converged,
            iterations=iterations,
            message_results=message_results,
            task_results=task_results,
            bus_reports=bus_reports,
            send_models=send_models,
            arrival_models=arrival_models,
        )

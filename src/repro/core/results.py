"""Result containers of the compositional system analysis."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.response_time import MessageResponseTime
from repro.analysis.schedulability import SchedulabilityReport
from repro.ecu.analysis import TaskResponseTime
from repro.events.model import EventModel


@dataclass(frozen=True)
class SystemAnalysisResult:
    """Global fixed point of one compositional analysis run.

    Attributes
    ----------
    converged:
        Whether the event-model propagation reached a fixed point.  A
        non-converged system is overloaded somewhere (jitters keep growing),
        which the paper calls a transient overload / bottleneck situation.
    iterations:
        Number of global iterations performed.
    message_results:
        Per-message response-time results, keyed by message name.
    task_results:
        Per-task response-time results, keyed by ``"ecu.task"``.
    bus_reports:
        Per-bus schedulability reports, keyed by bus name.
    send_models:
        Event models with which each message is queued at its sender (the
        propagated "send jitter" of Figure 6), keyed by message name.
    arrival_models:
        Event models with which each message arrives at its receivers (the
        "receive jitter" of Figure 6), keyed by message name.
    """

    converged: bool
    iterations: int
    message_results: Mapping[str, MessageResponseTime]
    task_results: Mapping[str, TaskResponseTime]
    bus_reports: Mapping[str, SchedulabilityReport]
    send_models: Mapping[str, EventModel]
    arrival_models: Mapping[str, EventModel]

    @property
    def all_deadlines_met(self) -> bool:
        """True when every bus report is free of deadline misses."""
        return self.converged and all(
            report.all_deadlines_met for report in self.bus_reports.values())

    @property
    def total_messages(self) -> int:
        """Number of messages analysed across all buses."""
        return len(self.message_results)

    def worst_case_response(self, message_name: str) -> float:
        """Worst-case response time of one message (ms)."""
        return self.message_results[message_name].worst_case

    def send_jitter(self, message_name: str) -> float:
        """Send jitter of one message at the fixed point (ms)."""
        model = self.send_models.get(message_name)
        return model.jitter if model is not None else math.nan

    def arrival_jitter(self, message_name: str) -> float:
        """Arrival (receive) jitter of one message at the fixed point (ms)."""
        model = self.arrival_models.get(message_name)
        return model.jitter if model is not None else math.nan

    def describe(self) -> str:
        """Multi-line summary of the system verdict."""
        status = "converged" if self.converged else "DID NOT CONVERGE"
        lines = [f"System analysis {status} after {self.iterations} iterations"]
        for bus_name, report in self.bus_reports.items():
            lines.append(
                f"  {bus_name}: {len(report.missed)}/{len(report.verdicts)} "
                f"messages miss their deadline "
                f"(utilization {report.utilization * 100:.1f} %)")
        return "\n".join(lines)

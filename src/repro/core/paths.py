"""End-to-end latency along cause-effect chains.

A typical automotive timing requirement spans several components: a sensor
task on one ECU queues a message, a gateway forwards it onto another bus, and
an actuator task on a third ECU consumes it.  With compositional analysis the
worst-case end-to-end latency of such a chain is bounded by the sum of the
worst-case response times of its segments (the classic, safe "first-through"
bound); the best case is the sum of best cases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.results import SystemAnalysisResult
from repro.core.system import SystemModel
from repro.gateway.model import GatewayAnalysis


@dataclass(frozen=True)
class EndToEndPath:
    """A cause-effect chain through the system.

    Attributes
    ----------
    name:
        Symbolic path name, e.g. ``"pedal-to-torque"``.
    segments:
        Ordered component references: ``("task", "ECU1.SensorTask")``,
        ``("message", "EngineTorque1")``, ``("gateway", "Gateway1:MsgOut")``,
        ... The analysis sums the matching response times.
    """

    name: str
    segments: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        valid = {"task", "message", "gateway"}
        for kind, _ in self.segments:
            if kind not in valid:
                raise ValueError(f"unknown path segment kind {kind!r}")


@dataclass(frozen=True)
class PathLatency:
    """Worst-/best-case latency of one end-to-end path."""

    path: EndToEndPath
    worst_case: float
    best_case: float
    per_segment: tuple[tuple[str, float], ...]

    @property
    def jitter(self) -> float:
        """End-to-end jitter bound (worst minus best case)."""
        if math.isinf(self.worst_case):
            return math.inf
        return self.worst_case - self.best_case

    def describe(self) -> str:
        """One-line summary used in reports."""
        wc = "unbounded" if math.isinf(self.worst_case) else f"{self.worst_case:.3f} ms"
        return f"path {self.path.name}: worst {wc}, best {self.best_case:.3f} ms"

    def as_row(self) -> list[object]:
        """Row for :func:`repro.reporting.tables.format_path_latency_table`."""
        worst = "unbounded" if math.isinf(self.worst_case) else self.worst_case
        jitter = "unbounded" if math.isinf(self.jitter) else self.jitter
        return [self.path.name, worst, self.best_case, jitter,
                len(self.per_segment)]


def _resolve_gateway_segment(system: SystemModel, reference: str):
    """Resolve ``"GatewayName:DestinationMessage"`` to (gateway, route).

    The named gateway is preferred, but when it does not (or no longer)
    hosts the route, every other gateway is searched (in name order) for a
    route producing the destination message.  Paths therefore survive
    topology edits that migrate a route between gateways -- the failover
    scenario's whole point is comparing the *same* chain before and after
    the migration.  ``"*:DestinationMessage"`` skips the preference.
    """
    gateway_name, _, destination = reference.partition(":")
    preferred = system.gateways.get(gateway_name)
    if preferred is None and gateway_name != "*":
        raise KeyError(f"unknown gateway {gateway_name!r}")
    candidates = [preferred] if preferred is not None else []
    candidates.extend(
        system.gateways[name] for name in sorted(system.gateways)
        if system.gateways[name] is not preferred)
    for gateway in candidates:
        try:
            return gateway, gateway.route_for_destination(destination)
        except KeyError:
            continue
    raise KeyError(
        f"no gateway forwards {destination!r} (path segment {reference!r})")


def path_latency(
    path: EndToEndPath,
    system: SystemModel,
    result: SystemAnalysisResult,
) -> PathLatency:
    """Sum the response-time contributions of every segment of ``path``.

    Parameters
    ----------
    path:
        The chain to evaluate.
    system:
        The system model (needed to resolve gateway segments).
    result:
        A completed compositional analysis of that system.
    """
    worst = 0.0
    best = 0.0
    per_segment: list[tuple[str, float]] = []
    for kind, reference in path.segments:
        if kind == "task":
            task_result = result.task_results.get(reference)
            if task_result is None:
                raise KeyError(f"no task result for {reference!r}")
            segment_worst = task_result.worst_case
            segment_best = task_result.best_case
        elif kind == "message":
            message_result = result.message_results.get(reference)
            if message_result is None:
                raise KeyError(f"no message result for {reference!r}")
            segment_worst = message_result.worst_case
            segment_best = message_result.best_case
        else:  # gateway segment: "GatewayName:DestinationMessage"
            gateway, route = _resolve_gateway_segment(system, reference)
            analysis = GatewayAnalysis(gateway)
            latency = analysis.route_latency(route, result.arrival_models)
            segment_worst = latency.worst_case
            segment_best = latency.best_case
        worst = worst + segment_worst if not math.isinf(segment_worst) else math.inf
        best += segment_best
        per_segment.append((f"{kind}:{reference}", segment_worst))
    return PathLatency(path=path, worst_case=worst, best_case=best,
                       per_segment=tuple(per_segment))


def path_latency_all(
    paths: Sequence[EndToEndPath],
    system: SystemModel,
    result: SystemAnalysisResult,
) -> tuple[PathLatency, ...]:
    """Latencies of several paths over one analysis, in input order.

    The system-level what-if layer serves
    :meth:`repro.whatif.session.SystemSession.path_latency` through this,
    so one cached :class:`SystemAnalysisResult` answers a whole path
    portfolio without re-running anything.
    """
    return tuple(path_latency(path, system, result) for path in paths)

"""Compositional system-level analysis engine (the SymTA/S core).

The paper's central technical idea -- inherited from the SymTA/S project and
refs [11,12,13] -- is *compositional* performance analysis: every component
(ECU, bus, gateway) is analysed with a local scheduling analysis, the
resulting response-time intervals are turned into output event models, and
those become the input event models of the connected components.  Iterating
this propagation around the system graph until the event models stop
changing yields a global fixed point: system-level worst-case timing without
a global model.

* :mod:`repro.core.system` -- the system model (buses, ECUs, gateways,
  controllers and their connections);
* :mod:`repro.core.engine` -- the fixed-point iteration with convergence and
  divergence detection;
* :mod:`repro.core.paths` -- end-to-end latency along cause-effect chains
  (task -> message -> gateway -> message -> task);
* :mod:`repro.core.results` -- result containers.
"""

from repro.core.system import BusSegment, SystemModel
from repro.core.engine import CompositionalAnalysis
from repro.core.results import SystemAnalysisResult
from repro.core.paths import (
    EndToEndPath,
    PathLatency,
    path_latency,
    path_latency_all,
)

__all__ = [
    "SystemModel",
    "BusSegment",
    "CompositionalAnalysis",
    "SystemAnalysisResult",
    "EndToEndPath",
    "PathLatency",
    "path_latency",
    "path_latency_all",
]

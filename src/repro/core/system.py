"""System model: buses, ECUs, gateways and their interconnection.

The system model is the OEM's integration view (Figure 3 of the paper): per
bus a K-Matrix and physical parameters, per ECU either a detailed task model
(when the supplier discloses one or the OEM uses assumptions) or just the
controller type, plus error and diagnostics models, and the gateways that
couple the buses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.ecu.task import EcuModel
from repro.errors.models import ErrorModel, NoErrors
from repro.gateway.model import GatewayModel


@dataclass
class BusSegment:
    """One bus of the system: physical configuration plus its K-Matrix."""

    bus: CanBus
    kmatrix: KMatrix
    error_model: ErrorModel = field(default_factory=NoErrors)
    deadline_policy: str = "period"
    assumed_jitter_fraction: float = 0.0

    @property
    def name(self) -> str:
        """Bus name (unique within the system)."""
        return self.bus.name


@dataclass
class SystemModel:
    """The complete integration model the OEM analyses.

    Attributes
    ----------
    name:
        System name, e.g. ``"Powertrain network"``.
    buses:
        Bus segments keyed by bus name.
    ecus:
        Detailed ECU task models keyed by ECU name (optional per ECU --
        the whole point of the paper is that the OEM often has to work with
        assumptions instead).
    gateways:
        Gateway models keyed by gateway (ECU) name.
    controllers:
        CAN controller models keyed by ECU name.
    """

    name: str
    buses: dict[str, BusSegment] = field(default_factory=dict)
    ecus: dict[str, EcuModel] = field(default_factory=dict)
    gateways: dict[str, GatewayModel] = field(default_factory=dict)
    controllers: dict[str, ControllerModel] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add_bus(self, segment: BusSegment) -> None:
        """Register a bus segment."""
        if segment.name in self.buses:
            raise ValueError(f"bus {segment.name!r} already registered")
        self.buses[segment.name] = segment

    def add_ecu(self, ecu: EcuModel) -> None:
        """Register a detailed ECU model."""
        if ecu.name in self.ecus:
            raise ValueError(f"ECU {ecu.name!r} already registered")
        self.ecus[ecu.name] = ecu

    def add_gateway(self, gateway: GatewayModel) -> None:
        """Register a gateway."""
        if gateway.name in self.gateways:
            raise ValueError(f"gateway {gateway.name!r} already registered")
        self.gateways[gateway.name] = gateway

    # ------------------------------------------------------------------ #
    # Copy-on-write derivation (the system-delta layer edits through these)
    # ------------------------------------------------------------------ #
    def shallow_copy(self) -> "SystemModel":
        """New system sharing every bus, ECU, gateway and controller object.

        The typed system deltas of :mod:`repro.whatif` never mutate a model
        in place: they copy the container dicts, replace only the edited
        entries, and share everything untouched with the parent -- the same
        structural sharing :class:`~repro.service.deltas.BusConfiguration`
        uses one level down.
        """
        return SystemModel(
            name=self.name,
            buses=dict(self.buses),
            ecus=dict(self.ecus),
            gateways=dict(self.gateways),
            controllers=dict(self.controllers),
        )

    def fingerprint(self) -> tuple:
        """Hashable fingerprint of every analysis-relevant system input.

        Two systems with equal fingerprints produce bit-identical
        :class:`~repro.core.engine.CompositionalAnalysis` results.  The
        fingerprint deliberately covers the *values* of buses, gateways,
        ECUs and controllers -- gateway and ECU containers are mutable, so
        any cache over whole-system results must invalidate on this value,
        never on object identity (see
        :meth:`~repro.gateway.model.GatewayModel.analysis_key`).  The
        system name is excluded: renaming changes no analysis input.
        """
        buses = tuple(
            (name,
             tuple(segment.kmatrix.messages),
             segment.bus,
             segment.error_model,
             segment.assumed_jitter_fraction,
             segment.deadline_policy)
            for name, segment in sorted(self.buses.items()))
        gateways = tuple(
            gateway.analysis_key()
            for _, gateway in sorted(self.gateways.items()))
        ecus = tuple(
            ecu.analysis_key() for _, ecu in sorted(self.ecus.items()))
        controllers = tuple(sorted(self.controllers.items()))
        return (buses, gateways, ecus, controllers)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def bus_of_message(self, message_name: str) -> BusSegment:
        """The bus segment carrying the given message."""
        for segment in self.buses.values():
            if message_name in segment.kmatrix:
                return segment
        raise KeyError(message_name)

    def message_names(self) -> list[str]:
        """All message names across all buses."""
        names: list[str] = []
        for segment in self.buses.values():
            names.extend(m.name for m in segment.kmatrix)
        return names

    def ecu_names(self) -> list[str]:
        """All ECU names referenced anywhere in the system."""
        names: set[str] = set(self.ecus)
        names.update(self.gateways)
        names.update(self.controllers)
        for segment in self.buses.values():
            names.update(segment.kmatrix.ecu_names())
        return sorted(names)

    def validate(self) -> list[str]:
        """Cross-component consistency checks; returns a list of problems.

        An empty list means the model is consistent: every task-sent message
        and every gateway route endpoint exists in some K-Matrix, and message
        names are globally unique.
        """
        problems: list[str] = []
        seen: dict[str, str] = {}
        for segment in self.buses.values():
            for message in segment.kmatrix:
                if message.name in seen:
                    problems.append(
                        f"message {message.name!r} appears on both "
                        f"{seen[message.name]!r} and {segment.name!r}")
                seen[message.name] = segment.name
        for ecu in self.ecus.values():
            for task in ecu.tasks:
                for message_name in task.sends_messages:
                    if message_name not in seen:
                        problems.append(
                            f"task {task.name!r} on {ecu.name!r} sends unknown "
                            f"message {message_name!r}")
        for gateway in self.gateways.values():
            for route in gateway.routes:
                if route.source_message not in seen:
                    problems.append(
                        f"gateway {gateway.name!r} forwards unknown source "
                        f"message {route.source_message!r}")
                if route.destination_message not in seen:
                    problems.append(
                        f"gateway {gateway.name!r} produces unknown destination "
                        f"message {route.destination_message!r}")
                if route.source_message in seen and \
                        seen[route.source_message] != route.source_bus:
                    problems.append(
                        f"route {route.describe()} expects source on "
                        f"{route.source_bus!r} but it is on "
                        f"{seen[route.source_message]!r}")
                if route.destination_message in seen and \
                        seen[route.destination_message] != route.destination_bus:
                    problems.append(
                        f"route {route.describe()} expects destination on "
                        f"{route.destination_bus!r} but it is on "
                        f"{seen[route.destination_message]!r}")
        return problems

    def describe(self) -> str:
        """Multi-line inventory of the system (the Figure-3 information)."""
        lines = [f"System {self.name!r}:"]
        for segment in self.buses.values():
            lines.append(f"  bus {segment.name}: {len(segment.kmatrix)} messages, "
                         f"{segment.bus.bit_rate_bps / 1000:g} kbit/s, "
                         f"errors: {segment.error_model.describe()}")
        lines.append(f"  detailed ECU models: {sorted(self.ecus) or 'none'}")
        lines.append(f"  gateways: {sorted(self.gateways) or 'none'}")
        return "\n".join(lines)

"""Diagnostic and flashing traffic as additional bus load.

Both kinds of traffic use ISO-TP style segmented transfers on dedicated
request/response identifiers:

* a *diagnostic session* (tester present, periodic readouts) produces a
  request frame and a multi-frame response every polling interval;
* a *flashing session* transfers large data blocks as back-to-back consecutive
  frames, throttled by a separation time (STmin) -- a textbook "periodic with
  burst" event stream.

The helpers below convert session descriptions into extra
:class:`~repro.can.message.CanMessage` rows (with appropriate burst
parameters) so the regular load, response-time and loss analyses can quantify
the impact on the production traffic, answering the "how about diagnosis and
ECU flashing?" question of Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage


@dataclass(frozen=True)
class DiagnosticSession:
    """A periodic diagnostic exchange between a tester and one ECU."""

    ecu: str
    request_id: int
    response_id: int
    polling_period: float = 100.0
    response_frames: int = 3
    tester_name: str = "Tester"

    def __post_init__(self) -> None:
        if self.polling_period <= 0:
            raise ValueError("polling_period must be positive")
        if self.response_frames < 1:
            raise ValueError("response_frames must be at least 1")


@dataclass(frozen=True)
class FlashingSession:
    """A block-transfer (re-programming) session towards one ECU."""

    ecu: str
    data_id: int
    ack_id: int
    block_size_frames: int = 16
    separation_time: float = 0.5
    block_period: float = 50.0
    tester_name: str = "Tester"

    def __post_init__(self) -> None:
        if self.block_size_frames < 1:
            raise ValueError("block_size_frames must be at least 1")
        if self.separation_time < 0:
            raise ValueError("separation_time must be non-negative")
        if self.block_period <= 0:
            raise ValueError("block_period must be positive")
        if self.block_size_frames * self.separation_time >= self.block_period:
            raise ValueError("block must fit inside block_period")


def diagnostic_messages(session: DiagnosticSession) -> list[CanMessage]:
    """K-Matrix rows modelling one diagnostic session.

    The request is a single periodic frame; the response is a periodic burst
    of ``response_frames`` consecutive frames (first frame + consecutive
    frames of the segmented answer).
    """
    request = CanMessage(
        name=f"DiagRequest_{session.ecu}",
        can_id=session.request_id,
        dlc=8,
        period=session.polling_period,
        jitter=0.0,
        sender=session.tester_name,
        receivers=(session.ecu,),
    )
    # The response frames leave back-to-back once the ECU has assembled the
    # answer: period = polling period, jitter > period models the burst, the
    # minimum distance is the ECU's frame preparation gap.
    response = CanMessage(
        name=f"DiagResponse_{session.ecu}",
        can_id=session.response_id,
        dlc=8,
        period=session.polling_period / session.response_frames,
        jitter=session.polling_period,
        min_distance=0.2,
        sender=session.ecu,
        receivers=(session.tester_name,),
    )
    return [request, response]


def flashing_messages(session: FlashingSession) -> list[CanMessage]:
    """K-Matrix rows modelling one flashing (block-transfer) session."""
    data = CanMessage(
        name=f"FlashData_{session.ecu}",
        can_id=session.data_id,
        dlc=8,
        period=session.block_period / session.block_size_frames,
        jitter=session.block_period,
        min_distance=max(session.separation_time, 1e-3),
        sender=session.tester_name,
        receivers=(session.ecu,),
    )
    ack = CanMessage(
        name=f"FlashAck_{session.ecu}",
        can_id=session.ack_id,
        dlc=3,
        period=session.block_period,
        jitter=0.0,
        sender=session.ecu,
        receivers=(session.tester_name,),
    )
    return [data, ack]


def kmatrix_with_diagnostics(
    kmatrix: KMatrix,
    diagnostic_sessions: Sequence[DiagnosticSession] = (),
    flashing_sessions: Sequence[FlashingSession] = (),
) -> KMatrix:
    """Return a new K-Matrix with diagnostic/flashing traffic added.

    The production messages are untouched; the added rows use the identifiers
    configured in the session descriptions (diagnostic identifiers are
    normally at the very bottom of the priority range, which the caller
    controls by choosing large ids).
    """
    messages = list(kmatrix.messages)
    for session in diagnostic_sessions:
        messages.extend(diagnostic_messages(session))
    for session in flashing_sessions:
        messages.extend(flashing_messages(session))
    return KMatrix(messages=messages)

"""Diagnostics and ECU-flashing traffic models.

Figure 3 lists "flashing & diagnosis" among the information needed for
reliable schedulability analysis, and the OEM questions of Section 2 include
"How about diagnosis and ECU flashing?".  Both activities inject additional,
usually low-priority but bursty traffic into the network; this package turns
them into extra K-Matrix messages (with burst event models) so the standard
analyses can answer those questions.
"""

from repro.diagnostics.traffic import (
    DiagnosticSession,
    FlashingSession,
    diagnostic_messages,
    flashing_messages,
    kmatrix_with_diagnostics,
)

__all__ = [
    "DiagnosticSession",
    "FlashingSession",
    "diagnostic_messages",
    "flashing_messages",
    "kmatrix_with_diagnostics",
]

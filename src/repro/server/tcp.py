"""TCP front end of the analysis daemon.

A :class:`socketserver.ThreadingTCPServer` speaking the line-delimited JSON
protocol: one connection thread per client, one request per line, one
response per line, requests answered in order per connection.  All state
lives in the :class:`~repro.server.daemon.AnalysisDaemon` (whose session
pool and job queue are thread-safe); the transport layer only frames bytes.

``start_server`` binds and serves in a daemon thread, returning the running
server -- the pattern examples and tests use::

    daemon = AnalysisDaemon()
    daemon.add_config("powertrain", config)
    server = start_server(daemon, port=0)       # port 0: ephemeral
    with TcpClient(*server.server_address) as client:
        client.ping()
    server.stop()

A client sending the ``shutdown`` op stops the server (and the daemon's
workers) after its response line is written.
"""

from __future__ import annotations

import socketserver
import threading
import time
from typing import Optional

from repro.server.daemon import AnalysisDaemon
from repro.server.protocol import (
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7677


class _RequestHandler(socketserver.StreamRequestHandler):
    """One client connection: drain request lines until EOF or shutdown.

    Two fault-injection sites live here (see :mod:`repro.server.faults`):
    ``tcp.drop`` closes the connection uncleanly instead of writing the
    response (the client sees EOF mid-request and must reconnect+retry),
    ``tcp.slow`` delays the response write (client read timeouts).
    """

    def handle(self) -> None:
        server: "DaemonServer" = self.server  # type: ignore[assignment]
        daemon = server.daemon
        for line in self.rfile:
            if server.stopped:
                # The server was stopped (or hard-restarted) while this
                # connection idled: die like the listener did, so clients
                # reconnect to whatever now owns the port instead of
                # talking to a zombie daemon.
                return
            if not line.strip():
                continue
            decode_start = time.perf_counter()
            try:
                request = decode_line(line)
            except ProtocolError as error:
                self.wfile.write(encode_line(
                    error_response(str(error), code="protocol")))
                self.wfile.flush()
                continue
            decode_ms = (time.perf_counter() - decode_start) * 1000.0
            response = daemon.handle(request, decode_ms=decode_ms)
            if daemon.faults.check("tcp.drop") is not None:
                # Unclean close *after* the work ran: exactly the window
                # where a retried idempotent request must come back
                # bit-identical, not double-applied.
                self.connection.close()
                return
            rule = daemon.faults.check("tcp.slow")
            if rule is not None:
                time.sleep(rule.arg / 1000.0)
            encode_start = time.perf_counter()
            data = encode_line(response)
            encode_ms = (time.perf_counter() - encode_start) * 1000.0
            trace = daemon.take_trace()
            if trace is not None:
                # Fold line-encode time into the trace (it is retained by
                # reference, so the ``traces`` op sees it too); a traced
                # response re-renders its inline span tree so the client
                # receives the complete stage breakdown.
                trace.extend("encode", encode_ms)
                if "trace" in response:
                    response["trace"] = trace.to_json()
                    data = encode_line(response)
            try:
                self.wfile.write(data)
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return  # client went away; nothing left to tell it
            if daemon.shutdown_requested:
                server.stop_async()
                return


class DaemonServer(socketserver.ThreadingTCPServer):
    """Threading TCP server bound to one :class:`AnalysisDaemon`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, daemon: AnalysisDaemon,
                 host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> None:
        super().__init__((host, port), _RequestHandler)
        self.daemon = daemon
        self._thread: Optional[threading.Thread] = None
        self._stop_lock = threading.Lock()
        self._stopped = False

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has begun (connections should close)."""
        return self._stopped

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) -- resolves ``port=0``."""
        host, port = self.server_address[:2]
        return str(host), int(port)

    def serve_in_background(self) -> "DaemonServer":
        """Start ``serve_forever`` on a daemon thread; returns self."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-daemon-tcp", daemon=True)
        self._thread.start()
        return self

    def stop(self, close_daemon: bool = True,
             grace: Optional[float] = None) -> None:
        """Stop serving, join the serve thread, optionally close the daemon.

        Safe against concurrent calls (the shutdown op stops the server from
        a background thread while the owner may call ``stop()`` too): the
        lock makes the second caller wait until the listening socket is
        actually closed, so no caller returns while the port still accepts
        connections.

        Stopping only closes the *listening* socket; established
        connections keep their handler threads, so in-flight requests
        finish (or get typed drain errors) through
        :meth:`AnalysisDaemon.close` -- ``grace`` overrides its window.
        """
        with self._stop_lock:
            if not self._stopped:
                self._stopped = True
                self.shutdown()
                self.server_close()
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)
        if close_daemon:
            self.daemon.close(grace=grace)

    def stop_async(self) -> None:
        """Stop from inside a handler thread (shutdown op)."""
        threading.Thread(target=self.stop, daemon=True).start()

    def __enter__(self) -> "DaemonServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server(daemon: AnalysisDaemon, host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> DaemonServer:
    """Bind a :class:`DaemonServer` and serve it in a background thread."""
    return DaemonServer(daemon, host=host, port=port).serve_in_background()

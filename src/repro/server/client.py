"""Clients of the analysis daemon.

Two transports, one API:

* :class:`InProcessClient` -- wraps an :class:`AnalysisDaemon` directly but
  still round-trips every request and response through the JSON codec, so
  it exercises byte-for-byte the wire protocol (tests and single-process
  deployments);
* :class:`TcpClient` -- a blocking socket client for the
  :mod:`repro.server.tcp` front end; thread-safe (one request in flight at
  a time per client) and self-healing: a dropped connection is re-dialled
  transparently on the next attempt.

Responses are plain decoded protocol dicts -- floats in them bit-match the
kernel's local results (see :mod:`repro.server.protocol`).  A failed
request raises :class:`DaemonError` carrying the daemon's message and
typed error ``code``; a lost connection raises :class:`ConnectionLost`
(a ``DaemonError`` with code ``"transport"``).

Retries
-------
Both clients share one :class:`RetryPolicy` (exponential backoff with
jitter).  What may be retried follows the protocol's error taxonomy:

* ``overloaded`` responses are always retryable -- the daemon rejected
  the request before running it -- and the server's ``retry_after_ms``
  hint floors the backoff delay;
* transport failures are retried for idempotent ops.  Every query op is
  idempotent (analyses are pure; repeating one returns a bit-identical
  result), so all of them retry.  ``register``, ``monitor_start`` and
  ``monitor_ingest`` mutate daemon state, so they are retried only when
  the failure happened *connecting* -- once bytes may have reached the
  daemon, the client surfaces the error instead of re-sending;
* ``timeout``, ``draining`` and the request-fault codes (``invalid``,
  ``protocol``, ``unknown_target``) are never retried: the outcome would
  not improve, or the caller's deadline is already spent.

Each attempt sends a fresh request ``id``, and both clients verify the
daemon echoed it back: a mismatched reply (e.g. a stale response left in
the stream by an earlier half-read) raises
:class:`~repro.server.protocol.ProtocolError` and, on TCP, poisons the
connection so the next attempt re-dials instead of desynchronising.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from itertools import count
from typing import Mapping, Optional, Sequence

from repro.server.daemon import AnalysisDaemon
from repro.server.protocol import (
    ProtocolError,
    config_to_json,
    decode_line,
    deltas_to_json,
    encode_line,
    paths_to_json,
    system_deltas_to_json,
    system_to_json,
)
from repro.service.deltas import BusConfiguration, Delta
from repro.whatif.system_deltas import SystemDelta


class DaemonError(RuntimeError):
    """The daemon answered ``ok: false`` (or the transport failed).

    ``code`` is the protocol's typed error code (see
    :mod:`repro.server.protocol`), plus the client-side pseudo-code
    ``"transport"`` for connection failures.  ``retry_after_ms`` carries
    the backoff hint of ``overloaded`` responses.
    """

    def __init__(self, message: str, code: str = "internal",
                 retry_after_ms: Optional[int] = None) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_ms = retry_after_ms

    @property
    def retryable(self) -> bool:
        """Whether retrying the same request can succeed (never executed)."""
        return self.code in ("overloaded", "transport")


class ConnectionLost(DaemonError):
    """The TCP connection failed; ``sent`` tells whether bytes went out."""

    def __init__(self, message: str, sent: bool) -> None:
        super().__init__(message, code="transport")
        self.sent = sent


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for retryable daemon requests.

    ``attempts`` bounds total tries (1 = no retries).  The n-th retry
    sleeps ``base_delay * multiplier**(n-1)`` seconds, capped at
    ``max_delay``, spread by ``jitter`` (a fraction: 0.5 means the delay
    is drawn uniformly from [75 %, 125 %] of nominal) so a burst of
    rejected clients does not re-arrive in lockstep.  A server-supplied
    ``retry_after_ms`` hint floors the delay.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt: int, rng: random.Random,
              retry_after_ms: Optional[int] = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        nominal = min(self.max_delay,
                      self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            nominal *= 1.0 + self.jitter * (rng.random() - 0.5)
        if retry_after_ms is not None:
            nominal = max(nominal, retry_after_ms / 1000.0)
        return nominal


#: No retry at all: fire-and-forget semantics would re-stop a daemon.
_NO_RETRY_OPS = frozenset({"shutdown"})
#: Retried only when the connection failed before any bytes were sent.
#: ``register`` re-binds state; ``monitor_start`` resets a monitor's
#: windows and alert streaks; ``monitor_ingest`` advances window state --
#: none of them may be blindly re-sent once bytes reached the daemon.
_CONNECT_RETRY_ONLY_OPS = frozenset(
    {"register", "monitor_start", "monitor_ingest"})


class BaseClient:
    """Shared typed helpers and retry loop over the raw transport."""

    retry: RetryPolicy

    def __init__(self, retry: Optional[RetryPolicy] = None) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self._ids = count(1)
        # Deterministic per-client jitter: tests that count sleeps can
        # pin it with RetryPolicy(jitter=0).
        self._rng = random.Random(0x5EED)
        self.retries = 0

    def _roundtrip(self, request: dict) -> dict:
        """Send one encoded request; return the decoded response dict."""
        raise NotImplementedError

    def request(self, op: str, **params) -> dict:
        """Send one request; return the ``result`` payload or raise.

        Transparently retries per the module docstring's rules; every
        attempt uses a fresh request ``id`` and verifies the echo.

        Any op accepts ``trace=True`` (and an optional ``trace_id``);
        the daemon's inline span tree and echoed trace id are folded
        into the returned payload under ``"trace"`` / ``"trace_id"``.
        """
        attempt = 0
        while True:
            attempt += 1
            request = {"op": op, "id": next(self._ids), **params}
            try:
                response = self._roundtrip(request)
            except ConnectionLost as error:
                may_retry = op not in _NO_RETRY_OPS and (
                    op not in _CONNECT_RETRY_ONLY_OPS or not error.sent)
                if not may_retry or attempt >= self.retry.attempts:
                    raise
                self.retries += 1
                time.sleep(self.retry.delay(attempt, self._rng))
                continue
            echoed = response.get("id")
            if echoed is not None and echoed != request["id"]:
                self._poison()
                raise ProtocolError(
                    f"response id {echoed!r} does not match request id "
                    f"{request['id']!r}; connection desynchronised")
            if response.get("ok"):
                result = response["result"]
                if isinstance(result, dict):
                    # Trace data rides at the envelope level on the wire;
                    # surface it with the payload so callers keep a single
                    # return value.
                    if "trace" in response:
                        result.setdefault("trace", response["trace"])
                    if "trace_id" in response:
                        result.setdefault("trace_id", response["trace_id"])
                return result
            code = str(response.get("code", "internal"))
            retry_after_ms = response.get("retry_after_ms")
            if code == "overloaded" and op not in _NO_RETRY_OPS \
                    and attempt < self.retry.attempts:
                self.retries += 1
                time.sleep(self.retry.delay(
                    attempt, self._rng, retry_after_ms=retry_after_ms))
                continue
            raise DaemonError(
                response.get("error", "unknown daemon error"),
                code=code, retry_after_ms=retry_after_ms)

    def _poison(self) -> None:
        """Invalidate transport state after a desynchronised reply."""

    # -- liveness / inventory ------------------------------------------- #
    def ping(self) -> dict:
        return self.request("ping")

    def health(self) -> dict:
        return self.request("health")

    def stats(self) -> dict:
        return self.request("stats")

    def targets(self) -> dict:
        return self.request("targets")

    def scenarios(self) -> dict:
        return self.request("scenarios")

    # -- observability --------------------------------------------------- #
    def metrics(self, format: Optional[str] = None,
                history: bool = False,
                history_last: Optional[int] = None) -> dict:
        """Structured metrics snapshot (plus a rendered summary table).

        ``format="prometheus"`` (alias ``"text"``) additionally returns
        the Prometheus text exposition format under the ``"text"`` key.
        ``history=True`` folds in the windowed series rings of every
        running conformance monitor under ``"history"``; ``history_last``
        bounds how many windows come back per series.
        """
        params: dict = {}
        if format is not None:
            params["format"] = format
        if history or history_last is not None:
            params["history"] = True
        if history_last is not None:
            params["history_last"] = history_last
        return self.request("metrics", **params)

    def traces(self, limit: Optional[int] = None) -> dict:
        """The slowest retained traces (span trees), slowest first."""
        params: dict = {}
        if limit is not None:
            params["limit"] = limit
        return self.request("traces", **params)

    # -- analysis ------------------------------------------------------- #
    def query(self, target: str, deltas: Sequence[Delta] = (),
              message_names: Optional[Sequence[str]] = None,
              label: Optional[str] = None,
              with_report: bool = True,
              deadline_ms: Optional[float] = None,
              trace: bool = False,
              trace_id: Optional[str] = None) -> dict:
        """One what-if query; ``deltas`` are typed Delta objects.

        ``deadline_ms`` bounds the daemon-side analysis: past it the
        request fails with a typed ``timeout`` error instead of running
        to the iteration cap.  ``trace=True`` asks the daemon for the
        request's span tree, returned under ``"trace"`` in the payload;
        a client-supplied ``trace_id`` is propagated and echoed back.
        """
        params: dict = {"target": target,
                        "deltas": deltas_to_json(deltas),
                        "with_report": with_report}
        if message_names is not None:
            params["message_names"] = list(message_names)
        if label is not None:
            params["label"] = label
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        if trace:
            params["trace"] = True
        if trace_id is not None:
            params["trace_id"] = trace_id
        return self.request("query", **params)

    def run_scenario(self, target: str, scenario: str,
                     deadline_ms: Optional[float] = None) -> dict:
        """Execute a catalog scenario against a target."""
        params: dict = {"target": target, "scenario": scenario}
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.request("scenario", **params)

    def batch(self, target: str, queries: Sequence[Mapping],
              deadline_ms: Optional[float] = None) -> dict:
        """Fan independent labelled queries out over the daemon's workers.

        Each entry is ``{"deltas": [Delta, ...], "label": ...}``; deltas
        given as objects are encoded here.  A ``deadline_ms`` bounds the
        whole batch; steps that miss it come back as per-step
        ``{"error": ..., "code": ...}`` entries.
        """
        encoded = []
        for step in queries:
            entry = dict(step)
            deltas = entry.get("deltas", ())
            if deltas and isinstance(deltas[0], Delta):
                entry["deltas"] = deltas_to_json(deltas)
            encoded.append(entry)
        params: dict = {"target": target, "queries": encoded}
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.request("batch", **params)

    def analyze_system(self, system: str,
                       shards: Optional[Mapping[str, str]] = None,
                       deadline_ms: Optional[float] = None) -> dict:
        """Run the compositional fixed point of a registered system.

        ``shards`` optionally re-keys the per-bus report sections (pass
        the map a ``register`` call returned, or any aliasing you prefer).
        """
        params: dict = {"system": system}
        if shards is not None:
            params["shards"] = dict(shards)
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.request("analyze_system", **params)

    # -- system-level what-if ------------------------------------------- #
    def register_config(self, name: str, config: BusConfiguration) -> dict:
        """Register a single-bus serving target over the wire."""
        return self.request("register", name=name,
                            config=config_to_json(config))

    def register_system(self, name: str, system) -> dict:
        """Register a system model; the response carries the shard map."""
        return self.request("register", name=name,
                            system=system_to_json(system))

    def register_workload(self, name: str, generator: str,
                          params: Optional[Mapping] = None) -> dict:
        """Register a *named workload*: the daemon expands it server-side.

        Ships ``(generator, params)`` -- kilobytes -- instead of a full
        topology; identical parameters from different clients dedupe by
        fingerprint into the same sessions and store entries.  The
        response matches :meth:`register_system` (shard map) or
        :meth:`register_config` (single target), depending on what the
        generator builds.
        """
        workload: dict = {"generator": generator}
        if params is not None:
            workload["params"] = dict(params)
        return self.request("register", name=name, workload=workload)

    def store_stats(self) -> dict:
        """Persistent-store counters and occupancy (control op)."""
        return self.request("store", action="stats")

    def store_compact(self, max_bytes: Optional[int] = None) -> dict:
        """Evict oldest-read store entries down to ``max_bytes``."""
        params: dict = {"action": "compact"}
        if max_bytes is not None:
            params["max_bytes"] = max_bytes
        return self.request("store", **params)

    def store_clear(self) -> dict:
        """Remove every persistent-store entry."""
        return self.request("store", action="clear")

    def system_query(self, system: str,
                     deltas: Sequence[SystemDelta] = (),
                     paths: Sequence = (),
                     shards: Optional[Mapping[str, str]] = None,
                     label: Optional[str] = None,
                     deadline_ms: Optional[float] = None,
                     trace: bool = False,
                     trace_id: Optional[str] = None) -> dict:
        """One topology what-if query; ``deltas`` are typed SystemDeltas.

        ``paths`` (typed :class:`~repro.core.paths.EndToEndPath` objects)
        are evaluated against the edited topology's fixed point in the
        same request; ``shards`` re-keys the per-bus report sections.
        ``trace``/``trace_id`` behave as in :meth:`query`.
        """
        params: dict = {"system": system,
                        "deltas": system_deltas_to_json(deltas)}
        if paths:
            params["paths"] = paths_to_json(paths)
        if shards is not None:
            params["shards"] = dict(shards)
        if label is not None:
            params["label"] = label
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        if trace:
            params["trace"] = True
        if trace_id is not None:
            params["trace_id"] = trace_id
        return self.request("system_query", **params)

    def system_scenario(self, system: str, scenario: str,
                        deadline_ms: Optional[float] = None) -> dict:
        """Execute a topology catalog scenario against a system."""
        params: dict = {"system": system, "scenario": scenario}
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.request("system_scenario", **params)

    def path_latency(self, system: str, paths: Sequence,
                     deltas: Sequence[SystemDelta] = (),
                     label: Optional[str] = None,
                     deadline_ms: Optional[float] = None) -> dict:
        """End-to-end path latencies under an optional delta sequence."""
        params: dict = {"system": system, "paths": paths_to_json(paths),
                        "deltas": system_deltas_to_json(deltas)}
        if label is not None:
            params["label"] = label
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.request("path_latency", **params)

    # -- conformance monitoring ----------------------------------------- #
    def monitor_start(self, target: str,
                      rules: Sequence = (),
                      window_ms: Optional[float] = None,
                      history_windows: Optional[int] = None,
                      max_arrivals: Optional[int] = None,
                      fit_max_n: Optional[int] = None,
                      deadline_ms: Optional[float] = None) -> dict:
        """Bind a conformance monitor to a registered target.

        ``rules`` are typed :class:`~repro.monitor.AlertRule` objects (or
        equivalent JSON mappings, including the one-line ``expr`` form).
        Starting over an existing monitor replaces it -- fresh windows,
        history and alert state.  Retried only on connect failure: once
        bytes may have reached the daemon, a blind re-send could wipe a
        monitor another request already started feeding.
        """
        params: dict = {"target": target}
        if rules:
            params["rules"] = [
                rule.to_json() if hasattr(rule, "to_json") else dict(rule)
                for rule in rules]
        if window_ms is not None:
            params["window_ms"] = window_ms
        if history_windows is not None:
            params["history_windows"] = history_windows
        if max_arrivals is not None:
            params["max_arrivals"] = max_arrivals
        if fit_max_n is not None:
            params["fit_max_n"] = fit_max_n
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.request("monitor_start", **params)

    def monitor_ingest(self, target: str, frames: Sequence,
                       flush: bool = False,
                       deadline_ms: Optional[float] = None) -> dict:
        """Stream one chunk of observed frames into a running monitor.

        ``frames`` are typed :class:`~repro.monitor.ObservedFrame`
        objects (or equivalent compact arrays); ``flush=True`` closes the
        window in progress after the chunk (end-of-replay bookkeeping).
        Not idempotent -- ingesting advances window state -- so it is
        retried only when the connection failed before any bytes went
        out.
        """
        params: dict = {"target": target,
                        "frames": [
                            frame.to_json() if hasattr(frame, "to_json")
                            else list(frame)
                            for frame in frames]}
        if flush:
            params["flush"] = True
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.request("monitor_ingest", **params)

    def monitor_status(self, target: str) -> dict:
        """Snapshot of one monitor: bounds, counters, overrides, alerts."""
        return self.request("monitor_status", target=target)

    def monitor_alerts(self, target: str,
                       last: Optional[int] = None) -> dict:
        """Recent fired alerts, the active set, and the installed rules."""
        params: dict = {"target": target}
        if last is not None:
            params["last"] = last
        return self.request("monitor_alerts", **params)

    def monitor_stop(self, target: str) -> dict:
        """Detach one monitor; final counters come back in the reply."""
        return self.request("monitor_stop", target=target)

    def shutdown_daemon(self) -> dict:
        """Ask the daemon to stop serving (never retried)."""
        return self.request("shutdown")

    # -- convenience ---------------------------------------------------- #
    @staticmethod
    def worst_case(result: Mapping, name: str) -> Optional[float]:
        """Worst-case response time from a ``query`` result payload."""
        return result["results"][name]["worst_case"]


class InProcessClient(BaseClient):
    """Protocol-faithful client over a daemon in the same process."""

    def __init__(self, daemon: AnalysisDaemon,
                 retry: Optional[RetryPolicy] = None) -> None:
        super().__init__(retry=retry)
        self.daemon = daemon

    def _roundtrip(self, request: dict) -> dict:
        # Encode/decode both directions: what the daemon sees is exactly
        # the object a TCP peer would deliver, typos and all.  The stage
        # timing mirrors the TCP transport so traces look the same over
        # either: decode time flows into the trace up front, encode time
        # is folded in afterwards via ``take_trace``.
        wire = encode_line(request)
        decode_start = time.perf_counter()
        wire_request = decode_line(wire)
        decode_ms = (time.perf_counter() - decode_start) * 1000.0
        response = self.daemon.handle(wire_request, decode_ms=decode_ms)
        encode_start = time.perf_counter()
        data = encode_line(response)
        encode_ms = (time.perf_counter() - encode_start) * 1000.0
        trace = self.daemon.take_trace()
        if trace is not None:
            trace.extend("encode", encode_ms)
            if "trace" in response:
                response["trace"] = trace.to_json()
                data = encode_line(response)
        return decode_line(data)


class TcpClient(BaseClient):
    """Blocking line-protocol client for the TCP front end.

    Connects lazily and reconnects transparently: a request that finds
    the connection dead (daemon restarted, injected drop, ...) re-dials
    before sending, and the retry loop in :class:`BaseClient` turns a
    mid-request drop into a fresh attempt for idempotent ops.
    """

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        super().__init__(retry=retry)
        self._host = host
        self._port = port
        self._timeout = timeout
        self._socket: Optional[socket.socket] = None
        self._reader = None
        self._lock = threading.Lock()
        self.reconnects = 0
        self._connect()  # fail fast on a wrong address

    def _connect(self) -> None:
        self._socket = socket.create_connection(
            (self._host, self._port), timeout=self._timeout)
        self._reader = self._socket.makefile("rb")

    def _drop_connection(self) -> None:
        sock, reader = self._socket, self._reader
        self._socket = None
        self._reader = None
        try:
            if reader is not None:
                reader.close()
        except OSError:
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:
            pass

    def _poison(self) -> None:
        with self._lock:
            self._drop_connection()

    def _roundtrip(self, request: dict) -> dict:
        with self._lock:
            sent = False
            try:
                if self._socket is None:
                    self.reconnects += 1
                    self._connect()
                self._socket.sendall(encode_line(request))
                sent = True
                line = self._reader.readline()
            except (OSError, ValueError) as error:
                self._drop_connection()
                raise ConnectionLost(
                    f"connection to {self._host}:{self._port} failed: "
                    f"{error}", sent=sent) from error
            if not line:
                self._drop_connection()
                raise ConnectionLost("connection closed by daemon",
                                     sent=True)
        return decode_line(line)

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "TcpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Clients of the analysis daemon.

Two transports, one API:

* :class:`InProcessClient` -- wraps an :class:`AnalysisDaemon` directly but
  still round-trips every request and response through the JSON codec, so
  it exercises byte-for-byte the wire protocol (tests and single-process
  deployments);
* :class:`TcpClient` -- a blocking socket client for the
  :mod:`repro.server.tcp` front end; thread-safe (one request in flight at
  a time per client).

Responses are plain decoded protocol dicts -- floats in them bit-match the
kernel's local results (see :mod:`repro.server.protocol`).  A failed
request raises :class:`DaemonError` carrying the daemon's message.
"""

from __future__ import annotations

import socket
import threading
from itertools import count
from typing import Mapping, Optional, Sequence

from repro.server.daemon import AnalysisDaemon
from repro.server.protocol import (
    config_to_json,
    decode_line,
    deltas_to_json,
    encode_line,
    paths_to_json,
    system_deltas_to_json,
    system_to_json,
)
from repro.service.deltas import BusConfiguration, Delta
from repro.whatif.system_deltas import SystemDelta


class DaemonError(RuntimeError):
    """The daemon answered ``ok: false``."""


class BaseClient:
    """Shared typed helpers over the raw ``request`` primitive."""

    def request(self, op: str, **params) -> dict:
        """Send one request; return the ``result`` payload or raise."""
        raise NotImplementedError

    # -- liveness / inventory ------------------------------------------- #
    def ping(self) -> dict:
        return self.request("ping")

    def health(self) -> dict:
        return self.request("health")

    def stats(self) -> dict:
        return self.request("stats")

    def targets(self) -> dict:
        return self.request("targets")

    def scenarios(self) -> dict:
        return self.request("scenarios")

    # -- analysis ------------------------------------------------------- #
    def query(self, target: str, deltas: Sequence[Delta] = (),
              message_names: Optional[Sequence[str]] = None,
              label: Optional[str] = None,
              with_report: bool = True) -> dict:
        """One what-if query; ``deltas`` are typed Delta objects."""
        params: dict = {"target": target,
                        "deltas": deltas_to_json(deltas),
                        "with_report": with_report}
        if message_names is not None:
            params["message_names"] = list(message_names)
        if label is not None:
            params["label"] = label
        return self.request("query", **params)

    def run_scenario(self, target: str, scenario: str) -> dict:
        """Execute a catalog scenario against a target."""
        return self.request("scenario", target=target, scenario=scenario)

    def batch(self, target: str,
              queries: Sequence[Mapping]) -> dict:
        """Fan independent labelled queries out over the daemon's workers.

        Each entry is ``{"deltas": [Delta, ...], "label": ...}``; deltas
        given as objects are encoded here.
        """
        encoded = []
        for step in queries:
            entry = dict(step)
            deltas = entry.get("deltas", ())
            if deltas and isinstance(deltas[0], Delta):
                entry["deltas"] = deltas_to_json(deltas)
            encoded.append(entry)
        return self.request("batch", target=target, queries=encoded)

    def analyze_system(self, system: str,
                       shards: Optional[Mapping[str, str]] = None) -> dict:
        """Run the compositional fixed point of a registered system.

        ``shards`` optionally re-keys the per-bus report sections (pass
        the map a ``register`` call returned, or any aliasing you prefer).
        """
        params: dict = {"system": system}
        if shards is not None:
            params["shards"] = dict(shards)
        return self.request("analyze_system", **params)

    # -- system-level what-if ------------------------------------------- #
    def register_config(self, name: str, config: BusConfiguration) -> dict:
        """Register a single-bus serving target over the wire."""
        return self.request("register", name=name,
                            config=config_to_json(config))

    def register_system(self, name: str, system) -> dict:
        """Register a system model; the response carries the shard map."""
        return self.request("register", name=name,
                            system=system_to_json(system))

    def system_query(self, system: str,
                     deltas: Sequence[SystemDelta] = (),
                     paths: Sequence = (),
                     shards: Optional[Mapping[str, str]] = None,
                     label: Optional[str] = None) -> dict:
        """One topology what-if query; ``deltas`` are typed SystemDeltas.

        ``paths`` (typed :class:`~repro.core.paths.EndToEndPath` objects)
        are evaluated against the edited topology's fixed point in the
        same request; ``shards`` re-keys the per-bus report sections.
        """
        params: dict = {"system": system,
                        "deltas": system_deltas_to_json(deltas)}
        if paths:
            params["paths"] = paths_to_json(paths)
        if shards is not None:
            params["shards"] = dict(shards)
        if label is not None:
            params["label"] = label
        return self.request("system_query", **params)

    def system_scenario(self, system: str, scenario: str) -> dict:
        """Execute a topology catalog scenario against a system."""
        return self.request("system_scenario", system=system,
                            scenario=scenario)

    def path_latency(self, system: str, paths: Sequence,
                     deltas: Sequence[SystemDelta] = (),
                     label: Optional[str] = None) -> dict:
        """End-to-end path latencies under an optional delta sequence."""
        params: dict = {"system": system, "paths": paths_to_json(paths),
                        "deltas": system_deltas_to_json(deltas)}
        if label is not None:
            params["label"] = label
        return self.request("path_latency", **params)

    def shutdown_daemon(self) -> dict:
        """Ask the daemon to stop serving."""
        return self.request("shutdown")

    # -- convenience ---------------------------------------------------- #
    @staticmethod
    def worst_case(result: Mapping, name: str) -> Optional[float]:
        """Worst-case response time from a ``query`` result payload."""
        return result["results"][name]["worst_case"]


class InProcessClient(BaseClient):
    """Protocol-faithful client over a daemon in the same process."""

    def __init__(self, daemon: AnalysisDaemon) -> None:
        self.daemon = daemon
        self._ids = count(1)

    def request(self, op: str, **params) -> dict:
        request = {"op": op, "id": next(self._ids), **params}
        # Encode/decode both directions: what the daemon sees is exactly
        # the object a TCP peer would deliver, typos and all.
        wire_request = decode_line(encode_line(request))
        response = decode_line(encode_line(self.daemon.handle(wire_request)))
        if not response.get("ok"):
            raise DaemonError(response.get("error", "unknown daemon error"))
        return response["result"]


class TcpClient(BaseClient):
    """Blocking line-protocol client for the TCP front end."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0) -> None:
        self._socket = socket.create_connection((host, port),
                                                timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._lock = threading.Lock()
        self._ids = count(1)

    def request(self, op: str, **params) -> dict:
        request = {"op": op, "id": next(self._ids), **params}
        with self._lock:
            self._socket.sendall(encode_line(request))
            line = self._reader.readline()
        if not line:
            raise DaemonError("connection closed by daemon")
        response = decode_line(line)
        if not response.get("ok"):
            raise DaemonError(response.get("error", "unknown daemon error"))
        return response["result"]

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "TcpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Job queue and worker pool of the analysis daemon.

Every request the daemon accepts becomes a :class:`Job` on a FIFO queue; a
fixed pool of worker threads drains the queue and resolves each job's
:class:`~concurrent.futures.Future` -- the dbserver/worker split of
oq-engine scaled down to one process.  Queueing decouples transport from
computation: a slow analysis never blocks accepting (or answering
``health``) and a batch request can fan its steps out across all workers.

Sizing and mode come from :mod:`repro.parallel`: ``REPRO_PARALLEL=serial``
(or a single-core machine) degrades to inline execution -- still through
the same submit/result path, so behaviour is identical and deterministic.
``process`` is treated as ``thread`` here: jobs close over the daemon's
session pool, which is in-process state by design (the kernel caches it
shards are exactly what must be shared, not copied).
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.parallel import available_workers, resolve_mode

#: Default cap on worker threads: analysis is pure Python, so a handful of
#: workers cover overlap between clients without oversubscribing the GIL.
DEFAULT_MAX_WORKERS = 8


@dataclass
class Job:
    """One queued unit of work: a thunk plus the future resolving it."""

    run: Callable[[], object]
    future: Future = field(default_factory=Future)
    label: str = ""

    def execute(self) -> None:
        """Run the thunk and resolve the future (exceptions travel too)."""
        if not self.future.set_running_or_notify_cancel():
            return
        try:
            self.future.set_result(self.run())
        except BaseException as error:  # noqa: BLE001 - delivered to caller
            self.future.set_exception(error)


class JobQueue:
    """FIFO job queue drained by a worker-thread pool.

    ``mode="serial"`` (or an effective serial resolution of ``"auto"`` via
    ``REPRO_PARALLEL`` / core count) executes jobs inline on ``submit`` --
    same API, no threads, deterministic order.
    """

    def __init__(self, workers: Optional[int] = None,
                 mode: str = "auto") -> None:
        resolved = resolve_mode(mode, n_items=2)
        if resolved == "process":
            resolved = "thread"
        self.mode = resolved
        self.workers = 0
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._closed = False
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        if resolved == "thread":
            self.workers = workers or min(available_workers(),
                                          DEFAULT_MAX_WORKERS)
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._drain, name=f"repro-worker-{index}",
                    daemon=True)
                thread.start()
                self._threads.append(thread)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, run: Callable[[], object],
               label: str = "") -> "Future":
        """Queue a thunk; returns the future of its result."""
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is shut down")
            self.submitted += 1
        job = Job(run=run, label=label)
        if not self._threads:
            job.execute()
            with self._lock:
                self.completed += 1
            return job.future
        self._queue.put(job)
        return job.future

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            try:
                job.execute()
            finally:
                with self._lock:
                    self.completed += 1
                self._queue.task_done()

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally wait for queued work to finish."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)

    @property
    def pending(self) -> int:
        """Jobs accepted but not yet completed."""
        with self._lock:
            return self.submitted - self.completed

    def describe(self) -> str:
        return (f"job queue: mode={self.mode}, workers={self.workers}, "
                f"{self.submitted} submitted, {self.completed} completed, "
                f"{self.pending} pending")

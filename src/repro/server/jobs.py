"""Job queue and worker pool of the analysis daemon.

Every request the daemon accepts becomes a :class:`Job` on a FIFO queue; a
fixed pool of worker threads drains the queue and resolves each job's
:class:`~concurrent.futures.Future` -- the dbserver/worker split of
oq-engine scaled down to one process.  Queueing decouples transport from
computation: a slow analysis never blocks accepting (or answering
``health``) and a batch request can fan its steps out across all workers.

Sizing and mode come from :mod:`repro.parallel`: ``REPRO_PARALLEL=serial``
(or a single-core machine) degrades to inline execution -- still through
the same submit/result path, so behaviour is identical and deterministic.
``process`` is treated as ``thread`` here: jobs close over the daemon's
session pool, which is in-process state by design (the kernel caches it
shards are exactly what must be shared, not copied).

Fault tolerance
---------------
The queue is the daemon's backpressure and drain point:

* ``max_pending`` bounds accepted-but-unfinished jobs; beyond it
  :meth:`JobQueue.submit` raises :class:`QueueFullError` (the daemon maps
  it to a typed ``overloaded`` response with a ``retry_after_ms`` hint)
  instead of letting a client flood grow the queue without bound.
* Jobs carry an optional :class:`~repro.cancel.CancelToken`;
  :meth:`JobQueue.shutdown` drains in-flight and queued work for a grace
  window, then cancels the tokens of whatever is still running and
  force-resolves every outstanding future with a typed
  :class:`~repro.cancel.Cancelled` -- a client waiting on a future always
  gets an answer, never a hang.
* Worker threads that survive the drain (a thunk ignoring its cancel
  token) are reported as *stragglers* via :meth:`JobQueue.stats` and
  :meth:`JobQueue.describe` instead of being silently ignored; the
  daemon's ``health`` endpoint flags the pool as degraded.

Submission and shutdown are serialised on one lock (a submit either lands
before the shutdown sentinels or raises -- it can never enqueue a job
behind them, which previously left its future forever unresolved).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.cancel import Cancelled, CancelToken
from repro.parallel import available_workers, resolve_mode

#: Default cap on worker threads: analysis is pure Python, so a handful of
#: workers cover overlap between clients without oversubscribing the GIL.
DEFAULT_MAX_WORKERS = 8

#: Default grace window (seconds) a shutdown waits for in-flight and queued
#: jobs before cancelling the remainder.
DEFAULT_GRACE = 10.0

#: How long shutdown waits for workers to exit *after* cancelling leftover
#: jobs; threads still alive afterwards are reported as stragglers.
_STRAGGLER_JOIN = 2.0


class QueueFullError(RuntimeError):
    """The queue's ``max_pending`` bound rejected a submission.

    ``retry_after_ms`` is a backoff hint for the client (scaled to the
    queue depth); the daemon forwards it in its ``overloaded`` response.
    """

    def __init__(self, limit: int, retry_after_ms: int) -> None:
        super().__init__(
            f"job queue full ({limit} jobs pending); "
            f"retry in {retry_after_ms} ms")
        self.limit = limit
        self.retry_after_ms = retry_after_ms


@dataclass
class Job:
    """One queued unit of work: a thunk plus the future resolving it.

    ``cancel`` is the job's cooperative cancellation token (shared with the
    thunk's fixed-point loops); shutdown fires it to revoke running work.
    """

    run: Callable[[], object]
    future: Future = field(default_factory=Future)
    label: str = ""
    cancel: Optional[CancelToken] = None
    #: ``time.perf_counter()`` at enqueue; workers derive queue wait
    #: (start - enqueue) from it for the ``jobs_wait_ms`` histogram.
    enqueued: float = 0.0

    def execute(self) -> None:
        """Run the thunk and resolve the future (exceptions travel too).

        Tolerates a future that shutdown force-resolved concurrently: the
        late outcome is dropped rather than crashing the worker.
        """
        try:
            if not self.future.set_running_or_notify_cancel():
                return
        except InvalidStateError:
            return
        try:
            result = self.run()
        except BaseException as error:  # noqa: BLE001 - delivered to caller
            self._resolve(error=error)
        else:
            self._resolve(result=result)

    def _resolve(self, result: object = None,
                 error: BaseException | None = None) -> None:
        try:
            if error is not None:
                self.future.set_exception(error)
            else:
                self.future.set_result(result)
        except InvalidStateError:
            pass  # force-resolved by a shutdown that gave up on us


class JobQueue:
    """FIFO job queue drained by a worker-thread pool.

    ``mode="serial"`` (or an effective serial resolution of ``"auto"`` via
    ``REPRO_PARALLEL`` / core count) executes jobs inline on ``submit`` --
    same API, no threads, deterministic order.

    ``max_pending`` bounds accepted-but-unfinished jobs (``None`` =
    unbounded); excess submissions raise :class:`QueueFullError`.
    """

    def __init__(self, workers: Optional[int] = None,
                 mode: str = "auto",
                 max_pending: Optional[int] = None,
                 metrics=None) -> None:
        resolved = resolve_mode(mode, n_items=2)
        if resolved == "process":
            resolved = "thread"
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.mode = resolved
        self.workers = 0
        self.max_pending = max_pending
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._closed = False
        self._lock = threading.Lock()
        self._outstanding: dict[int, Job] = {}
        self._stragglers: tuple[str, ...] = ()
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.cancelled = 0
        # Optional repro.obs.MetricsRegistry; instruments bound once so
        # submit/drain publication is plain inc/set/observe calls.
        self.metrics = metrics
        if metrics is not None:
            self._m_depth = metrics.gauge("jobs_depth")
            self._m_wait = metrics.histogram("jobs_wait_ms")
            self._m_submitted = metrics.counter("jobs_submitted_total")
            self._m_rejected = metrics.counter("jobs_rejected_total")
            self._m_cancelled = metrics.counter("jobs_cancelled_total")
        if resolved == "thread":
            self.workers = workers or min(available_workers(),
                                          DEFAULT_MAX_WORKERS)
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._drain, name=f"repro-worker-{index}",
                    daemon=True)
                thread.start()
                self._threads.append(thread)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, run: Callable[[], object], label: str = "",
               cancel: Optional[CancelToken] = None) -> "Future":
        """Queue a thunk; returns the future of its result.

        Raises :class:`RuntimeError` after shutdown and
        :class:`QueueFullError` beyond ``max_pending``.  The enqueue happens
        under the submission lock, so a job accepted here is guaranteed to
        run (or be drain-resolved) -- it can never slip behind shutdown
        sentinels.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is shut down")
            pending = self.submitted - self.completed
            if self.max_pending is not None and pending >= self.max_pending:
                self.rejected += 1
                if self.metrics is not None:
                    self._m_rejected.inc()
                raise QueueFullError(
                    self.max_pending, retry_after_ms=50 * max(1, pending))
            self.submitted += 1
            job = Job(run=run, label=label, cancel=cancel,
                      enqueued=time.perf_counter())
            if self.metrics is not None:
                self._m_submitted.inc()
                self._m_depth.set(self.submitted - self.completed)
            if self._threads:
                self._outstanding[id(job)] = job
                self._queue.put(job)
                return job.future
        # Serial mode: execute inline, outside the lock (the thunk may be a
        # long analysis and must not serialise health checks).
        if self.metrics is not None:
            self._m_wait.observe(0.0)
        try:
            job.execute()
        finally:
            with self._lock:
                self.completed += 1
                if self.metrics is not None:
                    self._m_depth.set(self.submitted - self.completed)
        return job.future

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            if self.metrics is not None:
                self._m_wait.observe(
                    (time.perf_counter() - job.enqueued) * 1000.0)
            try:
                job.execute()
            finally:
                with self._lock:
                    # A drain may have already claimed (and counted) this
                    # job; completed is incremented exactly once per job.
                    if self._outstanding.pop(id(job), None) is not None:
                        self.completed += 1
                    if self.metrics is not None:
                        self._m_depth.set(self.submitted - self.completed)
                self._queue.task_done()

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True,
                 grace: Optional[float] = None) -> None:
        """Stop accepting jobs and drain the pool.

        With ``wait`` the call blocks while in-flight and queued jobs
        finish, for at most ``grace`` seconds (default
        :data:`DEFAULT_GRACE`); whatever is still outstanding afterwards is
        cancelled -- queued futures are revoked, running jobs get their
        :class:`~repro.cancel.CancelToken` fired with reason ``"draining"``,
        and any future still unresolved after a final join is
        force-resolved with a typed :class:`~repro.cancel.Cancelled`.  No
        future ever stays pending.  Workers that survive all of that are
        recorded as stragglers (see :meth:`stats`).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._threads:
                self._queue.put(None)
        if not self._threads:
            return
        if not wait:
            return
        if grace is None:
            grace = DEFAULT_GRACE
        deadline = time.monotonic() + max(0.0, grace)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._outstanding:
                    break
            time.sleep(0.005)
        with self._lock:
            leftovers = list(self._outstanding.values())
        for job in leftovers:
            # Queued jobs are revoked outright; running ones are asked to
            # stop at their next fixed-point iteration.
            job.future.cancel()
            if job.cancel is not None:
                job.cancel.cancel(reason="draining")
        join_deadline = time.monotonic() + (
            _STRAGGLER_JOIN if leftovers else max(1.0, grace))
        for thread in self._threads:
            remaining = join_deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)
        stuck = tuple(t.name for t in self._threads if t.is_alive())
        with self._lock:
            self._stragglers = stuck
            for job in self._outstanding.values():
                if not job.future.done():
                    job._resolve(error=Cancelled(
                        f"job {job.label or '<unnamed>'} cancelled by "
                        "daemon drain", reason="draining"))
            self.cancelled += len(self._outstanding)
            self.completed += len(self._outstanding)
            if self.metrics is not None and self._outstanding:
                self._m_cancelled.inc(len(self._outstanding))
                self._m_depth.set(self.submitted - self.completed)
            self._outstanding.clear()

    @property
    def pending(self) -> int:
        """Jobs accepted but not yet completed."""
        with self._lock:
            return self.submitted - self.completed

    @property
    def stragglers(self) -> tuple[str, ...]:
        """Worker threads that failed to exit during shutdown."""
        with self._lock:
            return self._stragglers

    @property
    def alive_workers(self) -> int:
        """Worker threads currently alive (== ``workers`` when healthy)."""
        return sum(1 for t in self._threads if t.is_alive())

    @property
    def healthy(self) -> bool:
        """Whether the pool has its full complement and no stragglers."""
        if self._stragglers:
            return False
        if not self._threads:
            return True
        return self._closed or self.alive_workers == self.workers

    def stats(self) -> Mapping[str, object]:
        """Counter snapshot surfaced through the daemon's ``stats`` op."""
        with self._lock:
            return {
                "mode": self.mode,
                "workers": self.workers,
                "alive_workers": sum(
                    1 for t in self._threads if t.is_alive()),
                "submitted": self.submitted,
                "completed": self.completed,
                "pending": self.submitted - self.completed,
                "rejected": self.rejected,
                "cancelled": self.cancelled,
                "max_pending": self.max_pending,
                "stragglers": list(self._stragglers),
            }

    def describe(self) -> str:
        base = (f"job queue: mode={self.mode}, workers={self.workers}, "
                f"{self.submitted} submitted, {self.completed} completed, "
                f"{self.pending} pending, {self.rejected} rejected")
        stragglers = self.stragglers
        if stragglers:
            base += f", STRAGGLERS={','.join(stragglers)}"
        return base

"""Analysis daemon: a long-running multi-client query server.

The server package turns the what-if service into genuine multi-user
infrastructure -- the oq-engine pattern (calculation engine behind a
daemon with a job queue, worker pool and persistent state) applied to the
PR 3 session/catalog layer:

* :mod:`repro.server.protocol` -- the line-delimited JSON wire format
  (typed deltas, event/error models, results; floats round-trip exactly);
* :mod:`repro.server.pool` -- the sharded, fingerprint-keyed
  :class:`SessionPool` (one session per bus segment, LRU-bounded);
* :mod:`repro.server.jobs` -- the :class:`JobQueue` worker pool layered on
  :mod:`repro.parallel`;
* :mod:`repro.server.daemon` -- :class:`AnalysisDaemon`, the
  transport-independent request handler (query / scenario / batch /
  analyze_system / stats / health endpoints);
* :mod:`repro.server.tcp` -- the threading TCP front end;
* :mod:`repro.server.client` -- :class:`InProcessClient` and
  :class:`TcpClient`, one API over both transports.

``python -m repro.server`` starts a daemon serving the case-study
workloads (see :mod:`repro.server.__main__`).
"""

from repro.server.client import (
    BaseClient,
    DaemonError,
    InProcessClient,
    TcpClient,
)
from repro.server.daemon import AnalysisDaemon
from repro.server.jobs import Job, JobQueue
from repro.server.pool import SessionPool, UnknownTargetError
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    config_from_json,
    config_to_json,
    delta_from_json,
    delta_to_json,
    deltas_from_json,
    deltas_to_json,
    event_model_from_json,
    event_model_to_json,
    error_model_from_json,
    error_model_to_json,
    path_from_json,
    path_to_json,
    system_delta_from_json,
    system_delta_to_json,
    system_from_json,
    system_to_json,
)
from repro.server.tcp import DaemonServer, start_server

__all__ = [
    "AnalysisDaemon",
    "BaseClient",
    "DaemonError",
    "DaemonServer",
    "InProcessClient",
    "Job",
    "JobQueue",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SessionPool",
    "TcpClient",
    "UnknownTargetError",
    "config_from_json",
    "config_to_json",
    "delta_from_json",
    "delta_to_json",
    "deltas_from_json",
    "deltas_to_json",
    "error_model_from_json",
    "error_model_to_json",
    "event_model_from_json",
    "event_model_to_json",
    "path_from_json",
    "path_to_json",
    "start_server",
    "system_delta_from_json",
    "system_delta_to_json",
    "system_from_json",
    "system_to_json",
]

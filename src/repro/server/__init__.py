"""Analysis daemon: a long-running multi-client query server.

The server package turns the what-if service into genuine multi-user
infrastructure -- the oq-engine pattern (calculation engine behind a
daemon with a job queue, worker pool and persistent state) applied to the
PR 3 session/catalog layer:

* :mod:`repro.server.protocol` -- the line-delimited JSON wire format
  (typed deltas, event/error models, results; floats round-trip exactly);
* :mod:`repro.server.pool` -- the sharded, fingerprint-keyed
  :class:`SessionPool` (one session per bus segment, LRU-bounded);
* :mod:`repro.server.jobs` -- the :class:`JobQueue` worker pool layered on
  :mod:`repro.parallel`;
* :mod:`repro.server.daemon` -- :class:`AnalysisDaemon`, the
  transport-independent request handler (query / scenario / batch /
  analyze_system / stats / health / metrics / traces endpoints);
* :mod:`repro.server.tcp` -- the threading TCP front end;
* :mod:`repro.server.client` -- :class:`InProcessClient` and
  :class:`TcpClient`, one API over both transports, with shared
  retry/backoff (:class:`RetryPolicy`) and typed error codes;
* :mod:`repro.server.faults` -- deterministic fault injection
  (``REPRO_FAULTS``) and :mod:`repro.server.harness` -- the restartable
  test harness built on it.

``python -m repro.server`` starts a daemon serving the case-study
workloads (see :mod:`repro.server.__main__`).
"""

from repro.server.client import (
    BaseClient,
    ConnectionLost,
    DaemonError,
    InProcessClient,
    RetryPolicy,
    TcpClient,
)
from repro.server.daemon import AnalysisDaemon
from repro.server.faults import FaultInjector, FaultSpecError
from repro.server.harness import ServerHarness
from repro.server.jobs import Job, JobQueue, QueueFullError
from repro.server.pool import SessionPool, UnknownTargetError
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    config_from_json,
    config_to_json,
    delta_from_json,
    delta_to_json,
    deltas_from_json,
    deltas_to_json,
    event_model_from_json,
    event_model_to_json,
    error_model_from_json,
    error_model_to_json,
    path_from_json,
    path_to_json,
    system_delta_from_json,
    system_delta_to_json,
    system_from_json,
    system_to_json,
)
from repro.server.tcp import DaemonServer, start_server

__all__ = [
    "AnalysisDaemon",
    "BaseClient",
    "ConnectionLost",
    "DaemonError",
    "DaemonServer",
    "FaultInjector",
    "FaultSpecError",
    "InProcessClient",
    "Job",
    "JobQueue",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFullError",
    "RetryPolicy",
    "ServerHarness",
    "SessionPool",
    "TcpClient",
    "UnknownTargetError",
    "config_from_json",
    "config_to_json",
    "delta_from_json",
    "delta_to_json",
    "deltas_from_json",
    "deltas_to_json",
    "error_model_from_json",
    "error_model_to_json",
    "event_model_from_json",
    "event_model_to_json",
    "path_from_json",
    "path_to_json",
    "start_server",
    "system_delta_from_json",
    "system_delta_to_json",
    "system_from_json",
    "system_to_json",
]

"""Line-delimited JSON protocol of the analysis daemon.

One request or response is one JSON object on one line (``\\n`` terminated,
UTF-8) -- the framing oq-engine's dbserver and most job-queue daemons use:
trivially debuggable with ``nc``, trivially proxied, and streamable over any
byte pipe.  The same codec backs the TCP transport and the in-process
client, so a request tested in-process is byte-for-byte the request that
goes over a socket.

Floats survive the protocol **exactly**: ``json`` serialises them via
``repr``, which round-trips every finite IEEE-754 double, so a response-time
read from the daemon bit-matches the kernel's local result.  The tests rely
on this.

Requests are ``{"op": <name>, ...params}``; responses are
``{"ok": true, "result": ...}`` or ``{"ok": false, "error": <message>}``.
An optional ``"id"`` field is echoed verbatim so pipelining clients can
match responses to requests.

Typed values (deltas, event models, error models, CAN messages) are tagged
objects, e.g. ``{"delta": "jitter", "message_name": "M12", "jitter": 0.4}``.
Unknown tags raise :class:`ProtocolError` -- the daemon never guesses.
"""

from __future__ import annotations

import json
from typing import IO, Mapping, Optional, Sequence

from repro.can.frame import CanFrameFormat
from repro.can.message import CanMessage
from repro.errors.models import (
    BurstErrorModel,
    CompositeErrorModel,
    ErrorModel,
    NoErrors,
    SporadicErrorModel,
)
from repro.events.model import (
    EventModel,
    PeriodicEventModel,
    PeriodicWithBurst,
    PeriodicWithJitter,
    SporadicEventModel,
)
from repro.service.deltas import (
    AddMessageDelta,
    BusDelta,
    DeadlinePolicyDelta,
    Delta,
    ErrorModelDelta,
    EventModelDelta,
    JitterDelta,
    PriorityDelta,
    RemoveMessageDelta,
)

#: Protocol revision, reported by the ``health`` endpoint; bump on any
#: incompatible wire change.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A malformed or unsupported protocol object."""


# --------------------------------------------------------------------------- #
# Event models
# --------------------------------------------------------------------------- #
_EVENT_MODEL_CLASSES = {
    "event": EventModel,
    "periodic": PeriodicEventModel,
    "periodic-jitter": PeriodicWithJitter,
    "periodic-burst": PeriodicWithBurst,
    "sporadic": SporadicEventModel,
}
_EVENT_MODEL_TAGS = {cls: tag for tag, cls in _EVENT_MODEL_CLASSES.items()}


def event_model_to_json(model: EventModel) -> dict:
    """Tagged JSON object for a standard event model."""
    tag = _EVENT_MODEL_TAGS.get(type(model))
    if tag is None:
        raise ProtocolError(
            f"cannot serialise event model type {type(model).__name__}")
    return {"model": tag, "period": model.period, "jitter": model.jitter,
            "min_distance": model.min_distance}


def event_model_from_json(data: Mapping) -> EventModel:
    """Inverse of :func:`event_model_to_json`."""
    cls = _EVENT_MODEL_CLASSES.get(data.get("model"))
    if cls is None:
        raise ProtocolError(f"unknown event model tag {data.get('model')!r}")
    return cls(period=float(data["period"]),
               jitter=float(data.get("jitter", 0.0)),
               min_distance=float(data.get("min_distance", 0.0)))


# --------------------------------------------------------------------------- #
# Error models
# --------------------------------------------------------------------------- #
def error_model_to_json(model: ErrorModel) -> dict:
    """Tagged JSON object for a bus-error model."""
    if isinstance(model, NoErrors):
        return {"errors": "none"}
    if isinstance(model, SporadicErrorModel):
        return {"errors": "sporadic",
                "min_interarrival": model.min_interarrival}
    if isinstance(model, BurstErrorModel):
        return {"errors": "burst", "min_interarrival": model.min_interarrival,
                "burst_length": model.burst_length,
                "intra_burst_gap": model.intra_burst_gap}
    if isinstance(model, CompositeErrorModel):
        return {"errors": "composite",
                "components": [error_model_to_json(c)
                               for c in model.components]}
    if type(model) is ErrorModel:
        return {"errors": "none"}
    raise ProtocolError(
        f"cannot serialise error model type {type(model).__name__}")


def error_model_from_json(data: Mapping) -> ErrorModel:
    """Inverse of :func:`error_model_to_json`."""
    kind = data.get("errors")
    if kind == "none":
        return NoErrors()
    if kind == "sporadic":
        return SporadicErrorModel(
            min_interarrival=float(data["min_interarrival"]))
    if kind == "burst":
        return BurstErrorModel(
            min_interarrival=float(data["min_interarrival"]),
            burst_length=int(data["burst_length"]),
            intra_burst_gap=float(data["intra_burst_gap"]))
    if kind == "composite":
        return CompositeErrorModel(components=tuple(
            error_model_from_json(c) for c in data["components"]))
    raise ProtocolError(f"unknown error model tag {kind!r}")


# --------------------------------------------------------------------------- #
# CAN messages
# --------------------------------------------------------------------------- #
def can_message_to_json(message: CanMessage) -> dict:
    """JSON object for a K-Matrix row (timing-relevant fields only)."""
    data = {
        "name": message.name,
        "can_id": message.can_id,
        "dlc": message.dlc,
        "period": message.period,
        "sender": message.sender,
        "receivers": list(message.receivers),
    }
    if message.jitter is not None:
        data["jitter"] = message.jitter
    if message.deadline is not None:
        data["deadline"] = message.deadline
    if message.min_distance:
        data["min_distance"] = message.min_distance
    if message.frame_format is not CanFrameFormat.STANDARD:
        data["frame_format"] = message.frame_format.value
    return data


def can_message_from_json(data: Mapping) -> CanMessage:
    """Inverse of :func:`can_message_to_json`."""
    try:
        return CanMessage(
            name=str(data["name"]),
            can_id=int(data["can_id"]),
            dlc=int(data["dlc"]),
            period=float(data["period"]),
            sender=str(data["sender"]),
            receivers=tuple(str(r) for r in data.get("receivers", ())),
            jitter=(float(data["jitter"]) if "jitter" in data else None),
            deadline=(float(data["deadline"])
                      if "deadline" in data else None),
            min_distance=float(data.get("min_distance", 0.0)),
            frame_format=CanFrameFormat(
                data.get("frame_format", CanFrameFormat.STANDARD.value)),
        )
    except KeyError as missing:
        raise ProtocolError(f"CAN message object lacks {missing}") from None


# --------------------------------------------------------------------------- #
# Deltas
# --------------------------------------------------------------------------- #
def delta_to_json(delta: Delta) -> dict:
    """Tagged JSON object for any typed what-if delta."""
    if isinstance(delta, JitterDelta):
        data = {"delta": "jitter"}
        if delta.message_name is not None:
            data["message_name"] = delta.message_name
        if delta.jitter is not None:
            data["jitter"] = delta.jitter
        if delta.fraction is not None:
            data["fraction"] = delta.fraction
        return data
    if isinstance(delta, ErrorModelDelta):
        return {"delta": "error-model",
                "error_model": error_model_to_json(delta.error_model)}
    if isinstance(delta, PriorityDelta):
        if delta.swap is not None:
            return {"delta": "priority", "swap": list(delta.swap)}
        if delta.order is not None:
            return {"delta": "priority", "order": list(delta.order)}
        return {"delta": "priority",
                "id_by_name": {name: can_id
                               for name, can_id in delta.id_by_name}}
    if isinstance(delta, EventModelDelta):
        return {"delta": "event-models",
                "models": {name: event_model_to_json(model)
                           for name, model in delta.models},
                "replace_all": delta.replace_all}
    if isinstance(delta, AddMessageDelta):
        return {"delta": "add-message",
                "message": can_message_to_json(delta.message)}
    if isinstance(delta, RemoveMessageDelta):
        return {"delta": "remove-message",
                "message_name": delta.message_name}
    if isinstance(delta, BusDelta):
        data = {"delta": "bus"}
        if delta.bit_rate_bps is not None:
            data["bit_rate_bps"] = delta.bit_rate_bps
        if delta.bit_stuffing is not None:
            data["bit_stuffing"] = delta.bit_stuffing
        return data
    if isinstance(delta, DeadlinePolicyDelta):
        return {"delta": "deadline-policy", "policy": delta.policy}
    raise ProtocolError(
        f"cannot serialise delta type {type(delta).__name__}")


def delta_from_json(data: Mapping) -> Delta:
    """Inverse of :func:`delta_to_json`."""
    kind = data.get("delta")
    if kind == "jitter":
        return JitterDelta(
            message_name=data.get("message_name"),
            jitter=(float(data["jitter"]) if "jitter" in data else None),
            fraction=(float(data["fraction"])
                      if "fraction" in data else None))
    if kind == "error-model":
        return ErrorModelDelta(error_model_from_json(data["error_model"]))
    if kind == "priority":
        if "swap" in data:
            first, second = data["swap"]
            return PriorityDelta(swap=(str(first), str(second)))
        if "order" in data:
            return PriorityDelta(order=tuple(str(n) for n in data["order"]))
        if "id_by_name" in data:
            return PriorityDelta.from_mapping(
                {str(n): int(i) for n, i in data["id_by_name"].items()})
        raise ProtocolError("priority delta needs swap=, order= or "
                            "id_by_name=")
    if kind == "event-models":
        return EventModelDelta.from_mapping(
            {str(name): event_model_from_json(model)
             for name, model in data.get("models", {}).items()},
            replace_all=bool(data.get("replace_all", False)))
    if kind == "add-message":
        return AddMessageDelta(can_message_from_json(data["message"]))
    if kind == "remove-message":
        return RemoveMessageDelta(str(data["message_name"]))
    if kind == "bus":
        return BusDelta(
            bit_rate_bps=(float(data["bit_rate_bps"])
                          if "bit_rate_bps" in data else None),
            bit_stuffing=(bool(data["bit_stuffing"])
                          if "bit_stuffing" in data else None))
    if kind == "deadline-policy":
        return DeadlinePolicyDelta(str(data["policy"]))
    raise ProtocolError(f"unknown delta tag {kind!r}")


def deltas_from_json(items: Sequence[Mapping]) -> tuple[Delta, ...]:
    """Decode a request's delta list."""
    return tuple(delta_from_json(item) for item in items)


def deltas_to_json(deltas: Sequence[Delta]) -> list[dict]:
    """Encode a delta list for a request."""
    return [delta_to_json(delta) for delta in deltas]


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
def result_to_json(result) -> dict:
    """JSON object for one :class:`MessageResponseTime`."""
    return {
        "name": result.name,
        "can_id": result.can_id,
        "worst_case": result.worst_case if result.bounded else None,
        "best_case": result.best_case,
        "transmission_time": result.transmission_time,
        "blocking": result.blocking,
        "jitter": result.jitter,
        "busy_period": result.busy_period,
        "instances_analyzed": result.instances_analyzed,
        "bounded": result.bounded,
    }


def _finite(value: float) -> Optional[float]:
    """Non-finite floats become ``None`` (JSON has no inf/nan)."""
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


def report_to_json(report) -> Optional[dict]:
    """JSON summary of a :class:`SchedulabilityReport` (``None`` passthrough)."""
    if report is None:
        return None
    return {
        "all_deadlines_met": report.all_deadlines_met,
        "missed": sorted(v.name for v in report.missed),
        "loss_fraction": report.loss_fraction,
        "worst_normalized_slack": _finite(report.worst_normalized_slack),
        "utilization": report.utilization,
        "deadline_policy": report.deadline_policy,
    }


def query_result_to_json(result) -> dict:
    """JSON object for a :class:`repro.service.session.QueryResult`."""
    return {
        "label": result.label,
        "fingerprint": result.fingerprint,
        "results": {name: result_to_json(value)
                    for name, value in result.results.items()},
        "report": report_to_json(result.report),
        "stats": {
            "total": result.stats.total,
            "reused": result.stats.reused,
            "warm_started": result.stats.warm_started,
            "cold": result.stats.cold,
            "cache_hit": result.stats.cache_hit,
        },
    }


def session_stats_to_json(stats) -> dict:
    """JSON object for a :class:`repro.service.session.SessionStats`."""
    return {
        "name": stats.name,
        "cached_configs": stats.cached_configs,
        "queries": stats.queries,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "evictions": stats.evictions,
        "reused": stats.reused,
        "warm_started": stats.warm_started,
        "cold": stats.cold,
    }


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def encode_line(obj: Mapping) -> bytes:
    """One protocol object as one newline-terminated UTF-8 line."""
    return json.dumps(obj, separators=(",", ":"),
                      allow_nan=False).encode("utf-8") + b"\n"


def decode_line(line: "bytes | str") -> dict:
    """Inverse of :func:`encode_line` (accepts str for convenience)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"malformed protocol line: {error}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("protocol line must encode a JSON object")
    return obj


def write_message(stream: IO[bytes], obj: Mapping) -> None:
    """Write one protocol object to a binary stream and flush."""
    stream.write(encode_line(obj))
    stream.flush()


def read_message(stream: IO[bytes]) -> Optional[dict]:
    """Read one protocol object; ``None`` on a cleanly closed stream."""
    line = stream.readline()
    if not line:
        return None
    return decode_line(line)

"""Line-delimited JSON protocol of the analysis daemon.

One request or response is one JSON object on one line (``\\n`` terminated,
UTF-8) -- the framing oq-engine's dbserver and most job-queue daemons use:
trivially debuggable with ``nc``, trivially proxied, and streamable over any
byte pipe.  The same codec backs the TCP transport and the in-process
client, so a request tested in-process is byte-for-byte the request that
goes over a socket.

Floats survive the protocol **exactly**: ``json`` serialises them via
``repr``, which round-trips every finite IEEE-754 double, so a response-time
read from the daemon bit-matches the kernel's local result.  The tests rely
on this.

Requests are ``{"op": <name>, ...params}``; responses are
``{"ok": true, "result": ...}`` or ``{"ok": false, "error": <message>,
"code": <error code>}``.  An optional ``"id"`` field is echoed verbatim so
pipelining clients can match responses to requests -- and clients *verify*
the echo: a response whose ``id`` does not match the outstanding request is
a protocol violation (a desynchronised connection), never silently
accepted.  Every request additionally accepts an optional ``deadline_ms``
(float, milliseconds): the daemon arms a
:class:`~repro.cancel.CancelToken` with it and aborts the request's
fixed-point loops when it expires.

Error taxonomy
--------------
Failed responses carry a machine-readable ``code`` so clients can decide
to retry, back off, or give up without parsing prose:

``timeout``
    The request's ``deadline_ms`` expired mid-analysis (the typed outcome
    of a divergent or oversized fixed point).  Safe to retry with a larger
    deadline; the partial work left no state behind.
``overloaded``
    Admission control rejected the request -- the job queue or the
    daemon's in-flight bound is full.  The response carries
    ``retry_after_ms``, a backoff hint scaled to the queue depth.  Always
    safe to retry: the request was never executed.
``draining``
    The daemon is shutting down (or drained this request mid-flight
    after its grace window).  Not retryable on the same connection;
    clients should fail over.
``unknown_target``
    The named target/system is not registered (a typo, or a registration
    raced a query).
``protocol``
    Malformed protocol object (unknown tags, missing payloads, shard maps
    naming unknown buses).
``invalid``
    Structurally valid protocol but semantically bad parameters (unknown
    message names, negative periods, type-malformed values).
``internal``
    Unexpected server-side failure; the connection stays usable.

Retry guidance: ``overloaded`` is retryable for *any* op (nothing ran);
``timeout``/``internal`` are retryable for read-only queries, which are
idempotent by construction (registration is the only mutating op, and even
it is idempotent for identical payloads).

Typed values (deltas, event models, error models, CAN messages) are tagged
objects, e.g. ``{"delta": "jitter", "message_name": "M12", "jitter": 0.4}``.
Unknown tags raise :class:`ProtocolError` -- the daemon never guesses.
"""

from __future__ import annotations

import json
from typing import IO, Mapping, Optional, Sequence

from repro.can.bus import CanBus
from repro.can.controller import CanControllerType, ControllerModel
from repro.can.frame import CanFrameFormat
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.core.paths import EndToEndPath, PathLatency
from repro.core.system import BusSegment, SystemModel
from repro.ecu.task import (
    EcuModel,
    OsekOverheads,
    Task,
    TaskKind,
    TimeTable,
    TimeTableEntry,
)
from repro.gateway.model import ForwardingPolicy, GatewayModel, GatewayRoute
from repro.errors.models import (
    BurstErrorModel,
    CompositeErrorModel,
    ErrorModel,
    NoErrors,
    SporadicErrorModel,
)
from repro.events.model import (
    EventModel,
    PeriodicEventModel,
    PeriodicWithBurst,
    PeriodicWithJitter,
    SporadicEventModel,
)
from repro.monitor.rules import AlertRule
from repro.monitor.stream import ObservedFrame
from repro.service.deltas import (
    AddMessageDelta,
    BusConfiguration,
    BusDelta,
    DeadlinePolicyDelta,
    Delta,
    ErrorModelDelta,
    EventModelDelta,
    JitterDelta,
    PriorityDelta,
    RemoveMessageDelta,
)
from repro.whatif.system_deltas import (
    AddGatewayRouteDelta,
    BusSpeedDelta,
    EcuTaskDelta,
    GatewayConfigDelta,
    MoveMessageDelta,
    RemoveGatewayRouteDelta,
    SegmentConfigDelta,
    SystemDelta,
)

#: Protocol revision, reported by the ``health`` endpoint; bump on any
#: incompatible wire change.  Version 2 added the system-level layer:
#: ``register``, ``system_query``, ``system_scenario`` and ``path_latency``
#: requests, with full topology (system model), system-delta and
#: end-to-end-path codecs.  Version 3 added the fault-tolerance layer:
#: ``deadline_ms`` on every request, typed error ``code`` fields (see the
#: module docstring's taxonomy), ``retry_after_ms`` backoff hints on
#: ``overloaded`` rejections, and queue/drain observability in
#: ``health``/``stats``.  Version 4 added the observability layer: every
#: request accepts ``trace: true`` (inline span tree in the response)
#: and an optional client-supplied ``trace_id`` (echoed back), plus the
#: ``metrics`` (structured registry snapshot, optional Prometheus text
#: exposition) and ``traces`` (slowest retained traces) control ops and
#: metrics-derived ``signals``/``causes`` in ``health``.  Version 5 added
#: the persistence layer: the ``store`` control op (``action``:
#: ``stats``/``compact``/``clear``) over the daemon's disk-backed result
#: store, and a third ``register`` payload -- ``workload``: ``{"generator":
#: <name>, "params": {...}}`` -- that the daemon expands server-side via
#: the named workload registry (identical parameters dedupe by fingerprint
#: into the same sessions and store entries, so clients ship kilobytes of
#: parameters instead of full topologies).  Version 6 added the conformance
#: monitoring layer: the ``monitor_start`` / ``monitor_ingest`` /
#: ``monitor_status`` / ``monitor_alerts`` / ``monitor_stop`` ops (observed
#: frame streams replayed in chunks against a registered target's analytic
#: bounds, with declarative alert rules), compact frame arrays
#: (``[message, queued_at, finished_at, success, attempt]``), alert-rule
#: objects (structured fields or one-line ``expr`` syntax), and a
#: ``history`` parameter on ``metrics`` returning the last-N-window
#: time-series of the monitor's windowed series.
PROTOCOL_VERSION = 6

#: The machine-readable error codes of the taxonomy documented above.
ERROR_CODES = ("timeout", "overloaded", "draining", "unknown_target",
               "protocol", "invalid", "internal")


class ProtocolError(ValueError):
    """A malformed or unsupported protocol object."""


def error_response(message: str, code: str = "internal",
                   request_id=None,
                   retry_after_ms: Optional[int] = None) -> dict:
    """Build a failed response dict carrying the typed error ``code``.

    ``retry_after_ms`` (for ``overloaded`` rejections) tells clients how
    long to back off before retrying.
    """
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    response: dict = {"ok": False, "error": message, "code": code}
    if retry_after_ms is not None:
        response["retry_after_ms"] = int(retry_after_ms)
    if request_id is not None:
        response["id"] = request_id
    return response


# --------------------------------------------------------------------------- #
# Event models
# --------------------------------------------------------------------------- #
_EVENT_MODEL_CLASSES = {
    "event": EventModel,
    "periodic": PeriodicEventModel,
    "periodic-jitter": PeriodicWithJitter,
    "periodic-burst": PeriodicWithBurst,
    "sporadic": SporadicEventModel,
}
_EVENT_MODEL_TAGS = {cls: tag for tag, cls in _EVENT_MODEL_CLASSES.items()}


def event_model_to_json(model: EventModel) -> dict:
    """Tagged JSON object for a standard event model."""
    tag = _EVENT_MODEL_TAGS.get(type(model))
    if tag is None:
        raise ProtocolError(
            f"cannot serialise event model type {type(model).__name__}")
    return {"model": tag, "period": model.period, "jitter": model.jitter,
            "min_distance": model.min_distance}


def event_model_from_json(data: Mapping) -> EventModel:
    """Inverse of :func:`event_model_to_json`."""
    cls = _EVENT_MODEL_CLASSES.get(data.get("model"))
    if cls is None:
        raise ProtocolError(f"unknown event model tag {data.get('model')!r}")
    return cls(period=float(data["period"]),
               jitter=float(data.get("jitter", 0.0)),
               min_distance=float(data.get("min_distance", 0.0)))


# --------------------------------------------------------------------------- #
# Error models
# --------------------------------------------------------------------------- #
def error_model_to_json(model: ErrorModel) -> dict:
    """Tagged JSON object for a bus-error model."""
    if isinstance(model, NoErrors):
        return {"errors": "none"}
    if isinstance(model, SporadicErrorModel):
        return {"errors": "sporadic",
                "min_interarrival": model.min_interarrival}
    if isinstance(model, BurstErrorModel):
        return {"errors": "burst", "min_interarrival": model.min_interarrival,
                "burst_length": model.burst_length,
                "intra_burst_gap": model.intra_burst_gap}
    if isinstance(model, CompositeErrorModel):
        return {"errors": "composite",
                "components": [error_model_to_json(c)
                               for c in model.components]}
    if type(model) is ErrorModel:
        return {"errors": "none"}
    raise ProtocolError(
        f"cannot serialise error model type {type(model).__name__}")


def error_model_from_json(data: Mapping) -> ErrorModel:
    """Inverse of :func:`error_model_to_json`."""
    kind = data.get("errors")
    if kind == "none":
        return NoErrors()
    if kind == "sporadic":
        return SporadicErrorModel(
            min_interarrival=float(data["min_interarrival"]))
    if kind == "burst":
        return BurstErrorModel(
            min_interarrival=float(data["min_interarrival"]),
            burst_length=int(data["burst_length"]),
            intra_burst_gap=float(data["intra_burst_gap"]))
    if kind == "composite":
        return CompositeErrorModel(components=tuple(
            error_model_from_json(c) for c in data["components"]))
    raise ProtocolError(f"unknown error model tag {kind!r}")


# --------------------------------------------------------------------------- #
# CAN messages
# --------------------------------------------------------------------------- #
def can_message_to_json(message: CanMessage) -> dict:
    """JSON object for a K-Matrix row (timing-relevant fields only)."""
    data = {
        "name": message.name,
        "can_id": message.can_id,
        "dlc": message.dlc,
        "period": message.period,
        "sender": message.sender,
        "receivers": list(message.receivers),
    }
    if message.jitter is not None:
        data["jitter"] = message.jitter
    if message.deadline is not None:
        data["deadline"] = message.deadline
    if message.min_distance:
        data["min_distance"] = message.min_distance
    if message.frame_format is not CanFrameFormat.STANDARD:
        data["frame_format"] = message.frame_format.value
    return data


def can_message_from_json(data: Mapping) -> CanMessage:
    """Inverse of :func:`can_message_to_json`."""
    try:
        return CanMessage(
            name=str(data["name"]),
            can_id=int(data["can_id"]),
            dlc=int(data["dlc"]),
            period=float(data["period"]),
            sender=str(data["sender"]),
            receivers=tuple(str(r) for r in data.get("receivers", ())),
            jitter=(float(data["jitter"]) if "jitter" in data else None),
            deadline=(float(data["deadline"])
                      if "deadline" in data else None),
            min_distance=float(data.get("min_distance", 0.0)),
            frame_format=CanFrameFormat(
                data.get("frame_format", CanFrameFormat.STANDARD.value)),
        )
    except KeyError as missing:
        raise ProtocolError(f"CAN message object lacks {missing}") from None


# --------------------------------------------------------------------------- #
# Deltas
# --------------------------------------------------------------------------- #
def delta_to_json(delta: Delta) -> dict:
    """Tagged JSON object for any typed what-if delta."""
    if isinstance(delta, JitterDelta):
        data = {"delta": "jitter"}
        if delta.message_name is not None:
            data["message_name"] = delta.message_name
        if delta.jitter is not None:
            data["jitter"] = delta.jitter
        if delta.fraction is not None:
            data["fraction"] = delta.fraction
        return data
    if isinstance(delta, ErrorModelDelta):
        return {"delta": "error-model",
                "error_model": error_model_to_json(delta.error_model)}
    if isinstance(delta, PriorityDelta):
        if delta.swap is not None:
            return {"delta": "priority", "swap": list(delta.swap)}
        if delta.order is not None:
            return {"delta": "priority", "order": list(delta.order)}
        return {"delta": "priority",
                "id_by_name": {name: can_id
                               for name, can_id in delta.id_by_name}}
    if isinstance(delta, EventModelDelta):
        return {"delta": "event-models",
                "models": {name: event_model_to_json(model)
                           for name, model in delta.models},
                "replace_all": delta.replace_all}
    if isinstance(delta, AddMessageDelta):
        return {"delta": "add-message",
                "message": can_message_to_json(delta.message)}
    if isinstance(delta, RemoveMessageDelta):
        return {"delta": "remove-message",
                "message_name": delta.message_name}
    if isinstance(delta, BusDelta):
        data = {"delta": "bus"}
        if delta.bit_rate_bps is not None:
            data["bit_rate_bps"] = delta.bit_rate_bps
        if delta.bit_stuffing is not None:
            data["bit_stuffing"] = delta.bit_stuffing
        return data
    if isinstance(delta, DeadlinePolicyDelta):
        return {"delta": "deadline-policy", "policy": delta.policy}
    raise ProtocolError(
        f"cannot serialise delta type {type(delta).__name__}")


def delta_from_json(data: Mapping) -> Delta:
    """Inverse of :func:`delta_to_json`."""
    kind = data.get("delta")
    if kind == "jitter":
        return JitterDelta(
            message_name=data.get("message_name"),
            jitter=(float(data["jitter"]) if "jitter" in data else None),
            fraction=(float(data["fraction"])
                      if "fraction" in data else None))
    if kind == "error-model":
        return ErrorModelDelta(error_model_from_json(data["error_model"]))
    if kind == "priority":
        if "swap" in data:
            first, second = data["swap"]
            return PriorityDelta(swap=(str(first), str(second)))
        if "order" in data:
            return PriorityDelta(order=tuple(str(n) for n in data["order"]))
        if "id_by_name" in data:
            return PriorityDelta.from_mapping(
                {str(n): int(i) for n, i in data["id_by_name"].items()})
        raise ProtocolError("priority delta needs swap=, order= or "
                            "id_by_name=")
    if kind == "event-models":
        return EventModelDelta.from_mapping(
            {str(name): event_model_from_json(model)
             for name, model in data.get("models", {}).items()},
            replace_all=bool(data.get("replace_all", False)))
    if kind == "add-message":
        return AddMessageDelta(can_message_from_json(data["message"]))
    if kind == "remove-message":
        return RemoveMessageDelta(str(data["message_name"]))
    if kind == "bus":
        return BusDelta(
            bit_rate_bps=(float(data["bit_rate_bps"])
                          if "bit_rate_bps" in data else None),
            bit_stuffing=(bool(data["bit_stuffing"])
                          if "bit_stuffing" in data else None))
    if kind == "deadline-policy":
        return DeadlinePolicyDelta(str(data["policy"]))
    raise ProtocolError(f"unknown delta tag {kind!r}")


def deltas_from_json(items: Sequence[Mapping]) -> tuple[Delta, ...]:
    """Decode a request's delta list."""
    return tuple(delta_from_json(item) for item in items)


def deltas_to_json(deltas: Sequence[Delta]) -> list[dict]:
    """Encode a delta list for a request."""
    return [delta_to_json(delta) for delta in deltas]


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
def result_to_json(result) -> dict:
    """JSON object for one :class:`MessageResponseTime`."""
    return {
        "name": result.name,
        "can_id": result.can_id,
        "worst_case": result.worst_case if result.bounded else None,
        "best_case": result.best_case,
        "transmission_time": result.transmission_time,
        "blocking": result.blocking,
        "jitter": result.jitter,
        "busy_period": result.busy_period,
        "instances_analyzed": result.instances_analyzed,
        "bounded": result.bounded,
    }


def _finite(value: float) -> Optional[float]:
    """Non-finite floats become ``None`` (JSON has no inf/nan)."""
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


def report_to_json(report) -> Optional[dict]:
    """JSON summary of a :class:`SchedulabilityReport` (``None`` passthrough)."""
    if report is None:
        return None
    return {
        "all_deadlines_met": report.all_deadlines_met,
        "missed": sorted(v.name for v in report.missed),
        "loss_fraction": report.loss_fraction,
        "worst_normalized_slack": _finite(report.worst_normalized_slack),
        "utilization": report.utilization,
        "deadline_policy": report.deadline_policy,
    }


def query_result_to_json(result) -> dict:
    """JSON object for a :class:`repro.service.session.QueryResult`."""
    return {
        "label": result.label,
        "fingerprint": result.fingerprint,
        "results": {name: result_to_json(value)
                    for name, value in result.results.items()},
        "report": report_to_json(result.report),
        "stats": {
            "total": result.stats.total,
            "reused": result.stats.reused,
            "warm_started": result.stats.warm_started,
            "cold": result.stats.cold,
            "cache_hit": result.stats.cache_hit,
        },
    }


def session_stats_to_json(stats) -> dict:
    """JSON object for a :class:`repro.service.session.SessionStats`."""
    return {
        "name": stats.name,
        "cached_configs": stats.cached_configs,
        "queries": stats.queries,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "evictions": stats.evictions,
        "reused": stats.reused,
        "warm_started": stats.warm_started,
        "cold": stats.cold,
    }


# --------------------------------------------------------------------------- #
# Topologies (buses, segments, gateways, ECUs, whole systems)
# --------------------------------------------------------------------------- #
def bus_to_json(bus: CanBus) -> dict:
    """JSON object for one physical bus."""
    return {"name": bus.name, "bit_rate_bps": bus.bit_rate_bps,
            "bit_stuffing": bus.bit_stuffing}


def bus_from_json(data: Mapping) -> CanBus:
    """Inverse of :func:`bus_to_json`."""
    try:
        return CanBus(name=str(data["name"]),
                      bit_rate_bps=float(data["bit_rate_bps"]),
                      bit_stuffing=bool(data.get("bit_stuffing", True)))
    except KeyError as missing:
        raise ProtocolError(f"bus object lacks {missing}") from None


def controller_to_json(controller: ControllerModel) -> dict:
    """JSON object for one CAN controller model."""
    return {
        "controller_type": controller.controller_type.value,
        "tx_buffers": controller.tx_buffers,
        "abort_on_higher_priority": controller.abort_on_higher_priority,
    }


def controller_from_json(data: Mapping) -> ControllerModel:
    """Inverse of :func:`controller_to_json`."""
    try:
        return ControllerModel(
            controller_type=CanControllerType(data["controller_type"]),
            tx_buffers=int(data.get("tx_buffers", 3)),
            abort_on_higher_priority=bool(
                data.get("abort_on_higher_priority", False)))
    except (KeyError, ValueError) as error:
        raise ProtocolError(f"bad controller object: {error}") from None


def segment_to_json(segment: BusSegment) -> dict:
    """JSON object for one bus segment (bus + K-Matrix + local models)."""
    return {
        "bus": bus_to_json(segment.bus),
        "messages": [can_message_to_json(m) for m in segment.kmatrix],
        "error_model": error_model_to_json(segment.error_model),
        "deadline_policy": segment.deadline_policy,
        "assumed_jitter_fraction": segment.assumed_jitter_fraction,
    }


def segment_from_json(data: Mapping) -> BusSegment:
    """Inverse of :func:`segment_to_json`."""
    try:
        return BusSegment(
            bus=bus_from_json(data["bus"]),
            kmatrix=KMatrix(messages=[
                can_message_from_json(m) for m in data.get("messages", ())]),
            error_model=error_model_from_json(
                data.get("error_model", {"errors": "none"})),
            deadline_policy=str(data.get("deadline_policy", "period")),
            assumed_jitter_fraction=float(
                data.get("assumed_jitter_fraction", 0.0)))
    except KeyError as missing:
        raise ProtocolError(f"segment object lacks {missing}") from None


def config_to_json(config: BusConfiguration) -> dict:
    """JSON object for a single-bus :class:`BusConfiguration`."""
    data = {
        "bus": bus_to_json(config.bus),
        "messages": [can_message_to_json(m) for m in config.kmatrix],
        "error_model": error_model_to_json(config.error_model),
        "assumed_jitter_fraction": config.assumed_jitter_fraction,
        "deadline_policy": config.deadline_policy,
    }
    if config.controllers:
        data["controllers"] = {name: controller_to_json(c)
                               for name, c in config.controllers.items()}
    if config.event_models:
        data["event_models"] = {name: event_model_to_json(model)
                                for name, model in
                                config.event_models.items()}
    return data


def config_from_json(data: Mapping) -> BusConfiguration:
    """Inverse of :func:`config_to_json`."""
    try:
        controllers = {str(name): controller_from_json(c)
                       for name, c in data.get("controllers", {}).items()}
        event_models = {str(name): event_model_from_json(m)
                        for name, m in data.get("event_models", {}).items()}
        return BusConfiguration(
            kmatrix=KMatrix(messages=[
                can_message_from_json(m) for m in data.get("messages", ())]),
            bus=bus_from_json(data["bus"]),
            error_model=error_model_from_json(
                data.get("error_model", {"errors": "none"})),
            assumed_jitter_fraction=float(
                data.get("assumed_jitter_fraction", 0.0)),
            controllers=controllers or None,
            event_models=event_models or None,
            deadline_policy=str(data.get("deadline_policy", "period")))
    except KeyError as missing:
        raise ProtocolError(f"config object lacks {missing}") from None


def gateway_route_to_json(route: GatewayRoute) -> dict:
    """JSON object for one gateway forwarding relation."""
    return {
        "source_message": route.source_message,
        "destination_message": route.destination_message,
        "source_bus": route.source_bus,
        "destination_bus": route.destination_bus,
        "queue": route.queue,
    }


def gateway_route_from_json(data: Mapping) -> GatewayRoute:
    """Inverse of :func:`gateway_route_to_json`."""
    try:
        return GatewayRoute(
            source_message=str(data["source_message"]),
            destination_message=str(data["destination_message"]),
            source_bus=str(data["source_bus"]),
            destination_bus=str(data["destination_bus"]),
            queue=str(data.get("queue", "default")))
    except KeyError as missing:
        raise ProtocolError(f"gateway route lacks {missing}") from None


def gateway_to_json(gateway: GatewayModel) -> dict:
    """JSON object for one gateway model."""
    return {
        "name": gateway.name,
        "routes": [gateway_route_to_json(r) for r in gateway.routes],
        "policy": gateway.policy.value,
        "polling_period": gateway.polling_period,
        "copy_time": gateway.copy_time,
        "queue_capacities": dict(gateway.queue_capacities),
    }


def gateway_from_json(data: Mapping) -> GatewayModel:
    """Inverse of :func:`gateway_to_json`."""
    try:
        return GatewayModel(
            name=str(data["name"]),
            routes=[gateway_route_from_json(r)
                    for r in data.get("routes", ())],
            policy=ForwardingPolicy(
                data.get("policy", ForwardingPolicy.PERIODIC_POLLING.value)),
            polling_period=float(data.get("polling_period", 5.0)),
            copy_time=float(data.get("copy_time", 0.05)),
            queue_capacities={str(q): int(c) for q, c in
                              data.get("queue_capacities", {}).items()})
    except (KeyError, ValueError) as error:
        raise ProtocolError(f"bad gateway object: {error}") from None


def task_to_json(task: Task) -> dict:
    """JSON object for one ECU task."""
    data = {
        "name": task.name,
        "priority": task.priority,
        "wcet": task.wcet,
        "bcet": task.bcet,
        "kind": task.kind.value,
        "sends_messages": list(task.sends_messages),
        "non_preemptable_region": task.non_preemptable_region,
    }
    if task.activation is not None:
        data["activation"] = event_model_to_json(task.activation)
    return data


def task_from_json(data: Mapping) -> Task:
    """Inverse of :func:`task_to_json`."""
    try:
        return Task(
            name=str(data["name"]),
            priority=int(data["priority"]),
            wcet=float(data["wcet"]),
            bcet=float(data.get("bcet", 0.0)),
            kind=TaskKind(data.get("kind", TaskKind.PREEMPTIVE.value)),
            activation=(event_model_from_json(data["activation"])
                        if "activation" in data else None),
            sends_messages=tuple(
                str(m) for m in data.get("sends_messages", ())),
            non_preemptable_region=float(
                data.get("non_preemptable_region", 0.0)))
    except (KeyError, ValueError) as error:
        raise ProtocolError(f"bad task object: {error}") from None


def ecu_to_json(ecu: EcuModel) -> dict:
    """JSON object for one detailed ECU model."""
    overheads = ecu.overheads
    data = {
        "name": ecu.name,
        "tasks": [task_to_json(t) for t in ecu.tasks],
        "overheads": {
            "activation": overheads.activation,
            "termination": overheads.termination,
            "isr_entry": overheads.isr_entry,
            "schedule_point": overheads.schedule_point,
        },
    }
    if ecu.timetable is not None:
        data["timetable"] = {
            "period": ecu.timetable.period,
            "entries": [{"task_name": e.task_name, "offset": e.offset}
                        for e in ecu.timetable.entries],
        }
    return data


def ecu_from_json(data: Mapping) -> EcuModel:
    """Inverse of :func:`ecu_to_json`."""
    try:
        overheads = data.get("overheads", {})
        timetable = None
        if "timetable" in data:
            table = data["timetable"]
            timetable = TimeTable(
                period=float(table["period"]),
                entries=tuple(
                    TimeTableEntry(task_name=str(e["task_name"]),
                                   offset=float(e["offset"]))
                    for e in table.get("entries", ())))
        return EcuModel(
            name=str(data["name"]),
            tasks=[task_from_json(t) for t in data.get("tasks", ())],
            overheads=OsekOverheads(
                activation=float(overheads.get("activation", 0.004)),
                termination=float(overheads.get("termination", 0.003)),
                isr_entry=float(overheads.get("isr_entry", 0.002)),
                schedule_point=float(
                    overheads.get("schedule_point", 0.002))),
            timetable=timetable)
    except (KeyError, ValueError) as error:
        raise ProtocolError(f"bad ECU object: {error}") from None


def system_to_json(system: SystemModel) -> dict:
    """JSON object for a whole :class:`SystemModel` (the register payload)."""
    return {
        "name": system.name,
        "buses": [segment_to_json(s) for s in system.buses.values()],
        "gateways": [gateway_to_json(g) for g in system.gateways.values()],
        "ecus": [ecu_to_json(e) for e in system.ecus.values()],
        "controllers": {name: controller_to_json(c)
                        for name, c in system.controllers.items()},
    }


def system_from_json(data: Mapping) -> SystemModel:
    """Inverse of :func:`system_to_json`."""
    try:
        system = SystemModel(name=str(data.get("name", "system")))
        for segment in data.get("buses", ()):
            system.add_bus(segment_from_json(segment))
        for gateway in data.get("gateways", ()):
            system.add_gateway(gateway_from_json(gateway))
        for ecu in data.get("ecus", ()):
            system.add_ecu(ecu_from_json(ecu))
        system.controllers.update(
            {str(name): controller_from_json(c)
             for name, c in data.get("controllers", {}).items()})
    except ValueError as error:
        raise ProtocolError(f"bad system object: {error}") from None
    return system


# --------------------------------------------------------------------------- #
# System deltas
# --------------------------------------------------------------------------- #
def system_delta_to_json(delta: SystemDelta) -> dict:
    """Tagged JSON object for any typed system-level delta."""
    if isinstance(delta, MoveMessageDelta):
        data = {"sysdelta": "move-message",
                "message_name": delta.message_name, "to_bus": delta.to_bus}
        if delta.new_can_id is not None:
            data["new_can_id"] = delta.new_can_id
        return data
    if isinstance(delta, BusSpeedDelta):
        return {"sysdelta": "bus-speed", "bus": delta.bus_name,
                "bit_rate_bps": delta.bit_rate_bps}
    if isinstance(delta, AddGatewayRouteDelta):
        data = {"sysdelta": "add-gateway-route",
                "gateway": delta.gateway_name,
                "route": gateway_route_to_json(delta.route)}
        if delta.polling_period is not None:
            data["polling_period"] = delta.polling_period
        return data
    if isinstance(delta, RemoveGatewayRouteDelta):
        return {"sysdelta": "remove-gateway-route",
                "gateway": delta.gateway_name,
                "destination_message": delta.destination_message}
    if isinstance(delta, GatewayConfigDelta):
        data = {"sysdelta": "gateway-config", "gateway": delta.gateway_name}
        if delta.polling_period is not None:
            data["polling_period"] = delta.polling_period
        if delta.copy_time is not None:
            data["copy_time"] = delta.copy_time
        if delta.policy is not None:
            data["policy"] = ForwardingPolicy(delta.policy).value
        return data
    if isinstance(delta, EcuTaskDelta):
        data = {"sysdelta": "ecu-task", "ecu": delta.ecu_name,
                "task": delta.task_name}
        if delta.wcet is not None:
            data["wcet"] = delta.wcet
        if delta.bcet is not None:
            data["bcet"] = delta.bcet
        if delta.activation is not None:
            data["activation"] = event_model_to_json(delta.activation)
        return data
    if isinstance(delta, SegmentConfigDelta):
        return {"sysdelta": "segment-config", "bus": delta.bus_name,
                "deltas": deltas_to_json(delta.deltas)}
    raise ProtocolError(
        f"cannot serialise system delta type {type(delta).__name__}")


def system_delta_from_json(data: Mapping) -> SystemDelta:
    """Inverse of :func:`system_delta_to_json`."""
    kind = data.get("sysdelta")
    if kind == "move-message":
        return MoveMessageDelta(
            message_name=str(data["message_name"]),
            to_bus=str(data["to_bus"]),
            new_can_id=(int(data["new_can_id"])
                        if "new_can_id" in data else None))
    if kind == "bus-speed":
        return BusSpeedDelta(bus_name=str(data["bus"]),
                             bit_rate_bps=float(data["bit_rate_bps"]))
    if kind == "add-gateway-route":
        return AddGatewayRouteDelta(
            gateway_name=str(data["gateway"]),
            route=gateway_route_from_json(data["route"]),
            polling_period=(float(data["polling_period"])
                            if "polling_period" in data else None))
    if kind == "remove-gateway-route":
        return RemoveGatewayRouteDelta(
            gateway_name=str(data["gateway"]),
            destination_message=str(data["destination_message"]))
    if kind == "gateway-config":
        return GatewayConfigDelta(
            gateway_name=str(data["gateway"]),
            polling_period=(float(data["polling_period"])
                            if "polling_period" in data else None),
            copy_time=(float(data["copy_time"])
                       if "copy_time" in data else None),
            policy=(ForwardingPolicy(data["policy"])
                    if "policy" in data else None))
    if kind == "ecu-task":
        return EcuTaskDelta(
            ecu_name=str(data["ecu"]),
            task_name=str(data["task"]),
            wcet=(float(data["wcet"]) if "wcet" in data else None),
            bcet=(float(data["bcet"]) if "bcet" in data else None),
            activation=(event_model_from_json(data["activation"])
                        if "activation" in data else None))
    if kind == "segment-config":
        return SegmentConfigDelta(
            bus_name=str(data["bus"]),
            deltas=deltas_from_json(data.get("deltas", ())))
    raise ProtocolError(f"unknown system delta tag {kind!r}")


def system_deltas_from_json(items: Sequence[Mapping],
                            ) -> tuple[SystemDelta, ...]:
    """Decode a request's system-delta list."""
    return tuple(system_delta_from_json(item) for item in items)


def system_deltas_to_json(deltas: Sequence[SystemDelta]) -> list[dict]:
    """Encode a system-delta list for a request."""
    return [system_delta_to_json(delta) for delta in deltas]


# --------------------------------------------------------------------------- #
# End-to-end paths
# --------------------------------------------------------------------------- #
def path_to_json(path: EndToEndPath) -> dict:
    """JSON object for one cause-effect chain."""
    return {"name": path.name,
            "segments": [[kind, reference]
                         for kind, reference in path.segments]}


def path_from_json(data: Mapping) -> EndToEndPath:
    """Inverse of :func:`path_to_json`."""
    try:
        segments = tuple(
            (str(kind), str(reference))
            for kind, reference in data.get("segments", ()))
        return EndToEndPath(name=str(data["name"]), segments=segments)
    except (KeyError, ValueError) as error:
        raise ProtocolError(f"bad path object: {error}") from None


def paths_from_json(items: Sequence[Mapping]) -> tuple[EndToEndPath, ...]:
    """Decode a request's path list."""
    return tuple(path_from_json(item) for item in items)


def paths_to_json(paths: Sequence[EndToEndPath]) -> list[dict]:
    """Encode a path list for a request."""
    return [path_to_json(path) for path in paths]


def path_latency_to_json(latency: PathLatency) -> dict:
    """JSON object for one :class:`PathLatency` (inf encodes as null)."""
    return {
        "path": latency.path.name,
        "worst_case": _finite(latency.worst_case),
        "best_case": latency.best_case,
        "jitter": _finite(latency.jitter),
        "per_segment": [[reference, _finite(worst)]
                        for reference, worst in latency.per_segment],
    }


def system_query_result_to_json(outcome) -> dict:
    """JSON object for a :class:`repro.whatif.session.SystemQueryResult`."""
    result = outcome.result
    return {
        "label": outcome.label,
        "fingerprint": outcome.fingerprint,
        "converged": result.converged,
        "iterations": result.iterations,
        "all_deadlines_met": result.all_deadlines_met,
        "messages": {name: result_to_json(value)
                     for name, value in result.message_results.items()},
        "tasks": {name: {"worst_case": _finite(value.worst_case),
                         "best_case": value.best_case,
                         "bounded": value.bounded}
                  for name, value in result.task_results.items()},
        "bus_reports": {bus: report_to_json(report)
                        for bus, report in result.bus_reports.items()},
        "stats": {
            "invalidated": list(outcome.stats.invalidated),
            "segments": outcome.stats.segments,
            "cache_hit": outcome.stats.cache_hit,
        },
    }


# --------------------------------------------------------------------------- #
# Conformance monitoring (protocol v6)
# --------------------------------------------------------------------------- #
def frames_to_json(frames: Sequence[ObservedFrame]) -> list[list]:
    """Compact array form of an observed frame stream.

    One frame is ``[message, queued_at, finished_at, success, attempt]`` --
    positional, because ``monitor_ingest`` ships thousands of them and the
    field names would dominate the payload.
    """
    return [frame.to_json() for frame in frames]


def frames_from_json(items: Sequence) -> list[ObservedFrame]:
    """Inverse of :func:`frames_to_json`."""
    frames = []
    for item in items:
        if not isinstance(item, Sequence) or len(item) != 5:
            raise ProtocolError(
                f"observed frame must be a 5-element array, got {item!r}")
        try:
            frames.append(ObservedFrame.from_json(item))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed observed frame: {exc}") from None
    return frames


def alert_rules_from_json(items: Sequence[Mapping]) -> tuple[AlertRule, ...]:
    """Alert rules from request payloads (structured or ``expr`` syntax)."""
    rules = []
    for item in items:
        if not isinstance(item, Mapping):
            raise ProtocolError(f"alert rule must be an object, got {item!r}")
        try:
            rules.append(AlertRule.from_json(item))
        except KeyError as missing:
            raise ProtocolError(
                f"alert rule object lacks {missing}") from None
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed alert rule: {exc}") from None
    return tuple(rules)


def alert_rules_to_json(rules: Sequence[AlertRule]) -> list[dict]:
    """JSON array form of alert rules."""
    return [rule.to_json() for rule in rules]


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def encode_line(obj: Mapping) -> bytes:
    """One protocol object as one newline-terminated UTF-8 line."""
    return json.dumps(obj, separators=(",", ":"),
                      allow_nan=False).encode("utf-8") + b"\n"


def decode_line(line: "bytes | str") -> dict:
    """Inverse of :func:`encode_line` (accepts str for convenience)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"malformed protocol line: {error}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("protocol line must encode a JSON object")
    return obj


def write_message(stream: IO[bytes], obj: Mapping) -> None:
    """Write one protocol object to a binary stream and flush."""
    stream.write(encode_line(obj))
    stream.flush()


def read_message(stream: IO[bytes]) -> Optional[dict]:
    """Read one protocol object; ``None`` on a cleanly closed stream."""
    line = stream.readline()
    if not line:
        return None
    return decode_line(line)

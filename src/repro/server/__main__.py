"""CLI entry point: ``python -m repro.server``.

Starts an :class:`~repro.server.daemon.AnalysisDaemon` with the standard
workloads registered and serves the line-delimited JSON protocol over TCP
until interrupted (or until a client sends ``shutdown``):

* target ``powertrain`` -- the paper's case-study K-Matrix
  (``--messages`` controls its size);
* system ``multibus`` plus per-segment shards ``multibus/CAN-<i>`` -- an
  ``--buses``-segment gateway chain for system-level requests.

Example session (from another terminal)::

    $ python -m repro.server --port 7677 &
    $ printf '%s\\n' '{"op": "health"}' | nc 127.0.0.1 7677
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.obs.tracing import DEFAULT_TRACE_RING
from repro.server.daemon import AnalysisDaemon
from repro.server.jobs import DEFAULT_GRACE
from repro.server.tcp import DEFAULT_HOST, DEFAULT_PORT, DaemonServer
from repro.service.deltas import BusConfiguration
from repro.store import ResultStore
from repro.workloads.multibus import multibus_system
from repro.workloads.powertrain import (
    PowertrainConfig,
    powertrain_bus,
    powertrain_controllers,
    powertrain_kmatrix,
)


def build_daemon(messages: int = 80, buses: int = 4,
                 messages_per_bus: int = 15,
                 workers: int | None = None,
                 max_inflight: int | None = None,
                 max_pending: int | None = None,
                 grace: float = DEFAULT_GRACE,
                 slow_query_ms: float | None = None,
                 trace_ring: int = DEFAULT_TRACE_RING,
                 store_dir: str | None = None,
                 store_max_bytes: int | None = None,
                 monitor_window_ms: float = 100.0,
                 monitor_history: int = 128) -> AnalysisDaemon:
    """Daemon preloaded with the standard serving targets."""
    store = None
    if store_dir is not None:
        store = ResultStore(store_dir, max_bytes=store_max_bytes)
    daemon = AnalysisDaemon(workers=workers, max_inflight=max_inflight,
                            max_pending=max_pending, grace=grace,
                            slow_query_ms=slow_query_ms,
                            trace_ring=trace_ring, store=store,
                            monitor_window_ms=monitor_window_ms,
                            monitor_history=monitor_history)
    config = PowertrainConfig(n_messages=messages)
    daemon.add_config("powertrain", BusConfiguration(
        kmatrix=powertrain_kmatrix(config),
        bus=powertrain_bus(config),
        assumed_jitter_fraction=0.15,
        controllers=powertrain_controllers(config)))
    daemon.add_system("multibus", multibus_system(
        n_buses=buses, messages_per_bus=messages_per_bus))
    return daemon


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve the what-if analysis daemon over TCP.")
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"bind address (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port, 0 for ephemeral "
                             f"(default {DEFAULT_PORT})")
    parser.add_argument("--messages", type=int, default=80,
                        help="size of the powertrain target (default 80)")
    parser.add_argument("--buses", type=int, default=4,
                        help="segments in the multibus system (default 4)")
    parser.add_argument("--messages-per-bus", type=int, default=15,
                        help="messages per multibus segment (default 15)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker threads (default: auto)")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="cap on concurrently executing work requests; "
                             "beyond it clients get a typed 'overloaded' "
                             "error with a retry hint (default: unbounded)")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="cap on queued jobs before submissions are "
                             "rejected as 'overloaded' (default: unbounded)")
    parser.add_argument("--grace", type=float, default=DEFAULT_GRACE,
                        help="seconds a shutdown drains in-flight work "
                             f"before cancelling it (default {DEFAULT_GRACE})")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="log requests slower than this many ms to the "
                             "'repro.slowlog' logger (default: off)")
    parser.add_argument("--trace-ring", type=int,
                        default=DEFAULT_TRACE_RING,
                        help="how many slowest traces the 'traces' op "
                             f"retains (default {DEFAULT_TRACE_RING})")
    parser.add_argument("--store-dir", default=None,
                        help="directory of the persistent result store; "
                             "restarts warm-start from it (default: off)")
    parser.add_argument("--store-max-bytes", type=int, default=None,
                        help="size bound of the store; oldest-read entries "
                             "are evicted beyond it (default: unbounded)")
    parser.add_argument("--monitor-window-ms", type=float, default=100.0,
                        help="default conformance-monitor window size a "
                             "monitor_start without window_ms inherits "
                             "(default 100)")
    parser.add_argument("--monitor-history", type=int, default=128,
                        help="default closed-window count each monitor's "
                             "metrics history retains (default 128)")
    args = parser.parse_args(argv)
    if args.store_max_bytes is not None and args.store_dir is None:
        parser.error("--store-max-bytes requires --store-dir")

    if args.slow_query_ms is not None:
        # Make sure the slow-query records reach stderr even when the
        # operator has not configured logging themselves.
        logging.basicConfig(level=logging.WARNING)

    daemon = build_daemon(messages=args.messages, buses=args.buses,
                          messages_per_bus=args.messages_per_bus,
                          workers=args.workers,
                          max_inflight=args.max_inflight,
                          max_pending=args.max_pending,
                          grace=args.grace,
                          slow_query_ms=args.slow_query_ms,
                          trace_ring=args.trace_ring,
                          store_dir=args.store_dir,
                          store_max_bytes=args.store_max_bytes,
                          monitor_window_ms=args.monitor_window_ms,
                          monitor_history=args.monitor_history)
    server = DaemonServer(daemon, host=args.host, port=args.port)
    if daemon.store is not None:
        print(daemon.store.describe())
    host, port = server.address
    print(f"{daemon.name} serving on {host}:{port} "
          f"(targets: {', '.join(daemon.pool.targets())}; "
          f"systems: {', '.join(daemon.pool.systems())})")
    print(daemon.jobs.describe())
    sys.stdout.flush()
    try:
        server.serve_in_background()
        # Wait on the daemon's shutdown signal or the operator's Ctrl-C.
        while not daemon.wait_for_shutdown(timeout=0.5):
            pass
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        server.stop()
    print(daemon.describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Restartable serving harness for fault-injection tests.

:class:`ServerHarness` owns a daemon *factory* instead of a daemon: it can
kill the whole serving stack mid-request and bring an identically
configured daemon back up **on the same port**, which is the scenario the
resilient clients must survive -- a daemon restart between a request and
its retry.  Because analyses are pure functions of the registered
configuration, a retried query against the restarted daemon returns a
bit-identical result (fresh caches change statistics, never values);
tests assert exactly that.

Typical use::

    def build():
        daemon = AnalysisDaemon(mode="thread")
        daemon.add_config("pt", config)
        return daemon

    with ServerHarness(build) as harness:
        client = TcpClient(*harness.address, retry=RetryPolicy(...))
        harness.restart()           # drop everything, same port
        client.query("pt")          # reconnects + retries transparently

The harness is deliberately *not* graceful on :meth:`restart`: it stops
the server with a zero grace window so established connections die with
unsent responses -- the hard failure mode.  Graceful drain is exercised
separately through :meth:`DaemonServer.stop`.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.server.daemon import AnalysisDaemon
from repro.server.tcp import DaemonServer


class ServerHarness:
    """A TCP serving stack that can be killed and rebuilt on one port."""

    def __init__(self, factory: Callable[[], AnalysisDaemon],
                 host: str = "127.0.0.1") -> None:
        self._factory = factory
        self._host = host
        self._port: Optional[int] = None
        self._lock = threading.Lock()
        self.server: Optional[DaemonServer] = None
        self.restarts = 0
        self.start()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); stable across restarts."""
        assert self._port is not None
        return self._host, self._port

    @property
    def daemon(self) -> AnalysisDaemon:
        """The currently serving daemon instance."""
        assert self.server is not None
        return self.server.daemon

    def start(self) -> "ServerHarness":
        """Build a fresh daemon and serve it (port 0 first, then pinned)."""
        with self._lock:
            if self.server is not None:
                return self
            server = DaemonServer(self._factory(), host=self._host,
                                  port=self._port or 0)
            self._port = server.address[1]
            server.serve_in_background()
            self.server = server
        return self

    def stop(self, grace: Optional[float] = None) -> None:
        """Stop the stack; ``grace`` as in :meth:`DaemonServer.stop`."""
        with self._lock:
            server, self.server = self.server, None
        if server is not None:
            server.stop(grace=grace)

    def restart(self) -> "ServerHarness":
        """Hard-kill the stack and rebuild it on the same port.

        Zero grace: in-flight connections die uncleanly, exactly like a
        crashed daemon.  The replacement daemon comes from the factory,
        so registered targets are back but caches start cold.
        """
        self.stop(grace=0.0)
        self.restarts += 1
        return self.start()

    def __enter__(self) -> "ServerHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop(grace=0.0)

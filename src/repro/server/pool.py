"""Sharded session pool: the daemon's unit of state.

A :class:`SessionPool` owns every :class:`~repro.service.session.AnalysisSession`
the daemon serves queries through.  Sessions are *sharded by bus segment*:
registering a single-bus target creates one session, registering a
:class:`~repro.core.system.SystemModel` creates one session per bus segment
(named ``<target>/<bus>``) plus keeps the system itself so the
compositional engine can run **on the same sessions** -- a system-level
analysis request and a per-segment what-if query therefore hit one shared
cache.

Sessions are additionally keyed by their base-configuration fingerprint:
two targets registered with identical configurations (two clients exploring
the same K-Matrix) share a single session, which is what turns N clients
into one warm cache instead of N cold ones.

The pool is LRU-bounded (``max_sessions``), with a pinning rule: sessions
whose name is currently registered (the default, ``pin=True``) are immune
to eviction -- a live serving target never silently loses its cache, so
the bound is effectively a cap on *unpinned* sessions and can be exceeded
by pinned ones.  A session becomes unpinned (and LRU-evictable) when
registered with ``pin=False`` or when every name aliasing it is
re-registered to a different configuration.  All operations are
thread-safe -- the TCP front end serves each connection from its own
thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable

from repro.core.system import SystemModel
from repro.service.deltas import BusConfiguration
from repro.service.session import AnalysisSession, SessionStats


class UnknownTargetError(KeyError):
    """A request named a target the pool does not serve."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = sorted(known)

    def __str__(self) -> str:
        known = ", ".join(self.known) or "none"
        return f"unknown target {self.name!r}; registered: {known}"


class SessionPool:
    """Fingerprint-keyed, LRU-bounded pool of analysis sessions."""

    def __init__(self, max_sessions: int = 64,
                 max_cached_configs: int = 64, metrics=None,
                 store=None) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self._max_sessions = max_sessions
        self._max_cached_configs = max_cached_configs
        self._lock = threading.RLock()
        # Fingerprint -> session (LRU order); name -> fingerprint aliases.
        self._sessions: OrderedDict[object, AnalysisSession] = OrderedDict()
        self._targets: dict[str, object] = {}
        self._pinned: set[object] = set()
        self._systems: dict[str, SystemModel] = {}
        self._system_shards: dict[str, list[str]] = {}
        self.evicted_sessions = 0
        # Optional repro.obs.MetricsRegistry, handed to every session the
        # pool creates.  The daemon sets this on its default pool (or
        # adopts an injected pool's registry) so one `metrics` request
        # covers the whole serving stack.
        self.metrics = metrics
        # Optional repro.store.ResultStore, handed to every session the
        # pool creates so per-bus fixed points persist across restarts.
        self.store = store

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add_config(self, name: str, config: BusConfiguration,
                   pin: bool = True) -> AnalysisSession:
        """Register a single-bus target; returns its (possibly shared)
        session."""
        with self._lock:
            return self._register(name, config, pin)

    def add_system(self, name: str, system: SystemModel,
                   pin: bool = True) -> dict[str, str]:
        """Register a system: one session shard per bus segment.

        Returns the shard-name map (bus name -> ``<name>/<bus>`` target),
        which is what the daemon's ``register`` response hands to clients
        so they never have to re-derive shard names after a
        (re-)registration.  The system model itself is kept so
        :meth:`system` can hand it (plus its shard sessions) to the
        compositional engine.
        """
        problems = system.validate()
        if problems:
            raise ValueError(
                "inconsistent system model:\n  " + "\n  ".join(problems))
        shards: dict[str, str] = {}
        with self._lock:
            for segment in system.buses.values():
                shard = f"{name}/{segment.name}"
                config = BusConfiguration.from_segment(
                    segment, controllers=dict(system.controllers) or None)
                self._register(shard, config, pin)
                shards[segment.name] = shard
            self._systems[name] = system
            self._system_shards[name] = list(shards.values())
        return shards

    def shard_map(self, name: str) -> dict[str, str]:
        """Bus name -> shard target map of one registered system."""
        with self._lock:
            if name not in self._systems:
                raise UnknownTargetError(name, self._systems)
            return {shard[len(name) + 1:]: shard
                    for shard in self._system_shards.get(name, ())}

    def _register(self, name: str, config: BusConfiguration,
                  pin: bool) -> AnalysisSession:
        # The analysis key excludes the deadline policy (it never changes
        # response times), but sessions default their *reports* to the base
        # policy -- so it is part of the sharing key here.
        key = (config.analysis_key(), config.deadline_policy)
        session = self._sessions.get(key)
        if session is None:
            session = AnalysisSession.from_config(
                config, max_cached_configs=self._max_cached_configs,
                name=name, metrics=self.metrics, store=self.store)
            self._sessions[key] = session
        self._sessions.move_to_end(key)
        previous = self._targets.get(name)
        self._targets[name] = key
        if pin:
            self._pinned.add(key)
        if previous is not None and previous != key:
            # Re-registration under a changed configuration: the old
            # fingerprint loses this alias; once no target references it,
            # it loses its pin too and becomes ordinary LRU prey instead
            # of an unreclaimable leak.
            if previous not in set(self._targets.values()):
                self._pinned.discard(previous)
        self._evict_locked()
        if self.metrics is not None:
            self.metrics.gauge("pool_sessions").set(len(self._sessions))
        return session

    def _evict_locked(self) -> None:
        while len(self._sessions) > self._max_sessions:
            for key in self._sessions:
                if key not in self._pinned:
                    del self._sessions[key]
                    self.evicted_sessions += 1
                    if self.metrics is not None:
                        self.metrics.counter("pool_evictions_total").inc()
                    # Aliases of an evicted session are dropped too: a
                    # later lookup re-registers from the configuration
                    # rather than silently answering from a missing shard.
                    for name in [n for n, k in self._targets.items()
                                 if k == key]:
                        del self._targets[name]
                    break
            else:
                break

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> AnalysisSession:
        """Session of a registered target (LRU-touching)."""
        with self._lock:
            key = self._targets.get(name)
            session = self._sessions.get(key) if key is not None else None
            if session is None:
                raise UnknownTargetError(name, self.targets())
            self._sessions.move_to_end(key)
            return session

    def system(self, name: str) -> tuple[SystemModel,
                                         dict[str, AnalysisSession]]:
        """A registered system and its per-segment shard sessions.

        The returned mapping is keyed by *bus name* (what
        :class:`~repro.core.engine.CompositionalAnalysis` expects as its
        ``sessions=``); missing shards (evicted) are simply absent -- the
        engine recreates private ones.
        """
        with self._lock:
            system = self._systems.get(name)
            if system is None:
                raise UnknownTargetError(name, self._systems)
            sessions: dict[str, AnalysisSession] = {}
            for shard in self._system_shards.get(name, ()):
                key = self._targets.get(shard)
                session = self._sessions.get(key) if key is not None else None
                if session is not None:
                    # Strip the "<system name>/" prefix; a plain split would
                    # mis-parse system names that themselves contain "/".
                    sessions[shard[len(name) + 1:]] = session
                    self._sessions.move_to_end(key)
            return system, sessions

    def targets(self) -> list[str]:
        """All live target names, sorted."""
        with self._lock:
            return sorted(n for n, k in self._targets.items()
                          if k in self._sessions)

    def systems(self) -> list[str]:
        """All registered system names, sorted."""
        with self._lock:
            return sorted(self._systems)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            key = self._targets.get(name)
            return key is not None and key in self._sessions

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> list[SessionStats]:
        """Per-session statistics, in stable (name) order."""
        with self._lock:
            sessions = sorted(self._sessions.values(),
                              key=lambda session: session.name)
            return [session.stats() for session in sessions]

    def describe(self) -> str:
        """Multi-line pool summary."""
        with self._lock:
            lines = [f"Session pool: {len(self._sessions)} sessions "
                     f"({len(self._targets)} targets, "
                     f"{self.evicted_sessions} evicted)"]
            lines.extend("  " + stats.describe() for stats in self.stats())
        return "\n".join(lines)

"""Deterministic fault injection for the serving tier.

Production code cannot prove its failure paths by waiting for real faults,
so the serving stack exposes *injection sites* -- named points where a
:class:`FaultInjector` may deterministically trigger a failure on the n-th
time execution passes through.  The sites wired in this PR:

``worker.stall``
    Inside a job-queue worker, before the analysis thunk runs: sleep for
    the rule's argument (ms).  Exercises deadlines and drain-cancellation
    of running jobs.
``handle.stall``
    At the top of :meth:`AnalysisDaemon.handle` for work ops: same sleep,
    but on the transport thread -- exercises admission control backpressure
    (in-flight requests pile up) and client read timeouts.
``tcp.drop``
    In the TCP request handler, after reading a request and before
    writing its response: close the connection uncleanly.  Exercises
    client reconnect + retry.
``tcp.slow``
    Before writing a TCP response: sleep for the argument (ms).  Exercises
    client read timeouts and the reply-id verification that keeps a timed-
    out read from desynchronising later replies.
``store.torn_write``
    In :meth:`~repro.store.ResultStore.put`: write a truncated entry
    directly to the final path (no atomic rename), simulating a crash
    mid-write.  The next lookup must count ``corrupt`` and cold-solve.
``store.stale_schema``
    In :meth:`~repro.store.ResultStore.put`: stamp the entry with a bumped
    schema version, simulating a file owned by a newer daemon generation.
    Lookups must count ``stale`` and cold-solve without deleting it.

Spec syntax
-----------
A spec is a comma-separated list of rules::

    site[@n][:arg]

``site`` names the injection site; ``@n`` (default 1) makes the rule fire
on exactly the n-th hit of that site (1-based, counted per injector);
``@n+`` fires on the n-th and every later hit; ``:arg`` is the rule's
numeric argument -- milliseconds for stalls/slow writes, ignored by
``tcp.drop``.  Examples::

    tcp.drop@2                   # drop the 2nd connection's reply
    worker.stall@1:200           # first worker job sleeps 200 ms
    handle.stall@3+:50           # every request from the 3rd on adds 50 ms

The ``REPRO_FAULTS`` environment variable carries a spec into a daemon
spawned out-of-process (:func:`from_env`); in-process tests pass an
injector explicitly.  Counters are per-injector and thread-safe, so a test
re-creating its injector restarts the schedule deterministically.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Optional

ENV_VAR = "REPRO_FAULTS"

#: Sites the serving stack currently wires; unknown sites in a spec raise
#: immediately (a typo'd site would otherwise silently never fire).
KNOWN_SITES = ("worker.stall", "handle.stall", "tcp.drop", "tcp.slow",
               "store.torn_write", "store.stale_schema")


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULTS`` spec."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule: fire at ``site`` on hit ``nth`` (1-based)."""

    site: str
    nth: int = 1
    onwards: bool = False
    arg: float = 0.0

    def matches(self, hit: int) -> bool:
        return hit >= self.nth if self.onwards else hit == self.nth


class FaultInjector:
    """Deterministic n-th-hit fault trigger shared across the stack.

    ``check(site)`` increments the site's hit counter and returns the
    matching :class:`FaultRule` (or ``None``); the call site decides what
    the fault *means* (sleep, drop, ...).  An injector with no rules is
    free: ``check`` returns immediately without taking the lock.
    """

    def __init__(self, rules: "list[FaultRule] | None" = None) -> None:
        self._rules: dict[str, list[FaultRule]] = {}
        for rule in rules or []:
            self._rules.setdefault(rule.site, []).append(rule)
        self._hits: dict[str, int] = {}
        self._fired: list[str] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Parse a spec string (see the module docstring's syntax)."""
        rules: list[FaultRule] = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            rules.append(_parse_rule(chunk))
        return cls(rules)

    def __bool__(self) -> bool:
        return bool(self._rules)

    # ------------------------------------------------------------------ #
    # Trigger
    # ------------------------------------------------------------------ #
    def check(self, site: str) -> Optional[FaultRule]:
        """Count a pass through ``site``; return the rule that fires, if any."""
        if not self._rules:
            return None
        with self._lock:
            rules = self._rules.get(site)
            if rules is None:
                return None
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for rule in rules:
                if rule.matches(hit):
                    self._fired.append(f"{site}#{hit}")
                    return rule
        return None

    def fired(self) -> tuple[str, ...]:
        """``site#hit`` labels of every fault fired so far (test assertions)."""
        with self._lock:
            return tuple(self._fired)

    def describe(self) -> str:
        rules = sorted(
            f"{r.site}@{r.nth}{'+' if r.onwards else ''}"
            + (f":{r.arg:g}" if r.arg else "")
            for site_rules in self._rules.values() for r in site_rules)
        return "faults: " + (", ".join(rules) if rules else "none")


def _parse_rule(chunk: str) -> FaultRule:
    site, _, arg_part = chunk.partition(":")
    site, _, nth_part = site.partition("@")
    site = site.strip()
    if site not in KNOWN_SITES:
        raise FaultSpecError(
            f"unknown fault site {site!r}; known: {', '.join(KNOWN_SITES)}")
    nth, onwards = 1, False
    if nth_part:
        nth_part = nth_part.strip()
        if nth_part.endswith("+"):
            onwards = True
            nth_part = nth_part[:-1]
        try:
            nth = int(nth_part)
        except ValueError:
            raise FaultSpecError(
                f"bad hit count in fault rule {chunk!r}") from None
        if nth < 1:
            raise FaultSpecError(
                f"hit count must be >= 1 in fault rule {chunk!r}")
    arg = 0.0
    if arg_part:
        try:
            arg = float(arg_part)
        except ValueError:
            raise FaultSpecError(
                f"bad argument in fault rule {chunk!r}") from None
        if arg < 0:
            raise FaultSpecError(
                f"argument must be >= 0 in fault rule {chunk!r}")
    return FaultRule(site=site, nth=nth, onwards=onwards, arg=arg)


def from_env(environ: "os._Environ | dict | None" = None) -> FaultInjector:
    """Injector configured by ``REPRO_FAULTS`` (empty when unset).

    Called once per daemon at construction time, so a spec fires on the
    daemon's own deterministic hit counters regardless of how many
    daemons a test spawns.
    """
    env = environ if environ is not None else os.environ
    spec = env.get(ENV_VAR, "")
    if not spec:
        return FaultInjector()
    return FaultInjector.from_spec(spec)

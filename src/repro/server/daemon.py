"""The long-running analysis daemon.

:class:`AnalysisDaemon` is the serving layer over the what-if service: it
owns a sharded :class:`~repro.server.pool.SessionPool`, a scenario
catalog, and a :class:`~repro.server.jobs.JobQueue`, and answers protocol
requests (see :mod:`repro.server.protocol`):

``ping`` / ``health`` / ``stats`` / ``targets`` / ``scenarios``
    Liveness, inventory and cache statistics (the stats endpoint renders
    the :func:`repro.reporting.tables.format_session_stats` table).
``query``
    Typed deltas against a registered target -- the interactive what-if
    primitive.  Results are bit-identical to a from-scratch ``analyze_all``
    of the mutated configuration (the session guarantees it).
``scenario``
    A named :class:`~repro.service.catalog.WhatIfScenario` from the catalog
    executed against a target's session.
``batch``
    Many labelled delta queries fanned out across the worker pool and
    returned in request order.
``analyze_system``
    A compositional fixed point of a registered
    :class:`~repro.core.system.SystemModel`, run **on the pool's
    per-segment sessions** -- repeated requests (and per-segment what-if
    queries in between) hit the same warm caches, which is what makes
    system re-analysis incremental across clients.
``shutdown``
    Graceful stop (the TCP front end watches :attr:`shutdown_requested`).

Transport-independent by construction: :meth:`handle` consumes and
produces plain protocol dicts, so the in-process client, the TCP server
and tests all exercise literally the same code path.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping, Optional

from repro.core.engine import CompositionalAnalysis
from repro.core.system import SystemModel
from repro.reporting.tables import format_session_stats
from repro.server import protocol
from repro.server.jobs import JobQueue
from repro.server.pool import SessionPool, UnknownTargetError
from repro.service.catalog import ScenarioCatalog, builtin_catalog
from repro.service.deltas import BusConfiguration


class AnalysisDaemon:
    """Multi-client analysis server over a sharded session pool."""

    def __init__(
        self,
        catalog: Optional[ScenarioCatalog] = None,
        pool: Optional[SessionPool] = None,
        workers: Optional[int] = None,
        mode: str = "auto",
        name: str = "repro-daemon",
    ) -> None:
        self.name = name
        self.catalog = catalog if catalog is not None else builtin_catalog()
        self.pool = pool if pool is not None else SessionPool()
        self.jobs = JobQueue(workers=workers, mode=mode)
        self._engines: dict[
            str, tuple[CompositionalAnalysis, threading.Lock]] = {}
        self._engine_lock = threading.Lock()
        self._started = time.monotonic()
        self._counter_lock = threading.Lock()
        self.requests_served = 0
        self.errors = 0
        self.op_counts: dict[str, int] = {}
        self._shutdown = threading.Event()
        self._ops = {
            "ping": self._op_ping,
            "health": self._op_health,
            "stats": self._op_stats,
            "targets": self._op_targets,
            "scenarios": self._op_scenarios,
            "query": self._op_query,
            "scenario": self._op_scenario,
            "batch": self._op_batch,
            "analyze_system": self._op_analyze_system,
            "shutdown": self._op_shutdown,
        }

    # ------------------------------------------------------------------ #
    # Registration (server-side; the protocol itself is read-only)
    # ------------------------------------------------------------------ #
    def add_config(self, name: str, config: BusConfiguration) -> None:
        """Serve a single-bus configuration under ``name``."""
        self.pool.add_config(name, config)

    def add_system(self, name: str, system: SystemModel) -> list[str]:
        """Serve a system model; returns the per-segment shard targets.

        Re-registering a name drops any cached engine for it, so later
        ``analyze_system`` requests analyse the new model, not the old one.
        """
        shards = self.pool.add_system(name, system)
        with self._engine_lock:
            self._engines.pop(name, None)
        return shards

    @property
    def shutdown_requested(self) -> bool:
        """Whether a client asked the daemon to stop."""
        return self._shutdown.is_set()

    def wait_for_shutdown(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown request arrives (or the timeout passes)."""
        return self._shutdown.wait(timeout)

    def close(self) -> None:
        """Stop the worker pool (idempotent)."""
        self._shutdown.set()
        self.jobs.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    def handle(self, request: Mapping) -> dict:
        """Serve one protocol request dict; always returns a response dict.

        Never raises: every error is reported as ``{"ok": false, ...}`` so
        one malformed request cannot take down a connection.
        """
        request_id = request.get("id")
        op = request.get("op")
        handler = self._ops.get(op)
        with self._counter_lock:
            self.requests_served += 1
            self.op_counts[op or "?"] = self.op_counts.get(op or "?", 0) + 1
        if handler is None:
            return self._error(
                f"unknown op {op!r}; supported: "
                f"{', '.join(sorted(self._ops))}", request_id)
        try:
            return self._reply(handler(request), request_id)
        except (UnknownTargetError, protocol.ProtocolError, KeyError,
                ValueError, TypeError, AttributeError) as error:
            # AttributeError covers type-malformed but valid-JSON params
            # (e.g. a string where a list of objects belongs): the contract
            # is an error *response*, never a dead connection.
            return self._error(str(error) or repr(error), request_id)

    def submit(self, request: Mapping):
        """Queue a request on the worker pool; returns a Future response."""
        return self.jobs.submit(lambda: self.handle(request),
                                label=str(request.get("op")))

    def _reply(self, result: dict, request_id) -> dict:
        response = {"ok": True, "result": result}
        if request_id is not None:
            response["id"] = request_id
        return response

    def _error(self, message: str, request_id) -> dict:
        with self._counter_lock:
            self.errors += 1
        response = {"ok": False, "error": message}
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _op_ping(self, request: Mapping) -> dict:
        return {"pong": True, "name": self.name}

    def _op_health(self, request: Mapping) -> dict:
        return {
            "status": "ok",
            "name": self.name,
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "sessions": len(self.pool),
            "targets": self.pool.targets(),
            "systems": self.pool.systems(),
            "scenarios": self.catalog.names(),
            "queue": {"mode": self.jobs.mode, "workers": self.jobs.workers,
                      "pending": self.jobs.pending},
        }

    def _op_stats(self, request: Mapping) -> dict:
        stats = self.pool.stats()
        return {
            "requests_served": self.requests_served,
            "errors": self.errors,
            "ops": dict(sorted(self.op_counts.items())),
            "sessions": [protocol.session_stats_to_json(s) for s in stats],
            "evicted_sessions": self.pool.evicted_sessions,
            "queue": {"mode": self.jobs.mode, "workers": self.jobs.workers,
                      "submitted": self.jobs.submitted,
                      "completed": self.jobs.completed},
            "table": format_session_stats(
                stats, title=f"{self.name}: session statistics"),
        }

    def _op_targets(self, request: Mapping) -> dict:
        return {"targets": self.pool.targets(),
                "systems": self.pool.systems()}

    def _op_scenarios(self, request: Mapping) -> dict:
        return {
            "scenarios": [
                {"name": scenario.name,
                 "queries": len(scenario.queries),
                 "description": scenario.description}
                for scenario in sorted(self.catalog,
                                       key=lambda s: s.name)],
        }

    def _op_query(self, request: Mapping) -> dict:
        session = self.pool.get(str(request["target"]))
        deltas = protocol.deltas_from_json(request.get("deltas", ()))
        message_names = request.get("message_names")
        if message_names is not None:
            message_names = [str(n) for n in message_names]
        result = session.query(
            deltas,
            message_names=message_names,
            label=request.get("label"),
            with_report=bool(request.get("with_report", True)),
        )
        return protocol.query_result_to_json(result)

    def _op_scenario(self, request: Mapping) -> dict:
        session = self.pool.get(str(request["target"]))
        run = self.catalog.run(str(request["scenario"]), session)
        return {
            "scenario": run.scenario,
            "session": run.session,
            "queries": [protocol.query_result_to_json(q)
                        for q in run.queries],
            "table": run.to_table(),
        }

    def _op_batch(self, request: Mapping) -> dict:
        """Independent labelled delta queries, fanned out over the workers.

        Results come back in request order regardless of completion order
        (each step resolves its own future), so a batch aggregates exactly
        like a serial loop -- the :mod:`repro.parallel` guarantee carried
        to the wire.
        """
        target = str(request["target"])
        session = self.pool.get(target)
        steps = request.get("queries", ())
        futures = []
        for step in steps:
            deltas = protocol.deltas_from_json(step.get("deltas", ()))
            label = step.get("label")
            with_report = bool(step.get("with_report", True))
            futures.append(self.jobs.submit(
                lambda d=deltas, lb=label, wr=with_report: session.query(
                    d, label=lb, with_report=wr),
                label=f"batch:{target}"))
        return {
            "target": target,
            "results": [protocol.query_result_to_json(f.result())
                        for f in futures],
        }

    def _op_analyze_system(self, request: Mapping) -> dict:
        name = str(request["system"])
        system, sessions = self.pool.system(name)
        with self._engine_lock:
            entry = self._engines.get(name)
            if entry is None or entry[0].system is not system:
                # No engine yet, or the name was re-registered to a new
                # model: never serve a fixed point of a stale system.
                entry = (CompositionalAnalysis(system, sessions=sessions),
                         threading.Lock())
                self._engines[name] = entry
        engine, run_lock = entry
        # One fixed point per system at a time: the engine's per-run sweep
        # state is not meant to interleave (sessions themselves are
        # thread-safe, so per-segment queries still overlap with clients).
        with run_lock:
            result = engine.run()
        return {
            "system": name,
            "converged": result.converged,
            "iterations": result.iterations,
            "all_deadlines_met": result.all_deadlines_met,
            "messages": {msg_name: protocol.result_to_json(value)
                         for msg_name, value in
                         result.message_results.items()},
            "bus_reports": {bus: protocol.report_to_json(report)
                            for bus, report in result.bus_reports.items()},
        }

    def _op_shutdown(self, request: Mapping) -> dict:
        self._shutdown.set()
        return {"stopping": True}

    # ------------------------------------------------------------------ #
    # Context manager
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "AnalysisDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """One-line daemon summary."""
        return (f"{self.name}: {len(self.pool)} sessions, "
                f"{len(self.catalog)} scenarios, "
                f"{self.requests_served} requests served "
                f"({self.errors} errors); {self.jobs.describe()}")

"""The long-running analysis daemon.

:class:`AnalysisDaemon` is the serving layer over the what-if service: it
owns a sharded :class:`~repro.server.pool.SessionPool`, a scenario
catalog, and a :class:`~repro.server.jobs.JobQueue`, and answers protocol
requests (see :mod:`repro.server.protocol`):

``ping`` / ``health`` / ``stats`` / ``targets`` / ``scenarios``
    Liveness, inventory and cache statistics (the stats endpoint renders
    the :func:`repro.reporting.tables.format_session_stats` table).
``query``
    Typed deltas against a registered target -- the interactive what-if
    primitive.  Results are bit-identical to a from-scratch ``analyze_all``
    of the mutated configuration (the session guarantees it).
``scenario``
    A named :class:`~repro.service.catalog.WhatIfScenario` from the catalog
    executed against a target's session.
``batch``
    Many labelled delta queries fanned out across the worker pool and
    returned in request order.
``register``
    Server-side workload registration over the wire: a serialized
    single-bus configuration or a whole
    :class:`~repro.core.system.SystemModel`.  System registrations answer
    with the shard-name map (bus -> ``<name>/<bus>``), so clients address
    per-segment sessions without re-deriving shard names after a
    (re-)registration.
``analyze_system``
    A compositional fixed point of a registered
    :class:`~repro.core.system.SystemModel`, served through the system's
    :class:`~repro.whatif.session.SystemSession` over the pool's
    per-segment sessions -- repeated requests (and per-segment what-if
    queries in between) hit the same warm caches, which is what makes
    system re-analysis incremental across clients.  The response includes
    the shard map.
``system_query``
    Typed :class:`~repro.whatif.system_deltas.SystemDelta` edits against a
    registered system -- the topology what-if primitive.  Bit-identical to
    a from-scratch engine run on the equivalently edited model; optionally
    evaluates end-to-end paths in the same request and re-keys per-bus
    sections by a client-supplied shard map.
``system_scenario``
    A named :class:`~repro.whatif.catalog.SystemScenario` (message
    re-mapping sweep, bus-speed degradation, gateway failover) from the
    per-system topology catalog.
``path_latency``
    End-to-end latencies of a path portfolio under an optional delta
    sequence, rendered with
    :func:`repro.reporting.tables.format_path_latency_table`.
``metrics`` / ``traces``
    Observability: a structured snapshot of the daemon's
    :class:`~repro.obs.MetricsRegistry` (optionally rendered in the
    Prometheus text exposition format) and the slowest retained request
    traces (see :mod:`repro.obs.tracing`).  Every request is traced --
    stages ``decode -> admission -> queue_wait -> session_plan -> solve
    -> encode`` -- and the span tree is returned inline when a request
    sets ``trace: true``.  ``metrics`` with ``history: true`` folds in
    the windowed time-series rings of every running conformance monitor.
``monitor_start`` / ``monitor_ingest`` / ``monitor_status`` /
``monitor_alerts`` / ``monitor_stop``
    The live conformance layer (:mod:`repro.monitor`): ``monitor_start``
    binds a :class:`~repro.monitor.ConformanceMonitor` to a registered
    target's session (optionally with declarative alert rules);
    ``monitor_ingest`` streams chunks of observed frames into it,
    flagging observed response times that exceed the *current* analytic
    bound or deadline -- re-deriving bounds through the session when the
    observed arrival envelope escapes the registered event model, so a
    flagged bound is never stale; ``monitor_status`` / ``monitor_alerts``
    answer from in-memory state (control ops: they keep working during
    overload and drain); ``monitor_stop`` detaches the monitor.
``shutdown``
    Graceful stop (the TCP front end watches :attr:`shutdown_requested`).

Transport-independent by construction: :meth:`handle` consumes and
produces plain protocol dicts, so the in-process client, the TCP server
and tests all exercise literally the same code path.

Fault tolerance
---------------
Every request may carry ``deadline_ms``; the daemon arms a
:class:`~repro.cancel.CancelToken` from it and threads the token into the
request's fixed-point loops, so a divergent or oversized analysis returns
a typed ``timeout`` error instead of pinning a worker to the iteration
cap.  Admission control bounds concurrently executing work requests
(``max_inflight``) and the job queue's backlog (``max_pending``); beyond
either, the daemon answers a typed ``overloaded`` error carrying a
``retry_after_ms`` backoff hint -- the request never ran, so clients can
always retry it.  Control ops (``ping``/``health``/``stats``/``targets``/
``scenarios``/``shutdown``) bypass admission control and keep answering
during overload and drain.  :meth:`close` drains gracefully: new work is
rejected with a typed ``draining`` error, in-flight requests get a grace
window to finish, and whatever remains is cooperatively cancelled --
every in-flight client gets an error *response*, never a dead socket.
See :mod:`repro.server.protocol` for the full error taxonomy and
:mod:`repro.server.faults` for the deterministic fault-injection seam
(``REPRO_FAULTS``).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError as _FutureCancelled
from typing import Mapping, Optional

from repro.cancel import Cancelled, CancelToken, DeadlineExceeded
from repro.core.paths import path_latency_all
from repro.core.system import SystemModel
from repro.monitor.conformance import ConformanceMonitor, MonitorConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    DEFAULT_TRACE_RING,
    SlowQueryLog,
    Trace,
    TraceRing,
)
from repro.reporting.tables import (
    format_metrics_table,
    format_path_latency_table,
    format_session_stats,
)
from repro.server import faults as faults_mod
from repro.server import protocol
from repro.server.jobs import DEFAULT_GRACE, JobQueue, QueueFullError
from repro.server.pool import SessionPool, UnknownTargetError
from repro.service.catalog import ScenarioCatalog, builtin_catalog
from repro.service.deltas import BusConfiguration
from repro.sim.trace import UnknownMessageError
from repro.whatif.catalog import (
    SystemScenarioCatalog,
    builtin_system_catalog,
)
from repro.whatif.session import SystemSession
from repro.workloads.registry import builtin_registry


#: Ops that answer from in-memory state: they bypass admission control and
#: keep being served while the daemon is overloaded or draining, so
#: monitoring (and the shutdown request itself) always gets through.
_CONTROL_OPS = frozenset(
    {"ping", "health", "stats", "targets", "scenarios", "metrics",
     "traces", "store", "monitor_status", "monitor_alerts",
     "monitor_stop", "shutdown"})


class AnalysisDaemon:
    """Multi-client analysis server over a sharded session pool.

    ``max_inflight`` bounds concurrently executing *work* requests
    (control ops are exempt); ``max_pending`` bounds the job queue's
    backlog (batch steps).  ``grace`` is the drain window of
    :meth:`close` in seconds.  ``faults`` injects deterministic failures
    for tests (default: whatever ``REPRO_FAULTS`` specifies; see
    :mod:`repro.server.faults`).

    ``metrics`` is the daemon's :class:`~repro.obs.MetricsRegistry`
    (default: a fresh one, shared with the pool, job queue and every
    session); ``trace_ring`` bounds how many slowest traces the
    ``traces`` op retains; ``slow_query_ms`` enables the structured
    slow-query log at that threshold in milliseconds (default: off).

    ``monitor_window_ms`` / ``monitor_history`` are the defaults a
    ``monitor_start`` without explicit parameters inherits: the
    conformance window size and how many closed windows the per-monitor
    metrics history retains.
    """

    def __init__(
        self,
        catalog: Optional[ScenarioCatalog] = None,
        pool: Optional[SessionPool] = None,
        workers: Optional[int] = None,
        mode: str = "auto",
        name: str = "repro-daemon",
        max_inflight: Optional[int] = None,
        max_pending: Optional[int] = None,
        grace: float = DEFAULT_GRACE,
        faults: Optional[faults_mod.FaultInjector] = None,
        metrics: Optional[MetricsRegistry] = None,
        slow_query_ms: Optional[float] = None,
        trace_ring: int = DEFAULT_TRACE_RING,
        store=None,
        workloads=None,
        monitor_window_ms: float = 100.0,
        monitor_history: int = 128,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.name = name
        self.catalog = catalog if catalog is not None else builtin_catalog()
        # One registry for the whole serving stack.  An injected pool that
        # already carries a registry wins (its sessions are bound to it);
        # otherwise the daemon's registry is pushed down so sessions the
        # pool creates from now on publish into it.
        if metrics is None and pool is not None and pool.metrics is not None:
            metrics = pool.metrics
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Persistent result store: same adoption rule as the registry --
        # an injected pool that already carries a store wins; otherwise the
        # daemon's store is pushed down so sessions the pool creates from
        # now on consult and publish it.
        if store is None and pool is not None and pool.store is not None:
            store = pool.store
        self.store = store
        if store is not None and store.metrics is None:
            store.bind_metrics(self.metrics)
        self.pool = pool if pool is not None else \
            SessionPool(metrics=self.metrics, store=store)
        if self.pool.metrics is None:
            self.pool.metrics = self.metrics
        if self.pool.store is None:
            self.pool.store = store
        self.workloads = workloads if workloads is not None \
            else builtin_registry()
        self.jobs = JobQueue(workers=workers, mode=mode,
                             max_pending=max_pending, metrics=self.metrics)
        self.traces = TraceRing(trace_ring)
        self.slowlog = SlowQueryLog(slow_query_ms)
        self.max_inflight = max_inflight
        self.grace = grace
        self.faults = faults if faults is not None else faults_mod.from_env()
        if monitor_window_ms <= 0:
            raise ValueError("monitor_window_ms must be positive")
        if monitor_history < 1:
            raise ValueError("monitor_history must be at least 1")
        self.monitor_window_ms = float(monitor_window_ms)
        self.monitor_history = int(monitor_history)
        self._monitors: dict[str, ConformanceMonitor] = {}
        self._monitor_lock = threading.Lock()
        self._system_sessions: dict[str, SystemSession] = {}
        self._system_catalogs: dict[str, SystemScenarioCatalog] = {}
        self._engine_lock = threading.Lock()
        self._started = time.monotonic()
        self._counter_lock = threading.Lock()
        self.requests_served = 0
        self.errors = 0
        self.rejected_overload = 0
        self.rejected_draining = 0
        self.timeouts = 0
        self.op_counts: dict[str, int] = {}
        self._shutdown = threading.Event()
        # In-flight work-request accounting: the token registry is what a
        # drain cancels, the counter is what admission control bounds.
        self._active_lock = threading.Lock()
        self._active_tokens: dict[int, CancelToken] = {}
        self._active_seq = 0
        self._inflight = 0
        self._draining = False
        # Per-thread stash of the request being handled (so op handlers
        # can attach session spans) and of the last finished trace (so
        # the transport can fold in encode time; see take_trace).
        self._trace_local = threading.local()
        self._m_inflight = self.metrics.gauge("daemon_inflight")
        self._m_admission = {
            "accepted": self.metrics.counter(
                "daemon_admission_total", decision="accepted"),
            "rejected_overload": self.metrics.counter(
                "daemon_admission_total", decision="rejected_overload"),
            "rejected_draining": self.metrics.counter(
                "daemon_admission_total", decision="rejected_draining"),
        }
        self._ops = {
            "ping": self._op_ping,
            "health": self._op_health,
            "stats": self._op_stats,
            "targets": self._op_targets,
            "scenarios": self._op_scenarios,
            "query": self._op_query,
            "scenario": self._op_scenario,
            "batch": self._op_batch,
            "register": self._op_register,
            "analyze_system": self._op_analyze_system,
            "system_query": self._op_system_query,
            "system_scenario": self._op_system_scenario,
            "path_latency": self._op_path_latency,
            "metrics": self._op_metrics,
            "traces": self._op_traces,
            "store": self._op_store,
            "monitor_start": self._op_monitor_start,
            "monitor_ingest": self._op_monitor_ingest,
            "monitor_status": self._op_monitor_status,
            "monitor_alerts": self._op_monitor_alerts,
            "monitor_stop": self._op_monitor_stop,
            "shutdown": self._op_shutdown,
        }

    # ------------------------------------------------------------------ #
    # Registration (server-side; the protocol itself is read-only)
    # ------------------------------------------------------------------ #
    def add_config(self, name: str, config: BusConfiguration) -> None:
        """Serve a single-bus configuration under ``name``."""
        self.pool.add_config(name, config)

    def add_system(self, name: str, system: SystemModel) -> dict[str, str]:
        """Serve a system model; returns its shard-name map.

        The map (bus name -> ``<name>/<bus>`` shard target) is what the
        ``register`` response forwards to clients.  Re-registering a name
        drops any cached system session and topology catalog for it, so
        later system requests analyse the new model, not the old one.
        """
        shards = self.pool.add_system(name, system)
        with self._engine_lock:
            self._system_sessions.pop(name, None)
            self._system_catalogs.pop(name, None)
        return shards

    def _system_session(self, name: str) -> SystemSession:
        """The (lazily created) system session of a registered system.

        Built over the pool's shard sessions, so per-shard ``query``
        requests and system-level requests share one warm cache; the
        session itself re-fingerprints the registered model per query, so
        even in-place gateway or ECU edits between requests can never
        serve a stale fixed point.
        """
        system, sessions = self.pool.system(name)
        with self._engine_lock:
            session = self._system_sessions.get(name)
            if session is None or session.base_system is not system:
                session = SystemSession(
                    system, sessions=sessions, name=f"{self.name}:{name}",
                    metrics=self.metrics, store=self.store)
                self._system_sessions[name] = session
            return session

    def _system_catalog(self, name: str) -> SystemScenarioCatalog:
        """The (lazily derived) topology scenario catalog of one system."""
        system, _ = self.pool.system(name)
        with self._engine_lock:
            catalog = self._system_catalogs.get(name)
            if catalog is None:
                catalog = builtin_system_catalog(system)
                self._system_catalogs[name] = catalog
            return catalog

    @property
    def shutdown_requested(self) -> bool:
        """Whether a client asked the daemon to stop."""
        return self._shutdown.is_set()

    def wait_for_shutdown(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown request arrives (or the timeout passes)."""
        return self._shutdown.wait(timeout)

    def close(self, grace: Optional[float] = None) -> None:
        """Drain and stop the daemon (idempotent).

        New work requests are rejected with a typed ``draining`` error
        immediately; in-flight requests and queued jobs get up to
        ``grace`` seconds (default: the constructor's) to finish; the
        remainder is cooperatively cancelled, so every outstanding request
        resolves with a typed error response -- never a hang.
        """
        if grace is None:
            grace = self.grace
        self._shutdown.set()
        with self._active_lock:
            self._draining = True
        deadline = time.monotonic() + max(0.0, grace)
        while time.monotonic() < deadline:
            with self._active_lock:
                inflight = self._inflight
            if inflight == 0 and self.jobs.pending == 0:
                break
            time.sleep(0.005)
        with self._active_lock:
            tokens = list(self._active_tokens.values())
        for token in tokens:
            token.cancel(reason="draining")
        # The queue's own drain re-waits briefly: its running jobs now hold
        # fired tokens and unwind at their next fixed-point iteration.
        self.jobs.shutdown(
            wait=True, grace=max(0.5, deadline - time.monotonic()))

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    def handle(self, request: Mapping, *,
               decode_ms: Optional[float] = None,
               queued_since: Optional[float] = None) -> dict:
        """Serve one protocol request dict; always returns a response dict.

        Never raises: every error is reported as ``{"ok": false, "code":
        ...}`` (see the taxonomy in :mod:`repro.server.protocol`) so one
        malformed -- or timed-out, or drain-cancelled -- request cannot
        take down a connection.

        Every request is traced (stages ``decode`` -> ``admission`` ->
        ``queue_wait`` -> ``session_plan`` -> ``solve``; the transport
        folds in ``encode`` via :meth:`take_trace`); the slowest traces
        are retained for the ``traces`` op, and the span tree is returned
        inline when the request sets ``trace: true``.  ``decode_ms`` is
        the transport's line-decode time; ``queued_since`` is the
        ``time.perf_counter()`` at which the request was enqueued (see
        :meth:`submit`), turning the ``queue_wait`` span into the real
        wait instead of zero.
        """
        request_id = request.get("id")
        op = request.get("op")
        handler = self._ops.get(op)
        with self._counter_lock:
            self.requests_served += 1
            self.op_counts[op or "?"] = self.op_counts.get(op or "?", 0) + 1
        # Label cardinality stays bounded: unknown (client-invented) op
        # strings all map to "?" in metrics and traces.
        op_name = str(op) if handler is not None else "?"
        self.metrics.counter("daemon_requests_total", op=op_name).inc()
        requested_id = request.get("trace_id")
        target = request.get("target") or request.get("system")
        trace = Trace(
            op=op_name,
            target=str(target) if target is not None else None,
            trace_id=str(requested_id) if requested_id is not None else None,
            inline=bool(request.get("trace")))
        if decode_ms is not None:
            trace.backdate(float(decode_ms))
            trace.record("decode", float(decode_ms))
        response = self._dispatch(
            request, request_id, op, handler, trace, queued_since)
        return self._finalize_trace(
            trace, response,
            echo=trace.inline or requested_id is not None)

    def _dispatch(self, request: Mapping, request_id, op, handler,
                  trace: Trace, queued_since: Optional[float]) -> dict:
        """Admission control plus op dispatch for one (traced) request."""
        if handler is None:
            return self._error(
                f"unknown op {op!r}; supported: "
                f"{', '.join(sorted(self._ops))}", request_id, code="invalid")
        try:
            cancel = self._cancel_for(request)
        except protocol.ProtocolError as error:
            return self._error(str(error), request_id, code="protocol")
        control = op in _CONTROL_OPS
        token_key = None
        rejection = None
        admission = trace.begin("admission")
        if not control:
            with self._active_lock:
                if self._draining:
                    with self._counter_lock:
                        self.rejected_draining += 1
                    self._m_admission["rejected_draining"].inc()
                    rejection = self._error(
                        f"daemon {self.name} is draining", request_id,
                        code="draining")
                elif self.max_inflight is not None \
                        and self._inflight >= self.max_inflight:
                    with self._counter_lock:
                        self.rejected_overload += 1
                    self._m_admission["rejected_overload"].inc()
                    rejection = self._error(
                        f"daemon at max in-flight requests "
                        f"({self.max_inflight})", request_id,
                        code="overloaded",
                        retry_after_ms=50 * (1 + self.jobs.pending))
                else:
                    self._inflight += 1
                    self._m_inflight.set(self._inflight)
                    self._m_admission["accepted"].inc()
                    # Every work request gets a token -- deadline-less when
                    # the request has none -- so a drain can always cancel
                    # it.
                    if cancel is None:
                        cancel = CancelToken()
                    self._active_seq += 1
                    token_key = self._active_seq
                    self._active_tokens[token_key] = cancel
            if rejection is None:
                rule = self.faults.check("handle.stall")
                if rule is not None:
                    time.sleep(rule.arg / 1000.0)
        trace.end(admission)
        if rejection is not None:
            return rejection
        if queued_since is not None:
            trace.record(
                "queue_wait",
                (time.perf_counter() - queued_since) * 1000.0)
        else:
            trace.record("queue_wait", 0.0)
        self._trace_local.current = trace
        try:
            return self._reply(handler(request, cancel), request_id)
        except DeadlineExceeded:
            with self._counter_lock:
                self.timeouts += 1
            return self._error(
                f"deadline of {request.get('deadline_ms')} ms exceeded",
                request_id, code="timeout")
        except Cancelled as error:
            code = "draining" if error.reason == "draining" else "timeout"
            return self._error(str(error), request_id, code=code)
        except _FutureCancelled:
            return self._error(
                "request cancelled by daemon drain", request_id,
                code="draining")
        except QueueFullError as error:
            with self._counter_lock:
                self.rejected_overload += 1
            return self._error(str(error), request_id, code="overloaded",
                               retry_after_ms=error.retry_after_ms)
        except UnknownTargetError as error:
            return self._error(str(error), request_id, code="unknown_target")
        except UnknownMessageError as error:
            # A KeyError subclass: must outrank the generic "invalid"
            # mapping below so a frame naming an unregistered message gets
            # the same taxonomy slot as an unregistered target.
            return self._error(str(error), request_id, code="unknown_target")
        except protocol.ProtocolError as error:
            return self._error(str(error), request_id, code="protocol")
        except (KeyError, ValueError, TypeError, AttributeError) as error:
            # AttributeError covers type-malformed but valid-JSON params
            # (e.g. a string where a list of objects belongs): the contract
            # is an error *response*, never a dead connection.
            return self._error(str(error) or repr(error), request_id,
                               code="invalid")
        except RuntimeError as error:
            # e.g. a submit that raced the queue's final shutdown.
            code = "draining" if self.shutdown_requested else "internal"
            return self._error(str(error) or repr(error), request_id,
                               code=code)
        finally:
            self._trace_local.current = None
            if not control:
                with self._active_lock:
                    self._inflight -= 1
                    self._m_inflight.set(self._inflight)
                    if token_key is not None:
                        self._active_tokens.pop(token_key, None)

    @staticmethod
    def _cancel_for(request: Mapping) -> Optional[CancelToken]:
        """The request's deadline token (``None`` without ``deadline_ms``)."""
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            return None
        if isinstance(deadline_ms, bool) or \
                not isinstance(deadline_ms, (int, float)):
            raise protocol.ProtocolError(
                f"deadline_ms must be a positive number, "
                f"got {deadline_ms!r}")
        if deadline_ms <= 0:
            raise protocol.ProtocolError(
                f"deadline_ms must be positive, got {deadline_ms!r}")
        return CancelToken.after_ms(float(deadline_ms))

    def submit(self, request: Mapping):
        """Queue a request on the worker pool; returns a Future response."""
        enqueued = time.perf_counter()
        return self.jobs.submit(
            lambda: self.handle(request, queued_since=enqueued),
            label=str(request.get("op")))

    def _finalize_trace(self, trace: Trace, response: dict,
                        echo: bool) -> dict:
        """Close a request's trace: metrics, retention, slow log, echo."""
        duration = trace.finish()
        self.metrics.histogram("daemon_op_ms", op=trace.op).observe(duration)
        self.traces.add(trace)
        if self.slowlog.threshold_ms is not None:
            result = response.get("result")
            fingerprint = result.get("fingerprint") \
                if isinstance(result, dict) else None
            self.slowlog.maybe_log(trace, fingerprint=fingerprint)
        if echo:
            response["trace_id"] = trace.trace_id
        if trace.inline:
            response["trace"] = trace.to_json()
        self._trace_local.finished = trace
        return response

    def take_trace(self) -> Optional[Trace]:
        """Pop the trace of the request this thread just handled.

        Transport hook: the TCP server (and the in-process client) call
        it after :meth:`handle` to fold their line-encode time into the
        trace's ``encode`` span -- the trace object is already retained
        by reference, so the amendment shows up in ``traces`` output too.
        """
        trace = getattr(self._trace_local, "finished", None)
        self._trace_local.finished = None
        return trace

    def _current_trace(self) -> Optional[Trace]:
        """The trace of the request being handled on this thread."""
        return getattr(self._trace_local, "current", None)

    def _reply(self, result: dict, request_id) -> dict:
        response = {"ok": True, "result": result}
        if request_id is not None:
            response["id"] = request_id
        return response

    def _error(self, message: str, request_id, code: str = "internal",
               retry_after_ms: Optional[int] = None) -> dict:
        with self._counter_lock:
            self.errors += 1
        self.metrics.counter("daemon_errors_total", code=code).inc()
        return protocol.error_response(
            message, code=code, request_id=request_id,
            retry_after_ms=retry_after_ms)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _op_ping(self, request: Mapping, cancel=None) -> dict:
        return {"pong": True, "name": self.name}

    def _op_health(self, request: Mapping, cancel=None) -> dict:
        causes: list[str] = []
        stragglers = self.jobs.stragglers
        alive = self.jobs.alive_workers
        if self._draining:
            status = "draining"
            causes.append("daemon is draining")
        elif self.jobs.healthy:
            status = "ok"
        else:
            status = "degraded"
        if stragglers:
            causes.append(
                f"{len(stragglers)} straggler worker(s): "
                + ", ".join(stragglers))
        if self.jobs.workers and alive < self.jobs.workers:
            causes.append(
                f"only {alive}/{self.jobs.workers} workers alive")
        # Conformance alerts are health conditions: an active alert means
        # observed behaviour is out of its declared envelope right now.
        with self._monitor_lock:
            monitors = sorted(self._monitors.items())
        active_alerts = 0
        for monitor_target, monitor in monitors:
            active = monitor.engine.active
            if active:
                active_alerts += len(active)
                causes.append(
                    f"monitor {monitor_target}: {len(active)} active "
                    f"alert(s)")
        if status == "ok" and active_alerts:
            status = "degraded"
        with self._active_lock:
            inflight = self._inflight
        with self._counter_lock:
            rejected_overload = self.rejected_overload
            rejected_draining = self.rejected_draining
            timeouts = self.timeouts
        return {
            "status": status,
            "causes": causes,
            "name": self.name,
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "sessions": len(self.pool),
            "targets": self.pool.targets(),
            "systems": self.pool.systems(),
            "scenarios": self.catalog.names(),
            "monitors": [name for name, _ in monitors],
            "inflight": inflight,
            "max_inflight": self.max_inflight,
            # Metrics-derived signals: the observable inputs behind the
            # status flag, so "degraded" always has a visible cause.
            "signals": {
                "queue_depth": self.jobs.pending,
                "inflight": inflight,
                "max_inflight": self.max_inflight,
                "straggler_count": len(stragglers),
                "rejected_overload": rejected_overload,
                "rejected_draining": rejected_draining,
                "timeouts": timeouts,
                "monitor_active_alerts": active_alerts,
            },
            "queue": {"mode": self.jobs.mode, "workers": self.jobs.workers,
                      "alive_workers": alive,
                      "pending": self.jobs.pending,
                      "max_pending": self.jobs.max_pending,
                      "rejected": self.jobs.rejected,
                      "stragglers": list(stragglers)},
        }

    def _op_stats(self, request: Mapping, cancel=None) -> dict:
        stats = self.pool.stats()
        return {
            "requests_served": self.requests_served,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "rejected_overload": self.rejected_overload,
            "rejected_draining": self.rejected_draining,
            "ops": dict(sorted(self.op_counts.items())),
            "sessions": [protocol.session_stats_to_json(s) for s in stats],
            "evicted_sessions": self.pool.evicted_sessions,
            "queue": self.jobs.stats(),
            "faults": self.faults.describe(),
            "table": format_session_stats(
                stats, title=f"{self.name}: session statistics"),
        }

    def _op_targets(self, request: Mapping, cancel=None) -> dict:
        return {"targets": self.pool.targets(),
                "systems": self.pool.systems()}

    def _op_scenarios(self, request: Mapping, cancel=None) -> dict:
        return {
            "scenarios": [
                {"name": scenario.name,
                 "queries": len(scenario.queries),
                 "description": scenario.description}
                for scenario in sorted(self.catalog,
                                       key=lambda s: s.name)],
            "system_scenarios": {
                system: self._system_catalog(system).names()
                for system in self.pool.systems()},
        }

    def _op_query(self, request: Mapping, cancel=None) -> dict:
        session = self.pool.get(str(request["target"]))
        deltas = protocol.deltas_from_json(request.get("deltas", ()))
        message_names = request.get("message_names")
        if message_names is not None:
            message_names = [str(n) for n in message_names]
        result = session.query(
            deltas,
            message_names=message_names,
            label=request.get("label"),
            with_report=bool(request.get("with_report", True)),
            cancel=cancel,
            trace=self._current_trace(),
        )
        return protocol.query_result_to_json(result)

    def _op_scenario(self, request: Mapping, cancel=None) -> dict:
        session = self.pool.get(str(request["target"]))
        run = self.catalog.run(str(request["scenario"]), session,
                               cancel=cancel)
        return {
            "scenario": run.scenario,
            "session": run.session,
            "queries": [protocol.query_result_to_json(q)
                        for q in run.queries],
            "table": run.to_table(),
        }

    def _op_batch(self, request: Mapping, cancel=None) -> dict:
        """Independent labelled delta queries, fanned out over the workers.

        Results come back in request order regardless of completion order
        (each step resolves its own future), so a batch aggregates exactly
        like a serial loop -- the :mod:`repro.parallel` guarantee carried
        to the wire.

        Failures resolve *per step*: a timed-out, drain-cancelled or
        rejected step yields an ``{"error": ..., "code": ...}`` entry in
        its slot while every other step's result stays bit-identical to a
        serial run.  The batch as a whole still answers ``ok``.
        """
        target = str(request["target"])
        session = self.pool.get(target)
        steps = request.get("queries", ())
        faults = self.faults

        def run_step(deltas, label, with_report):
            rule = faults.check("worker.stall")
            if rule is not None:
                time.sleep(rule.arg / 1000.0)
            if cancel is not None:
                cancel.check()
            return session.query(deltas, label=label,
                                 with_report=with_report, cancel=cancel)

        # A step whose submit is rejected resolves to an error *entry*, not
        # a whole-batch failure: earlier steps may already be running, so
        # "overloaded => the request never ran" only holds per step here.
        slots: list = []
        for step in steps:
            deltas = protocol.deltas_from_json(step.get("deltas", ()))
            label = step.get("label")
            with_report = bool(step.get("with_report", True))
            try:
                slots.append(self.jobs.submit(
                    lambda d=deltas, lb=label, wr=with_report:
                        run_step(d, lb, wr),
                    label=f"batch:{target}", cancel=cancel))
            except QueueFullError as error:
                with self._counter_lock:
                    self.rejected_overload += 1
                slots.append({"error": str(error), "code": "overloaded",
                              "retry_after_ms": error.retry_after_ms})
        results = []
        for future in slots:
            if isinstance(future, dict):
                results.append(future)
                continue
            try:
                results.append(protocol.query_result_to_json(future.result()))
            except DeadlineExceeded:
                with self._counter_lock:
                    self.timeouts += 1
                results.append({"error": "deadline exceeded",
                                "code": "timeout"})
            except Cancelled as error:
                code = ("draining" if error.reason == "draining"
                        else "timeout")
                results.append({"error": str(error), "code": code})
            except _FutureCancelled:
                results.append({"error": "step cancelled by daemon drain",
                                "code": "draining"})
            except QueueFullError as error:
                with self._counter_lock:
                    self.rejected_overload += 1
                results.append({"error": str(error), "code": "overloaded",
                                "retry_after_ms": error.retry_after_ms})
            except Exception as error:  # noqa: BLE001 - typed per-step slot
                results.append({"error": str(error) or repr(error),
                                "code": "internal"})
        return {"target": target, "results": results}

    def _op_register(self, request: Mapping, cancel=None) -> dict:
        """Server-side workload registration over the wire.

        ``{"name": ..., "system": {...}}`` registers a system (response
        carries the shard-name map); ``{"name": ..., "config": {...}}``
        registers a single-bus target; ``{"name": ..., "workload":
        {"generator": ..., "params": {...}}}`` expands a *named workload*
        server-side -- the client ships kilobytes of parameters, the
        daemon builds the topology, and identical parameters from
        different clients dedupe by fingerprint into the same pool
        sessions and store entries.
        """
        name = str(request["name"])
        if "system" in request:
            system = protocol.system_from_json(request["system"])
            shards = self.add_system(name, system)
            return {"system": name, "shards": shards,
                    "scenarios": self._system_catalog(name).names()}
        if "config" in request:
            config = protocol.config_from_json(request["config"])
            self.add_config(name, config)
            return {"target": name}
        if "workload" in request:
            spec = request["workload"]
            if not isinstance(spec, Mapping) or "generator" not in spec:
                raise protocol.ProtocolError(
                    "workload payload needs a 'generator' name")
            generator = str(spec["generator"])
            params = spec.get("params") or {}
            if not isinstance(params, Mapping):
                raise protocol.ProtocolError(
                    "workload 'params' must be an object")
            # UnknownWorkloadError / bad parameters are ValueErrors: the
            # dispatcher maps them to a typed ``invalid`` error response.
            workload = self.workloads.expand(generator, params)
            if isinstance(workload, BusConfiguration):
                self.add_config(name, workload)
                return {"target": name, "generator": generator}
            shards = self.add_system(name, workload)
            return {"system": name, "generator": generator,
                    "shards": shards,
                    "scenarios": self._system_catalog(name).names()}
        raise protocol.ProtocolError(
            "register needs a 'system', 'config' or 'workload' payload")

    def _shard_names(self, name: str,
                     override: "Mapping | None") -> dict[str, str]:
        """Bus -> reported-name map of one system (client override wins).

        ``override`` is the shard map a client got back from ``register``
        (or any aliasing it prefers); unknown buses in it are an error so
        typos fail loudly instead of silently dropping a segment.
        """
        shards = self.pool.shard_map(name)
        if override:
            unknown = set(override) - set(shards)
            if unknown:
                raise protocol.ProtocolError(
                    f"shard map names unknown buses: {sorted(unknown)}")
            shards.update({str(bus): str(alias)
                           for bus, alias in override.items()})
        return shards

    def _op_analyze_system(self, request: Mapping, cancel=None) -> dict:
        name = str(request["system"])
        # Validate the client's shard map first: a typo'd bus name should
        # cost an error response, not a discarded fixed-point computation.
        shards = self._shard_names(name, request.get("shards"))
        outcome = self._system_session(name).query(
            (), cancel=cancel, trace=self._current_trace())
        result = outcome.result
        return {
            "system": name,
            "shards": shards,
            "fingerprint": outcome.fingerprint,
            "converged": result.converged,
            "iterations": result.iterations,
            "all_deadlines_met": result.all_deadlines_met,
            "messages": {msg_name: protocol.result_to_json(value)
                         for msg_name, value in
                         result.message_results.items()},
            "bus_reports": {shards.get(bus, bus):
                            protocol.report_to_json(report)
                            for bus, report in result.bus_reports.items()},
        }

    def _op_system_query(self, request: Mapping, cancel=None) -> dict:
        """Typed topology deltas against a registered system."""
        name = str(request["system"])
        session = self._system_session(name)
        deltas = protocol.system_deltas_from_json(request.get("deltas", ()))
        shards = self._shard_names(name, request.get("shards"))
        outcome = session.query(deltas, label=request.get("label"),
                                cancel=cancel, trace=self._current_trace())
        response = protocol.system_query_result_to_json(outcome)
        response["system"] = name
        response["shards"] = shards
        response["bus_reports"] = {
            shards.get(bus, bus): report
            for bus, report in response["bus_reports"].items()}
        if "paths" in request:
            paths = protocol.paths_from_json(request["paths"])
            response["paths"] = [
                protocol.path_latency_to_json(latency)
                for latency in path_latency_all(
                    paths, outcome.system, outcome.result)]
        return response

    def _op_system_scenario(self, request: Mapping, cancel=None) -> dict:
        """A named topology scenario from the per-system catalog."""
        name = str(request["system"])
        session = self._system_session(name)
        catalog = self._system_catalog(name)
        run = catalog.run(str(request["scenario"]), session, cancel=cancel)
        return {
            "system": name,
            "scenario": run.scenario,
            "session": run.session,
            "queries": [protocol.system_query_result_to_json(q)
                        for q in run.queries],
            "table": run.to_table(),
        }

    def _op_path_latency(self, request: Mapping, cancel=None) -> dict:
        """End-to-end path latencies under an optional delta sequence."""
        name = str(request["system"])
        session = self._system_session(name)
        paths = protocol.paths_from_json(request.get("paths", ()))
        if not paths:
            raise protocol.ProtocolError("path_latency needs paths")
        deltas = protocol.system_deltas_from_json(request.get("deltas", ()))
        outcome = session.query(deltas, label=request.get("label"),
                                cancel=cancel, trace=self._current_trace())
        latencies = path_latency_all(paths, outcome.system, outcome.result)
        return {
            "system": name,
            "fingerprint": outcome.fingerprint,
            "paths": [protocol.path_latency_to_json(latency)
                      for latency in latencies],
            "table": format_path_latency_table(
                latencies,
                title=f"{name}: end-to-end path latency"),
        }

    def _op_metrics(self, request: Mapping, cancel=None) -> dict:
        """Structured snapshot of the daemon's metrics registry.

        ``{"format": "prometheus"}`` (or ``"text"``) additionally
        renders the text exposition format under ``"text"``;
        ``{"history": true}`` folds in every running conformance
        monitor's windowed series rings (``history_last`` bounds how
        many windows per series), answering "the last N windows" next
        to the registry's "since boot".
        """
        snapshot = self.metrics.snapshot()
        result = {
            "metrics": snapshot,
            "table": format_metrics_table(
                snapshot, title=f"{self.name}: metrics"),
        }
        fmt = request.get("format")
        if fmt in ("text", "prometheus"):
            result["text"] = self.metrics.render_prometheus()
        elif fmt is not None:
            raise protocol.ProtocolError(
                f"unknown metrics format {fmt!r}; "
                f"supported: 'text'/'prometheus'")
        if request.get("history"):
            last = request.get("history_last")
            if last is not None and (
                    isinstance(last, bool) or not isinstance(last, int)
                    or last < 1):
                raise protocol.ProtocolError(
                    f"history_last must be a positive integer, "
                    f"got {last!r}")
            with self._monitor_lock:
                monitors = sorted(self._monitors.items())
            result["history"] = {
                name: monitor.history.snapshot(last)
                for name, monitor in monitors}
        return result

    def _op_traces(self, request: Mapping, cancel=None) -> dict:
        """The retained slowest traces, slowest first."""
        limit = request.get("limit")
        if limit is not None:
            if isinstance(limit, bool) or not isinstance(limit, int) \
                    or limit < 1:
                raise protocol.ProtocolError(
                    f"limit must be a positive integer, got {limit!r}")
        return {
            "traces": self.traces.snapshot(limit),
            "retained": len(self.traces),
            "capacity": self.traces.capacity,
            "seen": self.traces.seen,
            "slow_query_ms": self.slowlog.threshold_ms,
            "slow_queries_logged": self.slowlog.emitted,
        }

    def _op_store(self, request: Mapping, cancel=None) -> dict:
        """Persistent-store maintenance: stats (default), compact, clear.

        A daemon without a configured store answers ``enabled: false``
        instead of erroring, so fleet-wide monitoring can blindly poll.
        """
        action = str(request.get("action", "stats"))
        if action not in ("stats", "compact", "clear"):
            raise protocol.ProtocolError(
                f"unknown store action {action!r}; "
                f"supported: 'stats'/'compact'/'clear'")
        if self.store is None:
            return {"enabled": False, "action": action}
        if action == "compact":
            max_bytes = request.get("max_bytes")
            if max_bytes is not None and (
                    isinstance(max_bytes, bool)
                    or not isinstance(max_bytes, int) or max_bytes < 0):
                raise protocol.ProtocolError(
                    f"max_bytes must be a non-negative integer, "
                    f"got {max_bytes!r}")
            stats = self.store.compact(max_bytes)
            return {"enabled": True, "action": action, "stats": stats}
        if action == "clear":
            removed = self.store.clear()
            return {"enabled": True, "action": action, "removed": removed,
                    "stats": self.store.stats()}
        return {"enabled": True, "action": action,
                "stats": self.store.stats()}

    # ------------------------------------------------------------------ #
    # Conformance monitoring (protocol v6)
    # ------------------------------------------------------------------ #
    def _monitor_for(self, target: str) -> ConformanceMonitor:
        """The running monitor of one target (typed error when absent)."""
        with self._monitor_lock:
            monitor = self._monitors.get(target)
            if monitor is None:
                raise UnknownTargetError(target, sorted(self._monitors))
        return monitor

    def _op_monitor_start(self, request: Mapping, cancel=None) -> dict:
        """Bind (or re-bind) a conformance monitor to a registered target.

        Starting over an existing monitor replaces it wholesale -- fresh
        windows, history, fitted overrides and alert state -- so a replay
        always begins from the registered event models, not from whatever
        a previous stream fitted.
        """
        target = str(request["target"])
        session = self.pool.get(target)
        window_ms = request.get("window_ms", self.monitor_window_ms)
        history = request.get("history_windows", self.monitor_history)
        if isinstance(window_ms, bool) \
                or not isinstance(window_ms, (int, float)):
            raise protocol.ProtocolError(
                f"window_ms must be a positive number, got {window_ms!r}")
        if isinstance(history, bool) or not isinstance(history, int):
            raise protocol.ProtocolError(
                f"history_windows must be a positive integer, "
                f"got {history!r}")
        extras = {}
        for key in ("max_arrivals", "fit_max_n"):
            value = request.get(key)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise protocol.ProtocolError(
                    f"{key} must be an integer, got {value!r}")
            extras[key] = value
        # Range validation happens in MonitorConfig (ValueError -> the
        # typed ``invalid`` response).
        config = MonitorConfig(
            window_ms=float(window_ms), history_windows=history, **extras)
        rules = protocol.alert_rules_from_json(request.get("rules", ()))
        monitor = ConformanceMonitor(
            session, target=target, config=config, rules=rules,
            metrics=self.metrics, trace_ring=self.traces,
            slow_log=self.slowlog)
        with self._monitor_lock:
            self._monitors[target] = monitor
        return {
            "target": target,
            "window_ms": config.window_ms,
            "history_windows": config.history_windows,
            "messages": sorted(monitor.status()["messages"]),
            "rules": [rule.describe() for rule in rules],
        }

    def _op_monitor_ingest(self, request: Mapping, cancel=None) -> dict:
        """Stream one chunk of observed frames into a running monitor.

        ``{"flush": true}`` additionally closes the window in progress
        after the chunk -- end-of-replay bookkeeping, so trailing alert
        evaluation is not left waiting for a frame that never comes.
        """
        target = str(request["target"])
        monitor = self._monitor_for(target)
        frames = protocol.frames_from_json(request.get("frames", ()))
        report = monitor.ingest(frames, cancel=cancel)
        if request.get("flush"):
            tail = monitor.flush(cancel=cancel)
            report.windows_closed += tail.windows_closed
            report.refits += tail.refits
            report.violations.extend(tail.violations)
            report.alerts.extend(tail.alerts)
        result = report.to_json()
        result["target"] = target
        result["violations_total"] = monitor.violations_total
        return result

    def _op_monitor_status(self, request: Mapping, cancel=None) -> dict:
        """Snapshot of one monitor: bounds, counts, overrides, alerts."""
        return self._monitor_for(str(request["target"])).status()

    def _op_monitor_alerts(self, request: Mapping, cancel=None) -> dict:
        """Recent fired alerts, the active set, and the installed rules."""
        monitor = self._monitor_for(str(request["target"]))
        last = request.get("last")
        if last is not None and (
                isinstance(last, bool) or not isinstance(last, int)
                or last < 1):
            raise protocol.ProtocolError(
                f"last must be a positive integer, got {last!r}")
        result = monitor.alerts(last)
        result["rules"] = [rule.to_json()
                           for rule in monitor.engine.rules]
        return result

    def _op_monitor_stop(self, request: Mapping, cancel=None) -> dict:
        """Detach one monitor; its final counters come back in the reply."""
        target = str(request["target"])
        with self._monitor_lock:
            monitor = self._monitors.pop(target, None)
            if monitor is None:
                raise UnknownTargetError(target, sorted(self._monitors))
        status = monitor.status()
        return {
            "target": target,
            "stopped": True,
            "frames": status["frames"],
            "violations": status["violations"],
            "refits": status["refits"],
        }

    def _op_shutdown(self, request: Mapping, cancel=None) -> dict:
        self._shutdown.set()
        return {"stopping": True}

    # ------------------------------------------------------------------ #
    # Context manager
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "AnalysisDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """One-line daemon summary."""
        return (f"{self.name}: {len(self.pool)} sessions, "
                f"{len(self.catalog)} scenarios, "
                f"{self.requests_served} requests served "
                f"({self.errors} errors); {self.jobs.describe()}")

"""Trace records produced by the CAN simulator.

A trace is the raw material of Figure 2: per-frame transmission intervals,
error events and buffer overwrites, with helpers to compute observed response
times, per-message statistics and Gantt-style rows for textual rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.events.curves import EmpiricalEventTrace


class UnknownMessageError(KeyError):
    """A statistic was requested for a message the trace never defined.

    Mirrors the daemon's ``unknown_target`` taxonomy
    (:class:`repro.server.pool.UnknownTargetError`): the name carries the
    unknown message and the sorted known names, and the serving tier maps it
    to the ``unknown_target`` protocol error code.
    """

    def __init__(self, name: str, known: Iterable[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = sorted(known)

    def __str__(self) -> str:
        known = ", ".join(self.known) or "none"
        return f"unknown message {self.name!r}; trace records: {known}"


class NeverSentError(LookupError):
    """A statistic needs completed transmissions but the message has none.

    Raised instead of silently answering ``0.0``: a zero observed maximum is
    indistinguishable from "infinitely fast", which is exactly the wrong
    default for conformance checking.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"message {self.name!r} has no completed transmissions in this trace"


@dataclass(frozen=True)
class TransmissionRecord:
    """One (attempted or completed) frame transmission on the bus."""

    message: str
    sender: str
    queued_at: float
    started_at: float
    finished_at: float
    success: bool
    attempt: int = 1

    @property
    def response_time(self) -> float:
        """Observed response time (completion minus queuing instant)."""
        return self.finished_at - self.queued_at

    @property
    def duration(self) -> float:
        """Time the frame (or its aborted attempt) occupied the bus."""
        return self.finished_at - self.started_at


@dataclass(frozen=True)
class ErrorRecord:
    """One injected bus error."""

    at: float
    corrupted_message: str | None


@dataclass(frozen=True)
class LossRecord:
    """A message instance overwritten in the sender buffer before sending."""

    message: str
    sender: str
    queued_at: float
    overwritten_at: float


@dataclass
class SimulationTrace:
    """Complete record of one simulation run."""

    duration: float
    transmissions: list[TransmissionRecord] = field(default_factory=list)
    errors: list[ErrorRecord] = field(default_factory=list)
    losses: list[LossRecord] = field(default_factory=list)
    #: Names of the messages the simulated K-Matrix defines.  Populated by
    #: the simulator; hand-built traces may leave it empty, in which case the
    #: names appearing in the records stand in.
    messages: tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # Observed statistics
    # ------------------------------------------------------------------ #
    def known_messages(self) -> set[str]:
        """Message names this trace can answer statistics for."""
        if self.messages:
            return set(self.messages)
        names = {t.message for t in self.transmissions}
        names.update(loss.message for loss in self.losses)
        return names

    def _require_known(self, message: str) -> None:
        known = self.known_messages()
        if message not in known:
            raise UnknownMessageError(message, known)

    def completed(self, message: str | None = None) -> list[TransmissionRecord]:
        """Successful transmissions (optionally of one message)."""
        records = [t for t in self.transmissions if t.success]
        if message is not None:
            records = [t for t in records if t.message == message]
        return records

    def observed_response_times(self, message: str) -> list[float]:
        """Observed response times of one message's successful transmissions."""
        return [t.response_time for t in self.completed(message)]

    def max_observed_response(self, message: str) -> float:
        """Largest observed response time of one message.

        Raises :class:`UnknownMessageError` for a message the trace does not
        define and :class:`NeverSentError` for one that never completed a
        transmission -- never a silent ``0.0``.
        """
        self._require_known(message)
        times = self.observed_response_times(message)
        if not times:
            raise NeverSentError(message)
        return max(times)

    def lost_instances(self, message: str | None = None) -> list[LossRecord]:
        """Buffer-overwrite losses (optionally of one message)."""
        if message is None:
            return list(self.losses)
        return [loss for loss in self.losses if loss.message == message]

    def loss_ratio(self, message: str) -> float:
        """Fraction of instances of one message that were lost.

        Raises :class:`UnknownMessageError` for a message the trace does not
        define and :class:`NeverSentError` when no instance was ever sent or
        lost (the ratio is undefined, not zero).
        """
        self._require_known(message)
        sent = len(self.completed(message))
        lost = len(self.lost_instances(message))
        total = sent + lost
        if not total:
            raise NeverSentError(message)
        return lost / total

    def lossy_messages(self) -> list[str]:
        """Names of messages that lost at least one instance."""
        return sorted({loss.message for loss in self.losses})

    def bus_busy_time(self) -> float:
        """Total time the bus was occupied (including error recovery)."""
        return sum(t.duration for t in self.transmissions)

    def observed_utilization(self) -> float:
        """Fraction of the simulated time the bus was busy."""
        if self.duration <= 0:
            return 0.0
        return self.bus_busy_time() / self.duration

    def arrival_trace(self, message: str) -> EmpiricalEventTrace:
        """Empirical event trace of one message's queuing instants."""
        queued = [
            t.queued_at for t in self.transmissions if t.message == message and t.attempt == 1
        ]
        queued.extend(loss.queued_at for loss in self.losses if loss.message == message)
        return EmpiricalEventTrace(timestamps=queued)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def gantt_rows(
        self,
        window: tuple[float, float] | None = None,
    ) -> list[tuple[str, float, float, str]]:
        """(message, start, end, status) rows for a textual Gantt chart."""
        rows = []
        for record in self.transmissions:
            if window is not None:
                lo, hi = window
                if record.finished_at < lo or record.started_at > hi:
                    continue
            status = "ok" if record.success else "error/retransmit"
            rows.append((record.message, record.started_at, record.finished_at, status))
        rows.sort(key=lambda row: row[1])
        return rows

    def render_gantt(self, window: tuple[float, float], width: int = 72) -> str:
        """ASCII rendering of the bus occupation in a time window.

        Each transmission becomes one line with a bar positioned
        proportionally inside the window -- a lightweight stand-in for the
        Figure-2 artwork that works in a terminal and in test output.
        """
        lo, hi = window
        span = max(hi - lo, 1e-9)
        lines = [f"bus trace {lo:.1f}..{hi:.1f} ms"]
        for message, start, end, status in self.gantt_rows(window):
            left = int((max(start, lo) - lo) / span * width)
            right = max(int((min(end, hi) - lo) / span * width), left + 1)
            bar = " " * left + "#" * (right - left)
            marker = "!" if status != "ok" else " "
            lines.append(f"{message[:24]:<24}{marker}|{bar:<{width}}|")
        return "\n".join(lines)

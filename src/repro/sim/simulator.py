"""Discrete-event simulation of one CAN bus.

The simulator models exactly the effects the response-time analysis bounds:

* non-preemptive fixed-priority arbitration by CAN identifier;
* per-ECU controller behaviour: a fullCAN controller always offers its
  highest-priority pending frame for arbitration, a basicCAN controller
  commits to the frame loaded into its single transmit buffer, a FIFO-queued
  controller offers frames in queuing order;
* send jitter: each instance of a message is queued at
  ``n * period + uniform(0, jitter)`` (seeded, reproducible);
* bus errors: sporadic or burst error processes corrupt the frame currently
  on the wire, which costs an error frame and forces a retransmission;
* sender-buffer overwrite: if a new instance of a message is queued while the
  previous one is still waiting, the old instance is recorded as *lost* --
  the message-loss mechanism of Section 2.

The simulator is intentionally a *validation* tool: it produces lower bounds
on the worst case (observed maxima) and realistic traces (Figure 2), while
the analysis produces upper bounds.  Tests assert the containment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.can.bus import CanBus
from repro.can.controller import CanControllerType, ControllerModel
from repro.can.frame import worst_case_frame_bits, frame_bits_without_stuffing
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import BurstErrorModel, ErrorModel, NoErrors, SporadicErrorModel
from repro.sim.trace import ErrorRecord, LossRecord, SimulationTrace, TransmissionRecord


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run."""

    duration: float = 1000.0
    seed: int = 1
    jitter_fraction: float = 0.0
    random_stuffing: bool = True
    error_rate_scale: float = 1.0
    start_offsets: str = "random"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.jitter_fraction < 0:
            raise ValueError("jitter_fraction must be non-negative")
        if self.error_rate_scale < 0:
            raise ValueError("error_rate_scale must be non-negative")
        if self.start_offsets not in {"random", "zero"}:
            raise ValueError("start_offsets must be 'random' or 'zero'")


@dataclass
class _PendingFrame:
    """One message instance waiting in (or loaded into) a controller."""

    message: CanMessage
    queued_at: float
    attempt: int = 1


class CanBusSimulator:
    """Simulate one CAN bus carrying the messages of a K-Matrix."""

    def __init__(
        self,
        kmatrix: KMatrix,
        bus: CanBus,
        controllers: Mapping[str, ControllerModel] | None = None,
        error_model: ErrorModel | None = None,
        config: SimulationConfig | None = None,
    ) -> None:
        self.kmatrix = kmatrix
        self.bus = bus
        self.controllers = dict(controllers or {})
        self.error_model = error_model if error_model is not None else NoErrors()
        self.config = config or SimulationConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ #
    # Per-run state helpers
    # ------------------------------------------------------------------ #
    def _effective_jitter(self, message: CanMessage) -> float:
        if message.jitter is not None:
            return message.jitter
        return self.config.jitter_fraction * message.period

    def _transmission_time(self, message: CanMessage) -> float:
        """Transmission time of one attempt, optionally with random stuffing."""
        nominal = frame_bits_without_stuffing(message.dlc, message.frame_format)
        worst = worst_case_frame_bits(
            message.dlc, message.frame_format, bit_stuffing=self.bus.bit_stuffing
        )
        if not self.config.random_stuffing or worst == nominal:
            bits = worst if self.bus.bit_stuffing else nominal
        else:
            bits = self._rng.randint(nominal, worst)
        return bits / self.bus.bit_rate_bps * 1000.0

    def _error_times(self) -> list[float]:
        """Pre-draw the error-event times for the whole run."""
        model = self.error_model
        duration = self.config.duration
        scale = self.config.error_rate_scale
        if isinstance(model, NoErrors) or scale == 0.0:
            return []
        times: list[float] = []
        if isinstance(model, SporadicErrorModel):
            t = self._rng.uniform(0.0, model.min_interarrival / scale)
            while t < duration:
                times.append(t)
                t += model.min_interarrival / scale * self._rng.uniform(1.0, 1.5)
        elif isinstance(model, BurstErrorModel):
            t = self._rng.uniform(0.0, model.min_interarrival / scale)
            while t < duration:
                for index in range(model.burst_length):
                    error_at = t + index * max(model.intra_burst_gap, 1e-3)
                    if error_at < duration:
                        times.append(error_at)
                t += model.min_interarrival / scale * self._rng.uniform(1.0, 1.5)
        else:
            # Composite or custom models: approximate with their error count
            # over the duration, spread uniformly.
            count = model.errors_in(duration)
            times = sorted(self._rng.uniform(0.0, duration) for _ in range(min(count, 10_000)))
        return sorted(times)

    def _queue_times(self, message: CanMessage) -> list[float]:
        """Queuing instants of all instances of one message."""
        jitter = self._effective_jitter(message)
        offset = 0.0
        if self.config.start_offsets == "random":
            offset = self._rng.uniform(0.0, message.period)
        times = []
        t = offset
        while t < self.config.duration:
            times.append(t + self._rng.uniform(0.0, jitter) if jitter else t)
            t += message.period
        return times

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationTrace:
        """Execute the simulation and return the full trace."""
        trace = SimulationTrace(
            duration=self.config.duration, messages=tuple(m.name for m in self.kmatrix)
        )
        # Future queuing events: (time, message) sorted ascending.
        releases: list[tuple[float, CanMessage]] = []
        for message in self.kmatrix:
            for queue_time in self._queue_times(message):
                releases.append((queue_time, message))
        releases.sort(key=lambda item: item[0], reverse=True)

        error_times = self._error_times()
        for error_at in error_times:
            trace.errors.append(ErrorRecord(at=error_at, corrupted_message=None))
        error_index = 0

        # Pending frames per ECU (the controller decides what is offered).
        pending: dict[str, list[_PendingFrame]] = {name: [] for name in self.kmatrix.senders()}
        now = 0.0

        def admit_releases(up_to: float) -> None:
            """Move queue events up to ``up_to`` into the controller queues."""
            while releases and releases[-1][0] <= up_to:
                queue_time, message = releases.pop()
                queue = pending[message.sender]
                # Sender-buffer overwrite: an older instance of the same
                # message still pending is lost.
                for index, frame in enumerate(queue):
                    if frame.message.name == message.name:
                        trace.losses.append(
                            LossRecord(
                                message=message.name,
                                sender=message.sender,
                                queued_at=frame.queued_at,
                                overwritten_at=queue_time,
                            )
                        )
                        queue.pop(index)
                        break
                queue.append(_PendingFrame(message=message, queued_at=queue_time))

        def offered_frames() -> list[_PendingFrame]:
            """Frames currently taking part in arbitration."""
            offers = []
            for sender, queue in pending.items():
                if not queue:
                    continue
                controller = self.controllers.get(sender)
                ctype = controller.controller_type if controller else CanControllerType.FULL
                if ctype == CanControllerType.QUEUED_FIFO:
                    offers.append(min(queue, key=lambda f: f.queued_at))
                elif ctype == CanControllerType.BASIC:
                    # The frame loaded first stays in the buffer (no abort),
                    # i.e. the oldest frame is offered; with abort enabled the
                    # controller behaves like fullCAN.
                    if controller is not None and controller.abort_on_higher_priority:
                        offers.append(min(queue, key=lambda f: f.message.can_id))
                    else:
                        offers.append(min(queue, key=lambda f: f.queued_at))
                else:
                    offers.append(min(queue, key=lambda f: f.message.can_id))
            return offers

        while now < self.config.duration:
            admit_releases(now)
            offers = offered_frames()
            if not offers:
                if not releases:
                    break
                now = releases[-1][0]
                continue
            # Arbitration: lowest identifier wins among the offered frames.
            winner = min(offers, key=lambda f: f.message.can_id)
            start = now
            duration = self._transmission_time(winner.message)
            end = start + duration

            # Does an error hit this transmission?
            while error_index < len(error_times) and error_times[error_index] < start:
                error_index += 1
            hit = error_index < len(error_times) and error_times[error_index] < end
            if hit:
                error_at = error_times[error_index]
                error_index += 1
                recovery_end = error_at + self.bus.error_recovery_time()
                trace.transmissions.append(
                    TransmissionRecord(
                        message=winner.message.name,
                        sender=winner.message.sender,
                        queued_at=winner.queued_at,
                        started_at=start,
                        finished_at=recovery_end,
                        success=False,
                        attempt=winner.attempt,
                    )
                )
                winner.attempt += 1
                now = recovery_end
                continue

            trace.transmissions.append(
                TransmissionRecord(
                    message=winner.message.name,
                    sender=winner.message.sender,
                    queued_at=winner.queued_at,
                    started_at=start,
                    finished_at=end,
                    success=True,
                    attempt=winner.attempt,
                )
            )
            pending[winner.message.sender].remove(winner)
            now = end

        return trace


def simulate_powertrain(
    kmatrix: KMatrix,
    bus: CanBus,
    controllers: Mapping[str, ControllerModel] | None = None,
    error_model: ErrorModel | None = None,
    duration: float = 2000.0,
    jitter_fraction: float = 0.15,
    seed: int = 1,
) -> SimulationTrace:
    """Convenience wrapper used by examples and the Figure-2 benchmark."""
    simulator = CanBusSimulator(
        kmatrix=kmatrix,
        bus=bus,
        controllers=controllers,
        error_model=error_model,
        config=SimulationConfig(duration=duration, seed=seed, jitter_fraction=jitter_fraction),
    )
    return simulator.run()

"""Discrete-event CAN simulation.

The paper contrasts analysis with "simulation and test" (Section 2) and uses
a trace picture (Figure 2) to illustrate how jitters, bursts and errors
create complex communication patterns.  This package provides the simulator
needed to

* generate such traces (arbitration, blocking, retransmissions, buffer
  overwrites) for the Figure-2 reproduction;
* cross-validate the response-time analysis: every observed response time in
  a simulation must stay at or below the analytic worst-case bound, and the
  analysis must never report a loss-free system when the simulation loses a
  message under the same assumptions.
"""

from repro.sim.trace import (
    ErrorRecord,
    LossRecord,
    NeverSentError,
    SimulationTrace,
    TransmissionRecord,
    UnknownMessageError,
)
from repro.sim.simulator import (
    CanBusSimulator,
    SimulationConfig,
    simulate_powertrain,
)

#: Convenience alias: the simulator is the package's ``Simulator``.
Simulator = CanBusSimulator

__all__ = [
    "CanBusSimulator",
    "Simulator",
    "SimulationConfig",
    "SimulationTrace",
    "TransmissionRecord",
    "ErrorRecord",
    "LossRecord",
    "NeverSentError",
    "UnknownMessageError",
    "simulate_powertrain",
]
